//! Decoder fuzz leg: random 32-bit words must either decode to an
//! instruction that re-encodes to the same word, or report an
//! illegal-instruction trap carrying the word. No panics, no silent
//! aliasing.

use ise_isa::decode::{decode, encode};
use ise_types::trap::Trap;

/// splitmix64 — tiny, deterministic, and good enough to sweep encoding
/// space. Seeded constants keep the leg reproducible in CI.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn check(word: u32) {
    match decode(word) {
        Ok(d) => {
            let back = encode(&d);
            assert_eq!(
                back, word,
                "silent aliasing: {word:#010x} decoded to `{d}` which re-encodes to {back:#010x}"
            );
        }
        Err(Trap::IllegalInstruction(w)) => {
            assert_eq!(w, word as u64, "illegal trap payload mismatch");
        }
        Err(other) => panic!("decode({word:#010x}) returned a non-illegal trap: {other}"),
    }
}

/// Words that tripped earlier decoder revisions, kept as regression
/// constants so the exact failure modes stay covered:
///
/// * `0x4010_9093` — `slli` with bit 30 set: a sloppy decoder masks
///   `shamt` to 6 bits and silently drops the reserved bit (aliasing
///   onto plain `slli`); it must be illegal.
/// * `0x0210_909b` — `slliw` with shamt ≥ 32 (funct7 LSB set),
///   reserved in RV64.
/// * `0x0800_0073` — SYSTEM funct12 = 0x080 (neither ecall/ebreak nor
///   mret/wfi): must not alias onto `ecall`.
/// * `0x0000_80e7` — `jalr` is funct3-000-only; funct3 carried by this
///   word is 0 but rd/rs1 fields exercise full-field re-encoding.
/// * `0x1862_a32f` — `amomin.w`: an AMO funct5 the trace ISA does not
///   model; must be illegal rather than decoding as `amoadd`.
/// * `0x8000_0000` + low opcode bits — sign-bit-heavy immediates that
///   exercise the B/J-format reassembly paths.
const REGRESSIONS: &[u32] = &[
    0x4010_9093,
    0x0210_909b,
    0x0800_0073,
    0x0000_80e7,
    0x1862_a32f,
    0x8000_006f,
    0x8000_0063,
    0xfe20_9ee3,
    0xffdf_f06f,
    0x0330_000f,
    0xffff_ffff,
    0x0000_0000,
];

#[test]
fn regression_words_hold() {
    for &w in REGRESSIONS {
        check(w);
    }
}

#[test]
fn ten_thousand_random_words_round_trip_or_trap() {
    let mut rng = SplitMix64(0x15e_c0de);
    for _ in 0..10_000 {
        check(rng.next() as u32);
    }
}

#[test]
fn ten_thousand_random_legal_shaped_words_round_trip_or_trap() {
    // Bias the sweep onto real major opcodes so the legal-decode path
    // (not just the opcode-reject path) gets the coverage.
    const OPCODES: &[u32] = &[
        0b0110111, 0b0010111, 0b1101111, 0b1100111, 0b1100011, 0b0000011, 0b0100011, 0b0010011,
        0b0110011, 0b0011011, 0b0111011, 0b0001111, 0b1110011, 0b0101111,
    ];
    let mut rng = SplitMix64(0x0dec_0de2);
    for _ in 0..10_000 {
        let r = rng.next() as u32;
        let word = (r & !0x7f) | OPCODES[(r % OPCODES.len() as u32) as usize];
        check(word);
    }
}
