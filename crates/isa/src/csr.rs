//! The minimal machine-mode CSR file each hart carries.
//!
//! Only the machine trap-setup/trap-handling registers plus identity
//! and counter shadows exist (the subset in [`ise_types::trap::csr`]).
//! Reads of unimplemented CSRs and writes to read-only CSRs raise
//! [`Trap::IllegalInstruction`], per the privileged spec.

use crate::decode::CsrOp;
use ise_types::persist::{Persist, PersistError, Reader, Writer};
use ise_types::trap::{csr, mstatus, Trap};

/// `misa` for this frontend: RV64 (MXL=2) with the I and A bits set.
const MISA_RV64IA: u64 = (2 << 62) | (1 << 8) | 1;

/// WARL mask of `mstatus` bits the frontend implements.
const MSTATUS_MASK: u64 = mstatus::MIE | mstatus::MPIE | mstatus::MPP_M;

/// WARL mask of `mie`/`mip` bits the frontend implements.
const MI_MASK: u64 = ise_types::trap::mip::MSIP | ise_types::trap::mip::MTIP;

/// The machine-mode CSR state of one hart.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsrFile {
    /// Hart index, read through `mhartid`.
    pub hartid: u64,
    /// `mstatus` (only the bits in the WARL mask are stored).
    pub mstatus: u64,
    /// `mie`.
    pub mie: u64,
    /// `mtvec` (trap vector base; 0 means "no handler installed").
    pub mtvec: u64,
    /// `mscratch`.
    pub mscratch: u64,
    /// `mepc`.
    pub mepc: u64,
    /// `mcause`.
    pub mcause: u64,
    /// `mtval`.
    pub mtval: u64,
    /// `mip` (updated from the CLINT each step).
    pub mip: u64,
    /// Retired-instruction count, read through `instret` and `cycle`
    /// (the functional frontend has no clock of its own; the timing
    /// model downstream owns cycles).
    pub instret: u64,
}

impl CsrFile {
    /// A reset-state CSR file for hart `hartid`.
    pub fn new(hartid: u64) -> Self {
        CsrFile {
            hartid,
            ..CsrFile::default()
        }
    }

    /// Raw read, or `None` for unimplemented CSR numbers.
    fn read_raw(&self, num: u16) -> Option<u64> {
        Some(match num {
            csr::MSTATUS => self.mstatus,
            csr::MISA => MISA_RV64IA,
            csr::MIE => self.mie,
            csr::MTVEC => self.mtvec,
            csr::MSCRATCH => self.mscratch,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MTVAL => self.mtval,
            csr::MIP => self.mip,
            csr::MHARTID => self.hartid,
            csr::CYCLE | csr::INSTRET => self.instret,
            _ => return None,
        })
    }

    /// Raw write; `Err` for unimplemented or read-only CSR numbers.
    fn write_raw(&mut self, num: u16, value: u64) -> Result<(), ()> {
        match num {
            csr::MSTATUS => self.mstatus = value & MSTATUS_MASK,
            csr::MIE => self.mie = value & MI_MASK,
            csr::MTVEC => self.mtvec = value,
            csr::MSCRATCH => self.mscratch = value,
            // mepc holds only IALIGN'd addresses (low two bits WARL-zero).
            csr::MEPC => self.mepc = value & !0b11,
            csr::MCAUSE => self.mcause = value,
            csr::MTVAL => self.mtval = value,
            csr::MIP => self.mip = value & MI_MASK,
            _ => return Err(()),
        }
        Ok(())
    }

    /// Executes one CSR instruction: returns the old CSR value to put
    /// in `rd`, after applying the write/set/clear with `operand`
    /// (a register value or zero-extended immediate).
    ///
    /// Per the spec, `csrrs`/`csrrc` with `rs1 = x0` (or the `*i` forms
    /// with a zero immediate) read without writing, so they are legal
    /// on read-only CSRs; `csrrw` always writes.
    pub fn execute(
        &mut self,
        op: CsrOp,
        num: u16,
        operand: u64,
        encoding: u32,
    ) -> Result<u64, Trap> {
        let illegal = || Trap::IllegalInstruction(encoding as u64);
        let old = self.read_raw(num).ok_or_else(illegal)?;
        let (write, value) = match op {
            CsrOp::Rw | CsrOp::Rwi => (true, operand),
            CsrOp::Rs | CsrOp::Rsi => (operand != 0, old | operand),
            CsrOp::Rc | CsrOp::Rci => (operand != 0, old & !operand),
        };
        if write {
            self.write_raw(num, value).map_err(|()| illegal())?;
        }
        Ok(old)
    }

    /// Whether `mstatus.MIE` is set (interrupts globally enabled).
    pub fn interrupts_enabled(&self) -> bool {
        self.mstatus & mstatus::MIE != 0
    }

    /// Records trap state on entry: stacks MIE into MPIE, clears MIE,
    /// sets MPP to M, and fills `mepc`/`mcause`/`mtval`. Returns the
    /// handler PC (honouring vectored mode for interrupts).
    pub fn trap_entry(&mut self, trap: Trap, pc: u64) -> u64 {
        let mie = self.mstatus & mstatus::MIE != 0;
        self.mstatus &= !(mstatus::MIE | mstatus::MPIE);
        if mie {
            self.mstatus |= mstatus::MPIE;
        }
        self.mstatus |= mstatus::MPP_M;
        self.mepc = pc & !0b11;
        self.mcause = trap.mcause();
        self.mtval = trap.mtval();
        let base = self.mtvec & !0b11;
        if self.mtvec & 0b11 == 1 && trap.is_interrupt() {
            base + 4 * (trap.mcause() & !(1 << 63))
        } else {
            base
        }
    }

    /// Executes `mret`: restores MIE from MPIE and returns the resume
    /// PC (`mepc`).
    pub fn trap_return(&mut self) -> u64 {
        let mpie = self.mstatus & mstatus::MPIE != 0;
        self.mstatus &= !mstatus::MIE;
        if mpie {
            self.mstatus |= mstatus::MIE;
        }
        self.mstatus |= mstatus::MPIE;
        self.mepc
    }

    /// The highest-priority enabled pending interrupt, if interrupts
    /// are globally enabled (timer before software, matching the
    /// privileged spec's MTI > MSI ordering within M-mode).
    pub fn pending_interrupt(&self) -> Option<Trap> {
        if !self.interrupts_enabled() {
            return None;
        }
        let active = self.mie & self.mip;
        if active & ise_types::trap::mip::MTIP != 0 {
            Some(Trap::MachineTimerInterrupt)
        } else if active & ise_types::trap::mip::MSIP != 0 {
            Some(Trap::MachineSoftwareInterrupt)
        } else {
            None
        }
    }
}

impl Persist for CsrFile {
    fn save(&self, w: &mut Writer) {
        w.u64(self.hartid);
        w.u64(self.mstatus);
        w.u64(self.mie);
        w.u64(self.mtvec);
        w.u64(self.mscratch);
        w.u64(self.mepc);
        w.u64(self.mcause);
        w.u64(self.mtval);
        w.u64(self.mip);
        w.u64(self.instret);
    }
    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        Ok(CsrFile {
            hartid: r.u64()?,
            mstatus: r.u64()?,
            mie: r.u64()?,
            mtvec: r.u64()?,
            mscratch: r.u64()?,
            mepc: r.u64()?,
            mcause: r.u64()?,
            mtval: r.u64()?,
            mip: r.u64()?,
            instret: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::trap::mip;

    #[test]
    fn csrrw_swaps_and_reads_old() {
        let mut f = CsrFile::new(0);
        let old = f.execute(CsrOp::Rw, csr::MSCRATCH, 0xabcd, 0).unwrap();
        assert_eq!(old, 0);
        assert_eq!(f.execute(CsrOp::Rs, csr::MSCRATCH, 0, 0).unwrap(), 0xabcd);
    }

    #[test]
    fn set_and_clear_are_bitwise() {
        let mut f = CsrFile::new(0);
        f.execute(CsrOp::Rs, csr::MIE, mip::MSIP | mip::MTIP, 0)
            .unwrap();
        assert_eq!(f.mie, mip::MSIP | mip::MTIP);
        f.execute(CsrOp::Rc, csr::MIE, mip::MSIP, 0).unwrap();
        assert_eq!(f.mie, mip::MTIP);
    }

    #[test]
    fn readonly_csrs_reject_writes_but_allow_passive_reads() {
        let mut f = CsrFile::new(7);
        assert_eq!(f.execute(CsrOp::Rs, csr::MHARTID, 0, 0).unwrap(), 7);
        assert!(f.execute(CsrOp::Rw, csr::MHARTID, 1, 0x1234).is_err());
        assert!(f.execute(CsrOp::Rs, csr::MISA, 1, 0).is_err());
    }

    #[test]
    fn unimplemented_csr_is_illegal() {
        let mut f = CsrFile::new(0);
        match f.execute(CsrOp::Rs, 0x7c0, 0, 0xbeef) {
            Err(Trap::IllegalInstruction(w)) => assert_eq!(w, 0xbeef),
            other => panic!("expected illegal, got {other:?}"),
        }
    }

    #[test]
    fn trap_entry_stacks_mie_and_mret_restores() {
        let mut f = CsrFile::new(0);
        f.mstatus = mstatus::MIE;
        f.mtvec = 0x800;
        let pc = f.trap_entry(Trap::IllegalInstruction(0x0), 0x104);
        assert_eq!(pc, 0x800);
        assert!(!f.interrupts_enabled());
        assert_ne!(f.mstatus & mstatus::MPIE, 0);
        assert_eq!(f.mepc, 0x104);
        assert_eq!(f.mcause, 2);
        let resume = f.trap_return();
        assert_eq!(resume, 0x104);
        assert!(f.interrupts_enabled());
    }

    #[test]
    fn vectored_mode_offsets_interrupts_only() {
        let mut f = CsrFile::new(0);
        f.mtvec = 0x1000 | 1;
        assert_eq!(
            f.trap_entry(Trap::MachineTimerInterrupt, 0x0),
            0x1000 + 4 * 7
        );
        assert_eq!(f.trap_entry(Trap::IllegalInstruction(0), 0x0), 0x1000);
    }

    #[test]
    fn interrupt_priority_is_timer_over_software() {
        let mut f = CsrFile::new(0);
        f.mstatus = mstatus::MIE;
        f.mie = mip::MSIP | mip::MTIP;
        f.mip = mip::MSIP | mip::MTIP;
        assert_eq!(f.pending_interrupt(), Some(Trap::MachineTimerInterrupt));
        f.mip = mip::MSIP;
        assert_eq!(f.pending_interrupt(), Some(Trap::MachineSoftwareInterrupt));
        f.mstatus = 0;
        assert_eq!(f.pending_interrupt(), None);
    }
}
