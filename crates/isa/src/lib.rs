//! RV64I interpreter frontend for the *Imprecise Store Exceptions*
//! reproduction.
//!
//! This crate executes real guest machine code and lowers it into the
//! trace instruction set the timing cores (crate `ise-cpu`) consume:
//!
//! * [`decode`] — a canonical RV64I (+Zifencei, +`amoadd`) decoder and
//!   exact re-encoder: every 32-bit word either round-trips through
//!   `encode(decode(w)) == w` or is an illegal-instruction trap.
//! * [`asm`] — a label-resolving assembler; the checked-in `guest/*.bin`
//!   images are produced (and verified) with it.
//! * [`csr`] — the minimal machine-mode CSR file (mstatus/mtvec/mepc/
//!   mcause/mtval plus identity and counters).
//! * [`bus`] — the guest physical address space: RAM shared 1:1 with
//!   the timing model, a CLINT-style timer/software-interrupt device,
//!   and a UART.
//! * [`hart`] — fetch/decode/execute with RISC-V trap semantics, each
//!   retirement lowered to one trace [`ise_types::instr::Instruction`].
//! * [`machine`] — deterministic round-robin multi-hart interleaving,
//!   event log, and [`ise_workloads::Workload`] packaging.
//! * [`programs`] — the checked-in guest programs (an MP litmus test
//!   and the EInject store-fault victim).
//!
//! The trap taxonomy follows the RISC-V privileged spec subset that the
//! `mizu` emulator models, mapped onto the simulator's exception
//! vocabulary by [`ise_types::trap::Trap::to_exception_kind`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod asm;
pub mod bus;
pub mod csr;
pub mod decode;
pub mod hart;
pub mod machine;
pub mod programs;

pub use asm::Asm;
pub use bus::{BusTarget, DeviceBus};
pub use csr::CsrFile;
pub use decode::{decode, encode, Decoded};
pub use hart::{Hart, MmioAccess, Step};
pub use machine::{GuestEvent, GuestEventKind, GuestMachine};
pub use programs::GuestProgram;
