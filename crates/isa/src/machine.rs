//! The guest machine: N harts round-robin over one [`DeviceBus`],
//! producing per-hart trace streams for the timing pipeline.
//!
//! Execution is a *functional pre-run*: the frontend interleaves harts
//! deterministically (hart 0, 1, …, then a CLINT tick, repeat), so the
//! value-resolved traces it emits are a pure function of the program
//! image. The timing model then replays those traces with real
//! store-buffer/FSB/cache behaviour. The interleaving is part of the
//! determinism contract — the same image always yields byte-identical
//! traces, registries, and snapshots.

use crate::bus::DeviceBus;
use crate::hart::{Hart, MmioAccess, Step};
use crate::programs::GuestProgram;
use ise_types::addr::PageId;
use ise_types::instr::Instruction;
use ise_types::persist::{Persist, PersistError, Reader, Writer};
use ise_types::trap::Trap;
use ise_workloads::Workload;
use std::fmt;
use std::sync::Arc;

/// Safety valve for runaway guests (spin loops that never exit).
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

/// Something notable that happened during guest execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestEventKind {
    /// A trap vectored into the handler at `mtvec`.
    Trap(Trap),
    /// A trap with no handler installed halted the hart (an `ecall`
    /// here is the clean-exit convention).
    Halt(Trap),
    /// A device access.
    Mmio(MmioAccess),
}

/// One event, stamped with the interleave round and hart that made it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestEvent {
    /// Interleave round (machine step count when it happened).
    pub step: u64,
    /// Hart index.
    pub hart: u8,
    /// What happened.
    pub kind: GuestEventKind,
}

/// Error from [`GuestMachine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestError {
    /// The guest did not halt within the step budget.
    StepBudget {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for GuestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestError::StepBudget { budget } => {
                write!(f, "guest did not halt within {budget} interleave rounds")
            }
        }
    }
}

impl std::error::Error for GuestError {}

/// The whole guest: harts, bus, and everything executed so far.
#[derive(Debug, Clone)]
pub struct GuestMachine {
    /// The harts, stepped in index order each round.
    pub harts: Vec<Hart>,
    /// RAM + devices.
    pub bus: DeviceBus,
    /// Per-hart lowered trace streams (what the timing cores will run).
    pub traces: Vec<Vec<Instruction>>,
    /// Trap/halt/MMIO event log, in interleave order.
    pub events: Vec<GuestEvent>,
    /// Interleave rounds completed.
    pub steps: u64,
}

impl GuestMachine {
    /// A machine with `harts` harts all entering at `entry`.
    pub fn new(harts: usize, entry: u64) -> Self {
        assert!(harts > 0, "guest machine needs at least one hart");
        GuestMachine {
            harts: (0..harts).map(|i| Hart::new(i as u64, entry)).collect(),
            bus: DeviceBus::new(harts),
            traces: vec![Vec::new(); harts],
            events: Vec::new(),
            steps: 0,
        }
    }

    /// Boots a checked-in guest program: loads its image and points
    /// every hart at its base.
    pub fn from_program(program: &GuestProgram) -> Self {
        let mut m = GuestMachine::new(program.harts, program.base);
        m.bus.load_image(program.base, &program.image);
        m
    }

    /// Whether every hart has halted.
    pub fn halted(&self) -> bool {
        self.harts.iter().all(|h| h.halted)
    }

    /// Runs one interleave round: each live hart steps once (in index
    /// order), then the CLINT ticks.
    pub fn step_round(&mut self) {
        for (i, hart) in self.harts.iter_mut().enumerate() {
            hart.csrs.mip = self.bus.clint.mip_bits(i);
            match hart.step(&mut self.bus) {
                Step::Retired { lowered, mmio } => {
                    self.traces[i].push(lowered);
                    if let Some(m) = mmio {
                        self.events.push(GuestEvent {
                            step: self.steps,
                            hart: i as u8,
                            kind: GuestEventKind::Mmio(m),
                        });
                    }
                }
                Step::Trapped(t) => self.events.push(GuestEvent {
                    step: self.steps,
                    hart: i as u8,
                    kind: GuestEventKind::Trap(t),
                }),
                Step::Halted(t) => self.events.push(GuestEvent {
                    step: self.steps,
                    hart: i as u8,
                    kind: GuestEventKind::Halt(t),
                }),
                Step::Idle => {}
            }
        }
        self.bus.clint.tick();
        self.steps += 1;
    }

    /// Runs until every hart halts.
    ///
    /// # Errors
    ///
    /// [`GuestError::StepBudget`] if the guest is still live after
    /// `budget` rounds.
    pub fn run(&mut self, budget: u64) -> Result<(), GuestError> {
        let end = self.steps + budget;
        while !self.halted() {
            if self.steps >= end {
                return Err(GuestError::StepBudget { budget });
            }
            self.step_round();
        }
        Ok(())
    }

    /// Everything the guest printed to the UART.
    pub fn uart_output(&self) -> &[u8] {
        &self.bus.uart.output
    }

    /// Packages the emitted traces as a [`Workload`] for the timing
    /// model, with the given EInject page arming.
    pub fn to_workload(&self, name: &str, einject_pages: Vec<PageId>) -> Workload {
        assert!(self.halted(), "package the workload after the guest halts");
        Workload {
            name: name.to_string(),
            traces: self
                .traces
                .iter()
                .map(|t| Arc::from(t.as_slice()))
                .collect(),
            einject_pages,
        }
    }
}

mod persist_impls {
    use super::*;

    impl Persist for MmioAccess {
        fn save(&self, w: &mut Writer) {
            w.bool(self.write);
            self.addr.save(w);
            w.u64(self.value);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(MmioAccess {
                write: r.bool()?,
                addr: Persist::restore(r)?,
                value: r.u64()?,
            })
        }
    }

    impl Persist for GuestEventKind {
        fn save(&self, w: &mut Writer) {
            match self {
                GuestEventKind::Trap(t) => {
                    w.u8(0);
                    t.save(w);
                }
                GuestEventKind::Halt(t) => {
                    w.u8(1);
                    t.save(w);
                }
                GuestEventKind::Mmio(m) => {
                    w.u8(2);
                    m.save(w);
                }
            }
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => GuestEventKind::Trap(Persist::restore(r)?),
                1 => GuestEventKind::Halt(Persist::restore(r)?),
                2 => GuestEventKind::Mmio(Persist::restore(r)?),
                _ => return Err(PersistError::Corrupt("GuestEventKind discriminant")),
            })
        }
    }

    impl Persist for GuestEvent {
        fn save(&self, w: &mut Writer) {
            w.u64(self.step);
            w.u8(self.hart);
            self.kind.save(w);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(GuestEvent {
                step: r.u64()?,
                hart: r.u8()?,
                kind: Persist::restore(r)?,
            })
        }
    }

    impl Persist for GuestMachine {
        fn save(&self, w: &mut Writer) {
            w.section(*b"GSTM", |w| {
                self.harts.save(w);
                self.bus.save(w);
                self.traces.save(w);
                self.events.save(w);
                w.u64(self.steps);
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            r.section(*b"GSTM", |r| {
                let m = GuestMachine {
                    harts: Persist::restore(r)?,
                    bus: Persist::restore(r)?,
                    traces: Persist::restore(r)?,
                    events: Persist::restore(r)?,
                    steps: r.u64()?,
                };
                if m.harts.is_empty() || m.traces.len() != m.harts.len() {
                    return Err(PersistError::Corrupt("GuestMachine shape"));
                }
                Ok(m)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use ise_types::persist::{restore_container, save_container};

    #[test]
    fn mp_litmus_runs_to_completion_and_passes_the_message() {
        let prog = programs::mp_litmus();
        let mut m = GuestMachine::from_program(&prog);
        m.run(DEFAULT_STEP_BUDGET).unwrap();
        // Hart 1's a0 observed the data value through the flag.
        assert_eq!(m.harts[1].x(10), 42);
        // Both harts exited via ecall-halt.
        assert_eq!(
            m.events
                .iter()
                .filter(|e| matches!(
                    e.kind,
                    GuestEventKind::Halt(Trap::EnvironmentCallFromMMode(_))
                ))
                .count(),
            2
        );
        // Traces are non-empty for every hart (a System precondition).
        assert!(m.traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn victim_stores_into_the_einject_window() {
        use ise_types::instr::InstrKind;
        let prog = programs::store_fault_victim();
        let mut m = GuestMachine::from_program(&prog);
        m.run(DEFAULT_STEP_BUDGET).unwrap();
        let armed: std::collections::HashSet<_> = prog.einject_pages.iter().copied().collect();
        let faulting_stores = m.traces[0]
            .iter()
            .filter(|i| match i.kind {
                InstrKind::Store { addr, .. } => armed.contains(&addr.page()),
                _ => false,
            })
            .count();
        assert!(faulting_stores > 0, "victim must store to armed pages");
        assert_eq!(m.uart_output(), b"V");
    }

    #[test]
    fn reruns_are_byte_identical() {
        let prog = programs::mp_litmus();
        let mut a = GuestMachine::from_program(&prog);
        let mut b = GuestMachine::from_program(&prog);
        a.run(DEFAULT_STEP_BUDGET).unwrap();
        b.run(DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(save_container(&a), save_container(&b));
    }

    #[test]
    fn snapshot_mid_run_resumes_identically() {
        let prog = programs::mp_litmus();
        let mut whole = GuestMachine::from_program(&prog);
        whole.run(DEFAULT_STEP_BUDGET).unwrap();

        let mut cut = GuestMachine::from_program(&prog);
        for _ in 0..5 {
            cut.step_round();
        }
        let snap = save_container(&cut);
        let mut resumed: GuestMachine = restore_container(&snap).unwrap();
        resumed.run(DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(save_container(&resumed), save_container(&whole));
    }

    #[test]
    fn step_budget_is_an_error_not_a_hang() {
        // A guest that spins forever (jal to self).
        let mut asm = crate::asm::Asm::new(0x1_0000);
        let spin = asm.here();
        asm.jal(0, spin);
        let mut m = GuestMachine::new(1, 0x1_0000);
        m.bus.load_image(0x1_0000, &asm.assemble());
        assert_eq!(m.run(100), Err(GuestError::StepBudget { budget: 100 }));
    }

    #[test]
    fn workload_packaging_carries_traces_and_pages() {
        let prog = programs::store_fault_victim();
        let mut m = GuestMachine::from_program(&prog);
        m.run(DEFAULT_STEP_BUDGET).unwrap();
        let wl = m.to_workload(prog.name, prog.einject_pages.clone());
        assert_eq!(wl.traces.len(), prog.harts);
        assert_eq!(wl.einject_pages, prog.einject_pages);
        assert!(wl.total_instructions() > 0);
    }
}
