//! The guest physical address space: RAM plus two MMIO devices.
//!
//! Guest addresses map 1:1 into the timing model's address space, so a
//! guest store into the EInject window (`layout::EINJECT_BASE`) lands on
//! the same addresses the hierarchy marks as faulting. Two device
//! windows are carved out of the low range, mirroring the `virt` machine
//! the mizu emulator targets: a CLINT-style timer/software-interrupt
//! block and a byte-oriented UART. Everything outside RAM and the
//! device windows is unmapped and access-faults.
//!
//! ```text
//! 0x0000_1000 ─ RAM base (fetch + data; code conventionally at 0x1_0000)
//! 0x0200_0000 ─ CLINT   (msip / mtimecmp / mtime)
//! 0x1000_0000 ─ UART    (transmit register + line status)
//! 0x4000_0000 ─ EInject window (plain RAM here; faulting in the
//!               timing hierarchy when the page is armed)
//! 0x8000_0000 ─ end of RAM
//! ```

use ise_mem::FlatMemory;
use ise_types::addr::{AccessSize, Addr};
use ise_types::persist::{Persist, PersistError, Reader, Writer};
use ise_types::trap::Trap;

/// First valid RAM byte (the zero page is left unmapped so null-ish
/// guest pointers fault).
pub const RAM_BASE: u64 = 0x1000;
/// One-past-the-last RAM byte.
pub const RAM_LIMIT: u64 = 0x8000_0000;
/// CLINT window base.
pub const CLINT_BASE: u64 = 0x0200_0000;
/// CLINT window size.
pub const CLINT_SIZE: u64 = 0x1_0000;
/// UART window base.
pub const UART_BASE: u64 = 0x1000_0000;
/// UART window size.
pub const UART_SIZE: u64 = 0x100;

/// CLINT register offsets (per-hart `msip` words, per-hart `mtimecmp`
/// doubles, one global `mtime`), matching the SiFive/QEMU layout.
mod clint_off {
    pub const MSIP: u64 = 0x0;
    pub const MTIMECMP: u64 = 0x4000;
    pub const MTIME: u64 = 0xbff8;
}

/// UART register offsets (8250 subset).
mod uart_off {
    /// Transmit holding register (write) / receive buffer (read).
    pub const THR: u64 = 0x0;
    /// Line status register (read-only).
    pub const LSR: u64 = 0x5;
}

/// LSR value: transmitter empty and idle.
const LSR_IDLE: u64 = 0x60;

/// Where a routed access landed — the hart uses this to decide how the
/// access lowers into the trace ISA (RAM → real load/store, device →
/// fixed-latency `Other` plus an MMIO event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusTarget {
    /// Backed by [`FlatMemory`]; shared with the timing model.
    Ram,
    /// The CLINT window.
    Clint,
    /// The UART window.
    Uart,
}

/// Transmit-only UART: bytes written to THR accumulate in `output`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Uart {
    /// Everything the guest has printed.
    pub output: Vec<u8>,
}

impl Uart {
    fn load(&self, offset: u64, size: AccessSize) -> Option<u64> {
        if size != AccessSize::Byte {
            return None;
        }
        match offset {
            uart_off::THR => Some(0),
            uart_off::LSR => Some(LSR_IDLE),
            _ => None,
        }
    }

    fn store(&mut self, offset: u64, size: AccessSize, value: u64) -> Option<()> {
        if size != AccessSize::Byte || offset != uart_off::THR {
            return None;
        }
        self.output.push(value as u8);
        Some(())
    }
}

/// CLINT-style timer/software-interrupt device: one `msip` bit and one
/// `mtimecmp` per hart, one shared `mtime` that the machine advances
/// once per interleave round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clint {
    /// Per-hart software-interrupt pending bits.
    pub msip: Vec<bool>,
    /// Per-hart timer compare values.
    pub mtimecmp: Vec<u64>,
    /// The shared timebase.
    pub mtime: u64,
}

impl Clint {
    /// A CLINT for `harts` harts with timers parked at `u64::MAX`.
    pub fn new(harts: usize) -> Self {
        Clint {
            msip: vec![false; harts],
            mtimecmp: vec![u64::MAX; harts],
            mtime: 0,
        }
    }

    /// Advances the timebase by one tick.
    pub fn tick(&mut self) {
        self.mtime += 1;
    }

    /// The `mip` bits (MSIP/MTIP) currently asserted for `hart`.
    pub fn mip_bits(&self, hart: usize) -> u64 {
        let mut bits = 0;
        if self.msip.get(hart).copied().unwrap_or(false) {
            bits |= ise_types::trap::mip::MSIP;
        }
        if self
            .mtimecmp
            .get(hart)
            .map(|&c| self.mtime >= c)
            .unwrap_or(false)
        {
            bits |= ise_types::trap::mip::MTIP;
        }
        bits
    }

    fn msip_hart(&self, offset: u64) -> Option<usize> {
        let span = clint_off::MSIP..clint_off::MSIP + 4 * self.msip.len() as u64;
        span.contains(&offset)
            .then(|| ((offset - clint_off::MSIP) / 4) as usize)
    }

    fn mtimecmp_hart(&self, offset: u64) -> Option<usize> {
        let span = clint_off::MTIMECMP..clint_off::MTIMECMP + 8 * self.mtimecmp.len() as u64;
        span.contains(&offset)
            .then(|| ((offset - clint_off::MTIMECMP) / 8) as usize)
    }

    fn load(&self, offset: u64, size: AccessSize) -> Option<u64> {
        match size {
            AccessSize::Word => self.msip_hart(offset).map(|h| self.msip[h] as u64),
            AccessSize::Double => {
                if offset == clint_off::MTIME {
                    Some(self.mtime)
                } else {
                    self.mtimecmp_hart(offset).map(|h| self.mtimecmp[h])
                }
            }
            _ => None,
        }
    }

    fn store(&mut self, offset: u64, size: AccessSize, value: u64) -> Option<()> {
        match size {
            AccessSize::Word => {
                let h = self.msip_hart(offset)?;
                self.msip[h] = value & 1 != 0;
                Some(())
            }
            AccessSize::Double => {
                if offset == clint_off::MTIME {
                    self.mtime = value;
                } else {
                    let h = self.mtimecmp_hart(offset)?;
                    self.mtimecmp[h] = value;
                }
                Some(())
            }
            _ => None,
        }
    }
}

/// The routed guest address space: RAM behind two device windows.
#[derive(Debug, Clone)]
pub struct DeviceBus {
    /// Architectural RAM, shared layout with the timing model.
    pub ram: FlatMemory,
    /// The UART.
    pub uart: Uart,
    /// The CLINT.
    pub clint: Clint,
}

impl DeviceBus {
    /// An empty bus serving `harts` harts.
    pub fn new(harts: usize) -> Self {
        DeviceBus {
            ram: FlatMemory::new(),
            uart: Uart::default(),
            clint: Clint::new(harts),
        }
    }

    /// Which window `addr` falls in, or `None` for unmapped space.
    pub fn route(addr: Addr) -> Option<BusTarget> {
        let a = addr.raw();
        if (CLINT_BASE..CLINT_BASE + CLINT_SIZE).contains(&a) {
            Some(BusTarget::Clint)
        } else if (UART_BASE..UART_BASE + UART_SIZE).contains(&a) {
            Some(BusTarget::Uart)
        } else if (RAM_BASE..RAM_LIMIT).contains(&a) {
            Some(BusTarget::Ram)
        } else {
            None
        }
    }

    /// Fetches one 32-bit instruction word. Fetch requires a 4-aligned
    /// PC (IALIGN=32; no compressed instructions) and RAM backing —
    /// executing out of a device window is an access fault.
    pub fn fetch(&self, pc: u64) -> Result<u32, Trap> {
        let addr = Addr::new(pc);
        if !pc.is_multiple_of(4) {
            return Err(Trap::InstructionAddrMisaligned(addr));
        }
        match Self::route(addr) {
            Some(BusTarget::Ram) => Ok(self
                .ram
                .load_sized(addr, AccessSize::Word)
                .expect("4-aligned fetch cannot misalign")
                as u32),
            _ => Err(Trap::InstructionAccessFault(addr)),
        }
    }

    /// Routed, size-checked load. Misalignment is checked before
    /// routing, so a misaligned device access reports the misaligned
    /// trap rather than a device quirk.
    pub fn load(&self, addr: Addr, size: AccessSize) -> Result<(u64, BusTarget), Trap> {
        if !addr.is_aligned(size) {
            return Err(Trap::misaligned_load(addr, size));
        }
        match Self::route(addr) {
            Some(BusTarget::Ram) => Ok((self.ram.load_sized(addr, size)?, BusTarget::Ram)),
            Some(BusTarget::Clint) => self
                .clint
                .load(addr.raw() - CLINT_BASE, size)
                .map(|v| (v, BusTarget::Clint))
                .ok_or(Trap::LoadAccessFault(addr)),
            Some(BusTarget::Uart) => self
                .uart
                .load(addr.raw() - UART_BASE, size)
                .map(|v| (v, BusTarget::Uart))
                .ok_or(Trap::LoadAccessFault(addr)),
            None => Err(Trap::LoadAccessFault(addr)),
        }
    }

    /// Routed, size-checked store.
    pub fn store(&mut self, addr: Addr, size: AccessSize, value: u64) -> Result<BusTarget, Trap> {
        if !addr.is_aligned(size) {
            return Err(Trap::misaligned_store(addr, size));
        }
        match Self::route(addr) {
            Some(BusTarget::Ram) => {
                self.ram.store_sized(addr, size, value)?;
                Ok(BusTarget::Ram)
            }
            Some(BusTarget::Clint) => self
                .clint
                .store(addr.raw() - CLINT_BASE, size, value)
                .map(|()| BusTarget::Clint)
                .ok_or(Trap::StoreAMOAccessFault(addr)),
            Some(BusTarget::Uart) => self
                .uart
                .store(addr.raw() - UART_BASE, size, value)
                .map(|()| BusTarget::Uart)
                .ok_or(Trap::StoreAMOAccessFault(addr)),
            None => Err(Trap::StoreAMOAccessFault(addr)),
        }
    }

    /// Routed AMO fetch-and-add. AMOs are RAM-only; device windows
    /// reject them with the store-side access fault.
    pub fn amo_add(&mut self, addr: Addr, size: AccessSize, add: u64) -> Result<u64, Trap> {
        if !addr.is_aligned(size) {
            return Err(Trap::misaligned_store(addr, size));
        }
        match Self::route(addr) {
            Some(BusTarget::Ram) => self.ram.fetch_add_sized(addr, size, add),
            Some(_) => Err(Trap::StoreAMOAccessFault(addr)),
            None => Err(Trap::StoreAMOAccessFault(addr)),
        }
    }

    /// Copies a flat binary image into RAM at `base` (byte-granular;
    /// used to place assembled guest programs and data).
    pub fn load_image(&mut self, base: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.ram
                .store_sized(Addr::new(base + i as u64), AccessSize::Byte, b as u64)
                .expect("byte stores cannot misalign");
        }
    }
}

impl Persist for Uart {
    fn save(&self, w: &mut Writer) {
        w.bytes(&self.output);
    }
    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        Ok(Uart {
            output: r.bytes()?.to_vec(),
        })
    }
}

impl Persist for Clint {
    fn save(&self, w: &mut Writer) {
        self.msip.save(w);
        self.mtimecmp.save(w);
        w.u64(self.mtime);
    }
    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        Ok(Clint {
            msip: Persist::restore(r)?,
            mtimecmp: Persist::restore(r)?,
            mtime: r.u64()?,
        })
    }
}

impl Persist for DeviceBus {
    fn save(&self, w: &mut Writer) {
        w.section(*b"GBUS", |w| {
            self.ram.save(w);
            self.uart.save(w);
            self.clint.save(w);
        });
    }
    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        r.section(*b"GBUS", |r| {
            Ok(DeviceBus {
                ram: Persist::restore(r)?,
                uart: Persist::restore(r)?,
                clint: Persist::restore(r)?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_partitions_the_address_space() {
        assert_eq!(DeviceBus::route(Addr::new(0x1_0000)), Some(BusTarget::Ram));
        assert_eq!(
            DeviceBus::route(Addr::new(CLINT_BASE)),
            Some(BusTarget::Clint)
        );
        assert_eq!(
            DeviceBus::route(Addr::new(UART_BASE)),
            Some(BusTarget::Uart)
        );
        assert_eq!(
            DeviceBus::route(Addr::new(0x4000_0000)),
            Some(BusTarget::Ram)
        );
        assert_eq!(DeviceBus::route(Addr::new(0)), None);
        assert_eq!(DeviceBus::route(Addr::new(RAM_LIMIT)), None);
    }

    #[test]
    fn uart_accumulates_bytes_and_reports_idle() {
        let mut bus = DeviceBus::new(1);
        for b in b"ok" {
            bus.store(Addr::new(UART_BASE), AccessSize::Byte, *b as u64)
                .unwrap();
        }
        assert_eq!(bus.uart.output, b"ok");
        let (lsr, tgt) = bus
            .load(Addr::new(UART_BASE + 5), AccessSize::Byte)
            .unwrap();
        assert_eq!(lsr, LSR_IDLE);
        assert_eq!(tgt, BusTarget::Uart);
    }

    #[test]
    fn clint_timer_and_software_bits() {
        let mut bus = DeviceBus::new(2);
        // msip for hart 1 at base + 4.
        bus.store(Addr::new(CLINT_BASE + 4), AccessSize::Word, 1)
            .unwrap();
        assert_eq!(bus.clint.mip_bits(1), ise_types::trap::mip::MSIP);
        assert_eq!(bus.clint.mip_bits(0), 0);
        // Timer for hart 0 fires once mtime reaches mtimecmp.
        bus.store(
            Addr::new(CLINT_BASE + clint_off::MTIMECMP),
            AccessSize::Double,
            3,
        )
        .unwrap();
        for _ in 0..3 {
            assert_eq!(bus.clint.mip_bits(0) & ise_types::trap::mip::MTIP, 0);
            bus.clint.tick();
        }
        assert_eq!(
            bus.clint.mip_bits(0) & ise_types::trap::mip::MTIP,
            ise_types::trap::mip::MTIP
        );
        let (mtime, _) = bus
            .load(Addr::new(CLINT_BASE + clint_off::MTIME), AccessSize::Double)
            .unwrap();
        assert_eq!(mtime, 3);
    }

    #[test]
    fn unmapped_and_wrong_size_accesses_fault() {
        let mut bus = DeviceBus::new(1);
        assert_eq!(
            bus.load(Addr::new(0), AccessSize::Double),
            Err(Trap::LoadAccessFault(Addr::new(0)))
        );
        assert_eq!(
            bus.store(Addr::new(RAM_LIMIT), AccessSize::Byte, 1),
            Err(Trap::StoreAMOAccessFault(Addr::new(RAM_LIMIT)))
        );
        // UART only speaks bytes.
        assert_eq!(
            bus.load(Addr::new(UART_BASE), AccessSize::Word),
            Err(Trap::LoadAccessFault(Addr::new(UART_BASE)))
        );
        // AMO against a device window.
        assert_eq!(
            bus.amo_add(Addr::new(CLINT_BASE), AccessSize::Word, 1),
            Err(Trap::StoreAMOAccessFault(Addr::new(CLINT_BASE)))
        );
    }

    #[test]
    fn misalignment_outranks_routing() {
        let bus = DeviceBus::new(1);
        assert_eq!(
            bus.load(Addr::new(CLINT_BASE + 2), AccessSize::Word),
            Err(Trap::LoadAccessMisaligned(Addr::new(CLINT_BASE + 2)))
        );
    }

    #[test]
    fn fetch_requires_aligned_ram() {
        let mut bus = DeviceBus::new(1);
        bus.load_image(0x1_0000, &0x0000_0513u32.to_le_bytes());
        assert_eq!(bus.fetch(0x1_0000).unwrap(), 0x0000_0513);
        assert_eq!(
            bus.fetch(0x1_0002),
            Err(Trap::InstructionAddrMisaligned(Addr::new(0x1_0002)))
        );
        assert_eq!(
            bus.fetch(UART_BASE),
            Err(Trap::InstructionAccessFault(Addr::new(UART_BASE)))
        );
    }

    #[test]
    fn image_bytes_land_in_ram() {
        let mut bus = DeviceBus::new(1);
        bus.load_image(0x2000, &[1, 2, 3, 4, 5]);
        assert_eq!(
            bus.ram
                .load_sized(Addr::new(0x2002), AccessSize::Byte)
                .unwrap(),
            3
        );
    }

    #[test]
    fn bus_persists_round_trip() {
        use ise_types::persist::{restore_container, save_container};
        let mut bus = DeviceBus::new(2);
        bus.load_image(0x2000, b"hello");
        bus.uart.output = b"out".to_vec();
        bus.clint.msip[1] = true;
        bus.clint.mtime = 42;
        let bytes = save_container(&bus);
        let back: DeviceBus = restore_container(&bytes).unwrap();
        assert_eq!(back.uart, bus.uart);
        assert_eq!(back.clint, bus.clint);
        assert_eq!(
            back.ram
                .load_sized(Addr::new(0x2000), AccessSize::Byte)
                .unwrap(),
            b'h' as u64
        );
    }
}
