//! The checked-in guest programs.
//!
//! Each program is authored with the in-crate assembler ([`crate::asm`])
//! and also checked into the repo as an assembled flat image under
//! `guest/*.bin`; a test asserts the two stay in lockstep, and the
//! `guest` bench binary can regenerate the images (`--write-bins`).
//! All harts enter at the image base and dispatch on `mhartid`.

use crate::asm::Asm;
use crate::bus::UART_BASE;
use ise_types::addr::{Addr, PageId};
use ise_workloads::layout::EINJECT_BASE;

/// Program image base (inside RAM, clear of the device windows and the
/// timing model's FSB region at `0x2000_0000`).
pub const CODE_BASE: u64 = 0x1_0000;

/// Shared-data region used by the litmus programs (plain RAM).
pub const DATA_BASE: u64 = 0x3000_0000;

/// One assembled guest program plus the metadata needed to run it on
/// the timing model.
#[derive(Debug, Clone)]
pub struct GuestProgram {
    /// Program name (doubles as the `guest/<name>.bin` file stem).
    pub name: &'static str,
    /// Load/link address of the image.
    pub base: u64,
    /// Number of harts the program expects.
    pub harts: usize,
    /// The flat little-endian image.
    pub image: Vec<u8>,
    /// Pages to arm in EInject when running on the timing model.
    pub einject_pages: Vec<PageId>,
}

// Register aliases used below (RISC-V ABI names).
const T0: u8 = 5;
const T1: u8 = 6;
const T2: u8 = 7;
const A0: u8 = 10;
const A1: u8 = 11;

/// The message-passing (MP) litmus test, on real RV64 code: hart 0
/// publishes data then raises a flag behind a `fence w,w`; hart 1
/// spins on the flag and reads the data behind a `fence r,r`. The
/// forbidden outcome is hart 1 observing the flag but stale data —
/// hart 1's final `a0` must be 42.
pub fn mp_litmus() -> GuestProgram {
    let data = DATA_BASE as i64;
    let flag = (DATA_BASE + 0x40) as i64;
    let mut a = Asm::new(CODE_BASE);
    let hart1 = a.reserve_label();
    a.csrrs(T0, ise_types::trap::csr::MHARTID, 0);
    a.bne(T0, 0, hart1);
    // Hart 0: producer.
    a.li(T0, data);
    a.li(T1, 42);
    a.sd(T1, T0, 0);
    a.fence(0b01, 0b01); // fence w,w
    a.li(T0, flag);
    a.li(T1, 1);
    a.sd(T1, T0, 0);
    a.ecall();
    // Hart 1: consumer.
    a.bind(hart1);
    a.li(T0, flag);
    let spin = a.here();
    a.ld(T1, T0, 0);
    a.beq(T1, 0, spin);
    a.fence(0b10, 0b10); // fence r,r
    a.li(T0, data);
    a.ld(A0, T0, 0);
    a.ecall();
    GuestProgram {
        name: "mp_litmus",
        base: CODE_BASE,
        harts: 2,
        image: a.assemble(),
        einject_pages: Vec::new(),
    }
}

/// The store-fault victim: a single hart streams stores across two
/// pages of the EInject window (plus an AMO and a UART byte), so that
/// on the timing model — with those pages armed — the stores retire,
/// fault post-retirement at the LLC↔memory boundary, and drain through
/// the FSB/handler recovery path.
pub fn store_fault_victim() -> GuestProgram {
    let page0 = Addr::new(EINJECT_BASE).page();
    let page1 = Addr::new(EINJECT_BASE + 0x1000).page();
    let mut a = Asm::new(CODE_BASE);
    // 16 doubleword stores at line stride across the first armed page.
    a.li(T0, EINJECT_BASE as i64);
    a.li(T1, 0xa5);
    a.li(T2, 16);
    let loop0 = a.here();
    a.sd(T1, T0, 0);
    a.addi(T0, T0, 64);
    a.addi(T1, T1, 1);
    a.addi(T2, T2, -1);
    a.bne(T2, 0, loop0);
    // 8 word stores across the second armed page.
    a.li(T0, (EINJECT_BASE + 0x1000) as i64);
    a.li(T2, 8);
    let loop1 = a.here();
    a.sw(T1, T0, 0);
    a.addi(T0, T0, 64);
    a.addi(T1, T1, 3);
    a.addi(T2, T2, -1);
    a.bne(T2, 0, loop1);
    a.fence(0b11, 0b11); // fence rw,rw: drain before the tail work
                         // A fetch-and-add on plain RAM (exercises the Atomic lowering).
    a.li(T0, (DATA_BASE + 0x80) as i64);
    a.li(T1, 5);
    a.amoadd_d(A1, T1, T0);
    // Tell the world we got here.
    a.li(T0, UART_BASE as i64);
    a.li(T1, b'V' as i64);
    a.sb(T1, T0, 0);
    a.ecall();
    GuestProgram {
        name: "store_fault_victim",
        base: CODE_BASE,
        harts: 1,
        image: a.assemble(),
        einject_pages: vec![page0, page1],
    }
}

/// Every checked-in guest program.
pub fn all() -> Vec<GuestProgram> {
    vec![mp_litmus(), store_fault_victim()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn bin_path(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../guest")
            .join(format!("{name}.bin"))
    }

    /// The checked-in `guest/*.bin` images must match what the
    /// assembler produces (regenerate with
    /// `cargo run -p ise-bench --bin guest -- --write-bins`).
    #[test]
    fn checked_in_images_match_the_assembler() {
        for prog in all() {
            let path = bin_path(prog.name);
            let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
                panic!(
                    "missing checked-in image {} ({e}); regenerate with \
                     `cargo run -p ise-bench --bin guest -- --write-bins`",
                    path.display()
                )
            });
            assert_eq!(
                on_disk, prog.image,
                "{} image drifted from its source; regenerate the bin",
                prog.name
            );
        }
    }

    #[test]
    fn victim_pages_sit_in_the_einject_window() {
        use ise_workloads::layout::EINJECT_SIZE;
        let prog = store_fault_victim();
        assert!(!prog.einject_pages.is_empty());
        for p in &prog.einject_pages {
            let base = p.base().raw();
            assert!((EINJECT_BASE..EINJECT_BASE + EINJECT_SIZE).contains(&base));
        }
    }

    #[test]
    fn program_names_are_unique_and_filesystem_safe() {
        let mut names: Vec<_> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }
}
