//! One RV64 hart: 31 general registers + PC + CSR file, executing
//! against a [`DeviceBus`] and lowering every retired instruction into
//! the trace ISA the timing cores consume.
//!
//! # Lowering
//!
//! The timing pipeline executes value-resolved traces over an 8-byte-
//! word functional memory, so the lowering keeps the timing model's
//! view of memory exactly consistent with the byte-accurate frontend:
//!
//! * RAM loads lower to `Load` at the containing word address.
//! * RAM stores lower to `Store` of the *merged containing word* —
//!   a guest `sb` becomes a word store whose value already has the
//!   other seven bytes folded in, so replaying the trace reproduces
//!   the frontend's memory byte-for-byte.
//! * AMOs lower to `Atomic` whose addend is the word-level delta
//!   (`after - before`), for the same reason.
//! * Device accesses never reach the timing hierarchy: they lower to
//!   fixed-latency `Other` work and surface as MMIO events.
//! * `fence`/`fence.i` lower to the matching trace fence strength.
//! * Everything else (ALU, branches, CSR ops) lowers to `Other`.

use crate::bus::{BusTarget, DeviceBus};
use crate::csr::CsrFile;
use crate::decode::{
    decode, Alu32Op, AluImmOp, AluOp, AmoOp, BranchOp, Decoded, LoadOp, ShiftOp, StoreOp,
};
use ise_types::addr::{AccessSize, Addr};
use ise_types::instr::{FenceKind, Instruction, Reg};
use ise_types::persist::{Persist, PersistError, Reader, Writer};
use ise_types::trap::Trap;

/// Latency charged for ALU/branch/jump work in the timing pipeline.
pub const ALU_LATENCY: u32 = 1;
/// Latency charged for CSR accesses and `mret`.
pub const CSR_LATENCY: u32 = 4;
/// Latency charged for an MMIO device access.
pub const MMIO_LATENCY: u32 = 16;

/// One device access, reported alongside the retirement that made it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmioAccess {
    /// Store (`true`) or load (`false`).
    pub write: bool,
    /// Guest physical address.
    pub addr: Addr,
    /// Value stored, or value loaded.
    pub value: u64,
}

/// Outcome of one [`Hart::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Retired one instruction.
    Retired {
        /// The trace-ISA lowering of the retired instruction.
        lowered: Instruction,
        /// The device access it performed, if any.
        mmio: Option<MmioAccess>,
    },
    /// Took a trap (exception or interrupt) and vectored into the
    /// handler at `mtvec`.
    Trapped(Trap),
    /// Took a trap with no handler installed (`mtvec = 0`); the hart
    /// is now halted. An `ecall` under this convention is a clean exit.
    Halted(Trap),
    /// The hart was already halted; nothing happened.
    Idle,
}

/// Architectural state of one hart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hart {
    /// x0..x31 (x0 reads as zero; writes to it are discarded).
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Machine-mode CSRs.
    pub csrs: CsrFile,
    /// Whether the hart has halted (unhandled trap / clean exit).
    pub halted: bool,
}

impl Hart {
    /// A reset hart with the given id, starting at `pc`.
    pub fn new(hartid: u64, pc: u64) -> Self {
        Hart {
            regs: [0; 32],
            pc,
            csrs: CsrFile::new(hartid),
            halted: false,
        }
    }

    /// Reads register `r` (x0 is always zero).
    pub fn x(&self, r: u8) -> u64 {
        self.regs[r as usize & 31]
    }

    /// Writes register `r`, discarding writes to x0.
    pub fn set_x(&mut self, r: u8, v: u64) {
        if r & 31 != 0 {
            self.regs[r as usize & 31] = v;
        }
    }

    fn take_trap(&mut self, trap: Trap) -> Step {
        if self.csrs.mtvec == 0 {
            self.halted = true;
            Step::Halted(trap)
        } else {
            self.pc = self.csrs.trap_entry(trap, self.pc);
            Step::Trapped(trap)
        }
    }

    /// Fetches, decodes, and executes one instruction (or takes a
    /// pending interrupt). `mip` should be refreshed from the CLINT by
    /// the caller before each step.
    pub fn step(&mut self, bus: &mut DeviceBus) -> Step {
        if self.halted {
            return Step::Idle;
        }
        if let Some(irq) = self.csrs.pending_interrupt() {
            return self.take_trap(irq);
        }
        let word = match bus.fetch(self.pc) {
            Ok(w) => w,
            Err(t) => return self.take_trap(t),
        };
        let decoded = match decode(word) {
            Ok(d) => d,
            Err(t) => return self.take_trap(t),
        };
        match self.execute(decoded, word, bus) {
            Ok((next_pc, lowered, mmio)) => {
                self.pc = next_pc;
                self.csrs.instret += 1;
                Step::Retired { lowered, mmio }
            }
            Err(t) => self.take_trap(t),
        }
    }

    #[allow(clippy::type_complexity)]
    fn execute(
        &mut self,
        d: Decoded,
        word: u32,
        bus: &mut DeviceBus,
    ) -> Result<(u64, Instruction, Option<MmioAccess>), Trap> {
        let pc = self.pc;
        let mut next = pc.wrapping_add(4);
        let mut mmio = None;
        let other = Instruction::other_with_latency(ALU_LATENCY);
        let lowered = match d {
            Decoded::Lui { rd, imm } => {
                self.set_x(rd, imm as u64);
                other
            }
            Decoded::Auipc { rd, imm } => {
                self.set_x(rd, pc.wrapping_add(imm as u64));
                other
            }
            Decoded::Jal { rd, offset } => {
                self.set_x(rd, pc.wrapping_add(4));
                next = pc.wrapping_add(offset as u64);
                other
            }
            Decoded::Jalr { rd, rs1, offset } => {
                let target = self.x(rs1).wrapping_add(offset as u64) & !1;
                self.set_x(rd, pc.wrapping_add(4));
                next = target;
                other
            }
            Decoded::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.x(rs1), self.x(rs2));
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i64) < (b as i64),
                    BranchOp::Bge => (a as i64) >= (b as i64),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    next = pc.wrapping_add(offset as u64);
                }
                other
            }
            Decoded::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = Addr::new(self.x(rs1).wrapping_add(offset as u64));
                let size = match op {
                    LoadOp::Lb | LoadOp::Lbu => AccessSize::Byte,
                    LoadOp::Lh | LoadOp::Lhu => AccessSize::Half,
                    LoadOp::Lw | LoadOp::Lwu => AccessSize::Word,
                    LoadOp::Ld => AccessSize::Double,
                };
                let (raw, target) = bus.load(addr, size)?;
                let value = match op {
                    LoadOp::Lb => raw as u8 as i8 as i64 as u64,
                    LoadOp::Lh => raw as u16 as i16 as i64 as u64,
                    LoadOp::Lw => raw as u32 as i32 as i64 as u64,
                    LoadOp::Ld | LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu => raw,
                };
                self.set_x(rd, value);
                match target {
                    BusTarget::Ram => Instruction::load(word_of(addr), Reg(rd)),
                    _ => {
                        mmio = Some(MmioAccess {
                            write: false,
                            addr,
                            value: raw,
                        });
                        Instruction::other_with_latency(MMIO_LATENCY)
                    }
                }
            }
            Decoded::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = Addr::new(self.x(rs1).wrapping_add(offset as u64));
                let size = match op {
                    StoreOp::Sb => AccessSize::Byte,
                    StoreOp::Sh => AccessSize::Half,
                    StoreOp::Sw => AccessSize::Word,
                    StoreOp::Sd => AccessSize::Double,
                };
                let value = self.x(rs2);
                let target = bus.store(addr, size, value)?;
                match target {
                    BusTarget::Ram => {
                        // Value-resolved lowering: the merged word, so
                        // the timing model's word-granular replay lands
                        // on exactly the frontend's memory bytes.
                        let merged = bus.ram.read(word_of(addr));
                        Instruction::store(word_of(addr), merged)
                    }
                    _ => {
                        mmio = Some(MmioAccess {
                            write: true,
                            addr,
                            value,
                        });
                        Instruction::other_with_latency(MMIO_LATENCY)
                    }
                }
            }
            Decoded::Amo {
                op, rd, rs1, rs2, ..
            } => {
                let addr = Addr::new(self.x(rs1));
                let size = match op {
                    AmoOp::AddW => AccessSize::Word,
                    AmoOp::AddD => AccessSize::Double,
                };
                let wa = word_of(addr);
                let before = bus.ram.read(wa);
                let old = bus.amo_add(addr, size, self.x(rs2))?;
                let after = bus.ram.read(wa);
                let value = match op {
                    AmoOp::AddW => old as u32 as i32 as i64 as u64,
                    AmoOp::AddD => old,
                };
                self.set_x(rd, value);
                Instruction::atomic(wa, after.wrapping_sub(before), Reg(rd))
            }
            Decoded::AluImm { op, rd, rs1, imm } => {
                let a = self.x(rs1);
                let i = imm as u64;
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(i),
                    AluImmOp::Slti => ((a as i64) < imm) as u64,
                    AluImmOp::Sltiu => (a < i) as u64,
                    AluImmOp::Xori => a ^ i,
                    AluImmOp::Ori => a | i,
                    AluImmOp::Andi => a & i,
                };
                self.set_x(rd, v);
                other
            }
            Decoded::ShiftImm {
                op,
                word: w32,
                rd,
                rs1,
                shamt,
            } => {
                let a = self.x(rs1);
                let v = if w32 {
                    let a32 = a as u32;
                    let sh = shamt & 31;
                    let r = match op {
                        ShiftOp::Sll => a32 << sh,
                        ShiftOp::Srl => a32 >> sh,
                        ShiftOp::Sra => ((a32 as i32) >> sh) as u32,
                    };
                    r as i32 as i64 as u64
                } else {
                    let sh = shamt & 63;
                    match op {
                        ShiftOp::Sll => a << sh,
                        ShiftOp::Srl => a >> sh,
                        ShiftOp::Sra => ((a as i64) >> sh) as u64,
                    }
                };
                self.set_x(rd, v);
                other
            }
            Decoded::Alu { op, rd, rs1, rs2 } => {
                let (a, b) = (self.x(rs1), self.x(rs2));
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 63),
                    AluOp::Slt => ((a as i64) < (b as i64)) as u64,
                    AluOp::Sltu => (a < b) as u64,
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 63),
                    AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.set_x(rd, v);
                other
            }
            Decoded::Addiw { rd, rs1, imm } => {
                let v = (self.x(rs1).wrapping_add(imm as u64)) as i32 as i64 as u64;
                self.set_x(rd, v);
                other
            }
            Decoded::Alu32 { op, rd, rs1, rs2 } => {
                let (a, b) = (self.x(rs1) as u32, self.x(rs2) as u32);
                let r = match op {
                    Alu32Op::Addw => a.wrapping_add(b),
                    Alu32Op::Subw => a.wrapping_sub(b),
                    Alu32Op::Sllw => a << (b & 31),
                    Alu32Op::Srlw => a >> (b & 31),
                    Alu32Op::Sraw => ((a as i32) >> (b & 31)) as u32,
                };
                self.set_x(rd, r as i32 as i64 as u64);
                other
            }
            Decoded::Fence { pred, succ, .. } => {
                // The low two bits of each set are R (bit 1) and W
                // (bit 0); I/O ordering collapses onto the full fence.
                let kind = match (pred & 0b11, succ & 0b11) {
                    (0b01, 0b01) => FenceKind::StoreStore,
                    (0b10, 0b10) => FenceKind::LoadLoad,
                    _ => FenceKind::Full,
                };
                Instruction::fence(kind)
            }
            Decoded::FenceI { .. } => Instruction::fence(FenceKind::Full),
            Decoded::Ecall => return Err(Trap::EnvironmentCallFromMMode(Addr::new(pc))),
            Decoded::Ebreak => return Err(Trap::Breakpoint(Addr::new(pc))),
            Decoded::Mret => {
                next = self.csrs.trap_return();
                Instruction::other_with_latency(CSR_LATENCY)
            }
            Decoded::Wfi => other,
            Decoded::Csr { op, rd, csr, rs1 } => {
                let operand = if op.is_immediate() {
                    rs1 as u64
                } else {
                    self.x(rs1)
                };
                let old = self.csrs.execute(op, csr, operand, word)?;
                self.set_x(rd, old);
                Instruction::other_with_latency(CSR_LATENCY)
            }
        };
        Ok((next, lowered, mmio))
    }
}

/// The 8-byte-aligned word address containing `addr` (the granularity
/// the timing model's functional memory and FSB entries use).
fn word_of(addr: Addr) -> Addr {
    Addr::new(addr.raw() & !7)
}

impl Persist for Hart {
    fn save(&self, w: &mut Writer) {
        for r in self.regs {
            w.u64(r);
        }
        w.u64(self.pc);
        self.csrs.save(w);
        w.bool(self.halted);
    }
    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        let mut regs = [0u64; 32];
        for slot in regs.iter_mut() {
            *slot = r.u64()?;
        }
        Ok(Hart {
            regs,
            pc: r.u64()?,
            csrs: Persist::restore(r)?,
            halted: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn boot(asm: &Asm) -> (Hart, DeviceBus) {
        let mut bus = DeviceBus::new(1);
        bus.load_image(0x1_0000, &asm.assemble());
        (Hart::new(0, 0x1_0000), bus)
    }

    fn run(hart: &mut Hart, bus: &mut DeviceBus, budget: u64) {
        for _ in 0..budget {
            if hart.halted {
                return;
            }
            hart.step(bus);
        }
        panic!("program did not halt in {budget} steps");
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut a = Asm::new(0x1_0000);
        a.li(10, 40);
        a.addi(11, 10, 2);
        a.ecall();
        let (mut hart, mut bus) = boot(&a);
        run(&mut hart, &mut bus, 100);
        assert_eq!(hart.x(11), 42);
        assert!(hart.halted);
    }

    #[test]
    fn x0_stays_zero() {
        let mut a = Asm::new(0x1_0000);
        a.addi(0, 0, 123);
        a.ecall();
        let (mut hart, mut bus) = boot(&a);
        run(&mut hart, &mut bus, 100);
        assert_eq!(hart.x(0), 0);
    }

    #[test]
    fn store_lowers_to_merged_word() {
        let mut a = Asm::new(0x1_0000);
        a.li(5, 0x2000);
        a.li(6, 0xaa);
        a.sd(6, 5, 0);
        a.li(6, 0xbb);
        a.sb(6, 5, 1); // second byte of the word
        a.ecall();
        let (mut hart, mut bus) = boot(&a);
        let mut stores = Vec::new();
        while !hart.halted {
            if let Step::Retired { lowered, .. } = hart.step(&mut bus) {
                if let ise_types::instr::InstrKind::Store { addr, value } = lowered.kind {
                    stores.push((addr, value));
                }
            }
        }
        assert_eq!(stores.len(), 2);
        assert_eq!(stores[1].0, Addr::new(0x2000));
        // sb wrote 0xbb over byte 1 of 0x00000000000000aa.
        assert_eq!(stores[1].1, 0xbbaa);
        assert_eq!(
            bus.ram
                .load_sized(Addr::new(0x2000), AccessSize::Double)
                .unwrap(),
            0xbbaa
        );
    }

    #[test]
    fn amo_lowers_to_word_delta_and_returns_old() {
        let mut a = Asm::new(0x1_0000);
        a.li(5, 0x2000);
        a.li(6, 7);
        a.sd(6, 5, 0);
        a.li(7, 5);
        a.amoadd_d(8, 7, 5); // x8 = old, [x5] += 5
        a.ecall();
        let (mut hart, mut bus) = boot(&a);
        let mut atomics = Vec::new();
        while !hart.halted {
            if let Step::Retired { lowered, .. } = hart.step(&mut bus) {
                if let ise_types::instr::InstrKind::Atomic { addr, add, dst } = lowered.kind {
                    atomics.push((addr, add, dst));
                }
            }
        }
        assert_eq!(hart.x(8), 7);
        assert_eq!(
            bus.ram
                .load_sized(Addr::new(0x2000), AccessSize::Double)
                .unwrap(),
            12
        );
        assert_eq!(atomics, vec![(Addr::new(0x2000), 5, Reg(8))]);
    }

    #[test]
    fn misaligned_store_halts_without_handler() {
        let mut a = Asm::new(0x1_0000);
        a.li(5, 0x2001);
        a.li(6, 1);
        a.sw(6, 5, 0);
        let (mut hart, mut bus) = boot(&a);
        let mut last = Step::Idle;
        while !hart.halted {
            last = hart.step(&mut bus);
        }
        assert_eq!(
            last,
            Step::Halted(Trap::StoreAMOAddrMisaligned(Addr::new(0x2001)))
        );
    }

    #[test]
    fn trap_vectors_through_mtvec_and_mret_resumes() {
        let mut a = Asm::new(0x1_0000);
        // Install handler, then execute an illegal word; the handler
        // bumps mepc past it and returns.
        let handler = a.reserve_label();
        let after = a.reserve_label();
        a.la(5, handler);
        a.csrrw(0, ise_types::trap::csr::MTVEC, 5);
        a.word(0xffff_ffff); // illegal
        a.bind(after);
        a.li(10, 99);
        a.csrrw(0, ise_types::trap::csr::MTVEC, 0); // clean exit below
        a.ecall();
        a.bind(handler);
        a.csrrs(6, ise_types::trap::csr::MEPC, 0);
        a.addi(6, 6, 4);
        a.csrrw(0, ise_types::trap::csr::MEPC, 6);
        a.mret();
        let (mut hart, mut bus) = boot(&a);
        run(&mut hart, &mut bus, 100);
        assert_eq!(hart.x(10), 99);
        assert_eq!(hart.csrs.mcause, 2);
        assert_eq!(hart.csrs.mtval, 0xffff_ffff);
    }

    #[test]
    fn uart_write_is_mmio_not_memory() {
        let mut a = Asm::new(0x1_0000);
        a.li(5, crate::bus::UART_BASE as i64);
        a.li(6, b'A' as i64);
        a.sb(6, 5, 0);
        a.ecall();
        let (mut hart, mut bus) = boot(&a);
        let mut saw_mmio = false;
        while !hart.halted {
            if let Step::Retired {
                lowered,
                mmio: Some(m),
            } = hart.step(&mut bus)
            {
                saw_mmio = true;
                assert!(m.write);
                assert_eq!(m.value, b'A' as u64);
                assert!(matches!(
                    lowered.kind,
                    ise_types::instr::InstrKind::Other {
                        latency: MMIO_LATENCY
                    }
                ));
            }
        }
        assert!(saw_mmio);
        assert_eq!(bus.uart.output, b"A");
    }

    #[test]
    fn timer_interrupt_vectors_when_enabled() {
        use ise_types::trap::{csr, mip, mstatus};
        let mut a = Asm::new(0x1_0000);
        let handler = a.reserve_label();
        let spin = a.reserve_label();
        a.la(5, handler);
        a.csrrw(0, csr::MTVEC, 5);
        // mtimecmp[0] = 5, then enable MTIE + global MIE and spin.
        a.li(5, (crate::bus::CLINT_BASE + 0x4000) as i64);
        a.li(6, 5);
        a.sd(6, 5, 0);
        a.li(5, mip::MTIP as i64);
        a.csrrw(0, csr::MIE, 5);
        a.li(5, mstatus::MIE as i64);
        a.csrrs(0, csr::MSTATUS, 5);
        a.bind(spin);
        a.jal(0, spin);
        a.bind(handler);
        a.li(10, 7);
        a.csrrw(0, csr::MTVEC, 0); // uninstall so the ecall is a clean exit
        a.ecall();
        let mut bus = DeviceBus::new(1);
        bus.load_image(0x1_0000, &a.assemble());
        let mut hart = Hart::new(0, 0x1_0000);
        for _ in 0..200 {
            if hart.halted {
                break;
            }
            hart.csrs.mip = bus.clint.mip_bits(0);
            hart.step(&mut bus);
            bus.clint.tick();
        }
        assert!(hart.halted);
        assert_eq!(hart.x(10), 7);
        assert_eq!(hart.csrs.mcause, (1 << 63) | 7);
    }

    #[test]
    fn hart_persists_round_trip() {
        use ise_types::persist::{restore_container, save_container};
        let mut h = Hart::new(3, 0x1_0040);
        h.regs[5] = 0xdead;
        h.csrs.mtvec = 0x2000;
        h.halted = true;
        let bytes = save_container(&h);
        let back: Hart = restore_container(&bytes).unwrap();
        assert_eq!(back, h);
    }
}
