//! RV64I (+ Zifencei, + the `amoadd` A-subset ops the trace ISA models)
//! instruction decoder and exact re-encoder.
//!
//! The decoder is *canonical*: for every 32-bit word, either
//! [`decode`] returns a [`Decoded`] instruction whose [`encode`] is
//! bit-identical to the original word, or it returns
//! [`Trap::IllegalInstruction`]. There is no silent aliasing — reserved
//! fields (e.g. the upper bits of a shift amount, the funct12 of a
//! `SYSTEM` instruction) are checked, not ignored. The decoder fuzz leg
//! in this crate's tests holds that contract over random words.

use ise_types::trap::Trap;
use std::fmt;

/// Conditional-branch comparison (the `funct3` of a `BRANCH` opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// `beq` — branch if equal.
    Beq,
    /// `bne` — branch if not equal.
    Bne,
    /// `blt` — branch if less than (signed).
    Blt,
    /// `bge` — branch if greater or equal (signed).
    Bge,
    /// `bltu` — branch if less than (unsigned).
    Bltu,
    /// `bgeu` — branch if greater or equal (unsigned).
    Bgeu,
}

impl BranchOp {
    fn funct3(self) -> u32 {
        match self {
            BranchOp::Beq => 0b000,
            BranchOp::Bne => 0b001,
            BranchOp::Blt => 0b100,
            BranchOp::Bge => 0b101,
            BranchOp::Bltu => 0b110,
            BranchOp::Bgeu => 0b111,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }
}

/// Load width/signedness (the `funct3` of a `LOAD` opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// `lb` — load byte, sign-extend.
    Lb,
    /// `lh` — load half, sign-extend.
    Lh,
    /// `lw` — load word, sign-extend.
    Lw,
    /// `ld` — load double.
    Ld,
    /// `lbu` — load byte, zero-extend.
    Lbu,
    /// `lhu` — load half, zero-extend.
    Lhu,
    /// `lwu` — load word, zero-extend.
    Lwu,
}

impl LoadOp {
    fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Ld => 0b011,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
            LoadOp::Lwu => 0b110,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Ld => "ld",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
            LoadOp::Lwu => "lwu",
        }
    }
}

/// Store width (the `funct3` of a `STORE` opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// `sb` — store byte.
    Sb,
    /// `sh` — store half.
    Sh,
    /// `sw` — store word.
    Sw,
    /// `sd` — store double.
    Sd,
}

impl StoreOp {
    fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
            StoreOp::Sd => 0b011,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
            StoreOp::Sd => "sd",
        }
    }
}

/// Register-immediate ALU operation (`OP-IMM`, excluding shifts which
/// carry a constrained shamt field and live in [`Decoded::ShiftImm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluImmOp {
    /// `addi`.
    Addi,
    /// `slti` — set if less than, signed.
    Slti,
    /// `sltiu` — set if less than, unsigned.
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
}

impl AluImmOp {
    fn funct3(self) -> u32 {
        match self {
            AluImmOp::Addi => 0b000,
            AluImmOp::Slti => 0b010,
            AluImmOp::Sltiu => 0b011,
            AluImmOp::Xori => 0b100,
            AluImmOp::Ori => 0b110,
            AluImmOp::Andi => 0b111,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
        }
    }
}

/// Immediate shift flavour, shared by the 64-bit (`OP-IMM`) and 32-bit
/// (`OP-IMM-32`) encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftOp {
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl ShiftOp {
    fn funct3(self) -> u32 {
        match self {
            ShiftOp::Sll => 0b001,
            ShiftOp::Srl | ShiftOp::Sra => 0b101,
        }
    }

    fn hi_bit(self) -> u32 {
        // Bit 30 distinguishes SRA from SRL (and is reserved-zero for SLL).
        match self {
            ShiftOp::Sll | ShiftOp::Srl => 0,
            ShiftOp::Sra => 1,
        }
    }
}

/// Register-register ALU operation (`OP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`.
    Sll,
    /// `slt`.
    Slt,
    /// `sltu`.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl`.
    Srl,
    /// `sra`.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
}

impl AluOp {
    fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0b000,
            AluOp::Sll => 0b001,
            AluOp::Slt => 0b010,
            AluOp::Sltu => 0b011,
            AluOp::Xor => 0b100,
            AluOp::Srl | AluOp::Sra => 0b101,
            AluOp::Or => 0b110,
            AluOp::And => 0b111,
        }
    }

    fn funct7(self) -> u32 {
        match self {
            AluOp::Sub | AluOp::Sra => 0b0100000,
            _ => 0,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// Register-register 32-bit ALU operation (`OP-32`: the `*w` forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu32Op {
    /// `addw`.
    Addw,
    /// `subw`.
    Subw,
    /// `sllw`.
    Sllw,
    /// `srlw`.
    Srlw,
    /// `sraw`.
    Sraw,
}

impl Alu32Op {
    fn funct3(self) -> u32 {
        match self {
            Alu32Op::Addw | Alu32Op::Subw => 0b000,
            Alu32Op::Sllw => 0b001,
            Alu32Op::Srlw | Alu32Op::Sraw => 0b101,
        }
    }

    fn funct7(self) -> u32 {
        match self {
            Alu32Op::Subw | Alu32Op::Sraw => 0b0100000,
            _ => 0,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            Alu32Op::Addw => "addw",
            Alu32Op::Subw => "subw",
            Alu32Op::Sllw => "sllw",
            Alu32Op::Srlw => "srlw",
            Alu32Op::Sraw => "sraw",
        }
    }
}

/// CSR access operation (`SYSTEM` with `funct3 != 0`). The `I` forms
/// take a 5-bit zero-extended immediate in the `rs1` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrOp {
    /// `csrrw` — atomic read/write.
    Rw,
    /// `csrrs` — atomic read and set bits.
    Rs,
    /// `csrrc` — atomic read and clear bits.
    Rc,
    /// `csrrwi`.
    Rwi,
    /// `csrrsi`.
    Rsi,
    /// `csrrci`.
    Rci,
}

impl CsrOp {
    fn funct3(self) -> u32 {
        match self {
            CsrOp::Rw => 0b001,
            CsrOp::Rs => 0b010,
            CsrOp::Rc => 0b011,
            CsrOp::Rwi => 0b101,
            CsrOp::Rsi => 0b110,
            CsrOp::Rci => 0b111,
        }
    }

    /// Whether the `rs1` slot holds a zero-extended immediate rather
    /// than a register number.
    pub fn is_immediate(self) -> bool {
        matches!(self, CsrOp::Rwi | CsrOp::Rsi | CsrOp::Rci)
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            CsrOp::Rw => "csrrw",
            CsrOp::Rs => "csrrs",
            CsrOp::Rc => "csrrc",
            CsrOp::Rwi => "csrrwi",
            CsrOp::Rsi => "csrrsi",
            CsrOp::Rci => "csrrci",
        }
    }
}

/// The AMO subset the trace ISA's [`ise_types::instr::InstrKind::Atomic`]
/// models: fetch-and-add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoOp {
    /// `amoadd.w` — 32-bit fetch-and-add.
    AddW,
    /// `amoadd.d` — 64-bit fetch-and-add.
    AddD,
}

impl AmoOp {
    fn funct3(self) -> u32 {
        match self {
            AmoOp::AddW => 0b010,
            AmoOp::AddD => 0b011,
        }
    }

    /// Mnemonic without operands.
    pub fn name(self) -> &'static str {
        match self {
            AmoOp::AddW => "amoadd.w",
            AmoOp::AddD => "amoadd.d",
        }
    }
}

/// One decoded RV64 instruction.
///
/// Every variant captures *all* non-fixed bits of its encoding, so
/// [`encode`] ∘ [`decode`] is the identity on legal words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// `lui rd, imm` — `imm` is the sign-extended, pre-shifted value
    /// (`imm[31:12] << 12`), i.e. what lands in `rd`.
    Lui {
        /// Destination register.
        rd: u8,
        /// Sign-extended upper immediate (multiple of 4096).
        imm: i64,
    },
    /// `auipc rd, imm` — same immediate convention as `lui`.
    Auipc {
        /// Destination register.
        rd: u8,
        /// Sign-extended upper immediate (multiple of 4096).
        imm: i64,
    },
    /// `jal rd, offset` — `offset` is the byte displacement (even,
    /// ±1 MiB).
    Jal {
        /// Link register.
        rd: u8,
        /// Signed byte offset from this instruction.
        offset: i64,
    },
    /// `jalr rd, rs1, offset`.
    Jalr {
        /// Link register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Left operand register.
        rs1: u8,
        /// Right operand register.
        rs2: u8,
        /// Signed byte offset from this instruction (even, ±4 KiB).
        offset: i64,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Base register.
        rs1: u8,
        /// Source register.
        rs2: u8,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Register-immediate ALU op (non-shift).
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended 12-bit immediate.
        imm: i64,
    },
    /// Immediate shift: `slli`/`srli`/`srai` (64-bit, 6-bit shamt) or
    /// the `*w` forms (32-bit, 5-bit shamt).
    ShiftImm {
        /// Shift flavour.
        op: ShiftOp,
        /// `true` for the `OP-IMM-32` (`slliw`/`srliw`/`sraiw`) forms.
        word: bool,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Shift amount (0..64, or 0..32 when `word`).
        shamt: u8,
    },
    /// Register-register ALU op.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Left source register.
        rs1: u8,
        /// Right source register.
        rs2: u8,
    },
    /// `addiw rd, rs1, imm` (the only non-shift `OP-IMM-32` op).
    Addiw {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended 12-bit immediate.
        imm: i64,
    },
    /// Register-register 32-bit ALU op.
    Alu32 {
        /// Operation.
        op: Alu32Op,
        /// Destination register.
        rd: u8,
        /// Left source register.
        rs1: u8,
        /// Right source register.
        rs2: u8,
    },
    /// `fence` — all hint fields preserved for exact re-encoding.
    Fence {
        /// `fm` field (bits 31:28); `0b1000` is `fence.tso`.
        fm: u8,
        /// Predecessor set (PI/PO/PR/PW).
        pred: u8,
        /// Successor set (SI/SO/SR/SW).
        succ: u8,
        /// `rd` hint slot (reserved, but architecturally legal nonzero).
        rd: u8,
        /// `rs1` hint slot.
        rs1: u8,
    },
    /// `fence.i` (Zifencei) — hint slots preserved.
    FenceI {
        /// `rd` hint slot.
        rd: u8,
        /// `rs1` hint slot.
        rs1: u8,
        /// Immediate hint slot (bits 31:20, sign-extended).
        imm: i64,
    },
    /// `ecall`.
    Ecall,
    /// `ebreak`.
    Ebreak,
    /// `mret`.
    Mret,
    /// `wfi`.
    Wfi,
    /// CSR access.
    Csr {
        /// Operation.
        op: CsrOp,
        /// Destination register.
        rd: u8,
        /// CSR number (12 bits).
        csr: u16,
        /// Source register, or the 5-bit zero-extended immediate for
        /// the `*i` forms.
        rs1: u8,
    },
    /// AMO fetch-and-add.
    Amo {
        /// Width.
        op: AmoOp,
        /// Destination register (receives the old value).
        rd: u8,
        /// Address register.
        rs1: u8,
        /// Addend register.
        rs2: u8,
        /// Acquire ordering bit.
        aq: bool,
        /// Release ordering bit.
        rl: bool,
    },
}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP_IMM_32: u32 = 0b0011011;
const OPC_OP_32: u32 = 0b0111011;
const OPC_MISC_MEM: u32 = 0b0001111;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_AMO: u32 = 0b0101111;

fn rd(word: u32) -> u8 {
    ((word >> 7) & 0x1f) as u8
}
fn rs1(word: u32) -> u8 {
    ((word >> 15) & 0x1f) as u8
}
fn rs2(word: u32) -> u8 {
    ((word >> 20) & 0x1f) as u8
}
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}
fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i64 {
    ((word as i32) >> 20) as i64
}

fn imm_s(word: u32) -> i64 {
    let hi = ((word as i32) >> 25) as i64; // sign-extended imm[11:5]
    let lo = ((word >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}

fn imm_b(word: u32) -> i64 {
    let sign = ((word as i32) >> 31) as i64; // imm[12]
    let b11 = ((word >> 7) & 1) as i64;
    let b10_5 = ((word >> 25) & 0x3f) as i64;
    let b4_1 = ((word >> 8) & 0xf) as i64;
    (sign << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

fn imm_j(word: u32) -> i64 {
    let sign = ((word as i32) >> 31) as i64; // imm[20]
    let b19_12 = ((word >> 12) & 0xff) as i64;
    let b11 = ((word >> 20) & 1) as i64;
    let b10_1 = ((word >> 21) & 0x3ff) as i64;
    (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes one 32-bit instruction word, or reports it illegal.
///
/// The returned trap is always [`Trap::IllegalInstruction`] carrying
/// the offending word.
pub fn decode(word: u32) -> Result<Decoded, Trap> {
    let illegal = || Trap::IllegalInstruction(word as u64);
    match word & 0x7f {
        OPC_LUI => Ok(Decoded::Lui {
            rd: rd(word),
            imm: ((word & 0xffff_f000) as i32) as i64,
        }),
        OPC_AUIPC => Ok(Decoded::Auipc {
            rd: rd(word),
            imm: ((word & 0xffff_f000) as i32) as i64,
        }),
        OPC_JAL => Ok(Decoded::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        OPC_JALR => {
            if funct3(word) != 0 {
                return Err(illegal());
            }
            Ok(Decoded::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        OPC_BRANCH => {
            let op = match funct3(word) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return Err(illegal()),
            };
            Ok(Decoded::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            })
        }
        OPC_LOAD => {
            let op = match funct3(word) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                _ => return Err(illegal()),
            };
            Ok(Decoded::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        OPC_STORE => {
            let op = match funct3(word) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                _ => return Err(illegal()),
            };
            Ok(Decoded::Store {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_s(word),
            })
        }
        OPC_OP_IMM => match funct3(word) {
            0b001 => {
                // RV64 slli: shamt is 6 bits, imm[11:6] must be zero.
                if word >> 26 != 0 {
                    return Err(illegal());
                }
                Ok(Decoded::ShiftImm {
                    op: ShiftOp::Sll,
                    word: false,
                    rd: rd(word),
                    rs1: rs1(word),
                    shamt: ((word >> 20) & 0x3f) as u8,
                })
            }
            0b101 => {
                let op = match word >> 26 {
                    0b000000 => ShiftOp::Srl,
                    0b010000 => ShiftOp::Sra,
                    _ => return Err(illegal()),
                };
                Ok(Decoded::ShiftImm {
                    op,
                    word: false,
                    rd: rd(word),
                    rs1: rs1(word),
                    shamt: ((word >> 20) & 0x3f) as u8,
                })
            }
            f3 => {
                let op = match f3 {
                    0b000 => AluImmOp::Addi,
                    0b010 => AluImmOp::Slti,
                    0b011 => AluImmOp::Sltiu,
                    0b100 => AluImmOp::Xori,
                    0b110 => AluImmOp::Ori,
                    0b111 => AluImmOp::Andi,
                    _ => unreachable!(),
                };
                Ok(Decoded::AluImm {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    imm: imm_i(word),
                })
            }
        },
        OPC_OP => {
            let op = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                _ => return Err(illegal()),
            };
            Ok(Decoded::Alu {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        OPC_OP_IMM_32 => match funct3(word) {
            0b000 => Ok(Decoded::Addiw {
                rd: rd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            }),
            0b001 => {
                if funct7(word) != 0 {
                    return Err(illegal());
                }
                Ok(Decoded::ShiftImm {
                    op: ShiftOp::Sll,
                    word: true,
                    rd: rd(word),
                    rs1: rs1(word),
                    shamt: rs2(word),
                })
            }
            0b101 => {
                let op = match funct7(word) {
                    0b0000000 => ShiftOp::Srl,
                    0b0100000 => ShiftOp::Sra,
                    _ => return Err(illegal()),
                };
                Ok(Decoded::ShiftImm {
                    op,
                    word: true,
                    rd: rd(word),
                    rs1: rs1(word),
                    shamt: rs2(word),
                })
            }
            _ => Err(illegal()),
        },
        OPC_OP_32 => {
            let op = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => Alu32Op::Addw,
                (0b0100000, 0b000) => Alu32Op::Subw,
                (0b0000000, 0b001) => Alu32Op::Sllw,
                (0b0000000, 0b101) => Alu32Op::Srlw,
                (0b0100000, 0b101) => Alu32Op::Sraw,
                _ => return Err(illegal()),
            };
            Ok(Decoded::Alu32 {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        OPC_MISC_MEM => match funct3(word) {
            0b000 => Ok(Decoded::Fence {
                fm: ((word >> 28) & 0xf) as u8,
                pred: ((word >> 24) & 0xf) as u8,
                succ: ((word >> 20) & 0xf) as u8,
                rd: rd(word),
                rs1: rs1(word),
            }),
            0b001 => Ok(Decoded::FenceI {
                rd: rd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            }),
            _ => Err(illegal()),
        },
        OPC_SYSTEM => match funct3(word) {
            0b000 => {
                // PRIV: rd and rs1 must be zero; funct12 selects.
                if rd(word) != 0 || rs1(word) != 0 {
                    return Err(illegal());
                }
                match word >> 20 {
                    0x000 => Ok(Decoded::Ecall),
                    0x001 => Ok(Decoded::Ebreak),
                    0x302 => Ok(Decoded::Mret),
                    0x105 => Ok(Decoded::Wfi),
                    _ => Err(illegal()),
                }
            }
            f3 => {
                let op = match f3 {
                    0b001 => CsrOp::Rw,
                    0b010 => CsrOp::Rs,
                    0b011 => CsrOp::Rc,
                    0b101 => CsrOp::Rwi,
                    0b110 => CsrOp::Rsi,
                    0b111 => CsrOp::Rci,
                    _ => return Err(illegal()),
                };
                Ok(Decoded::Csr {
                    op,
                    rd: rd(word),
                    csr: (word >> 20) as u16,
                    rs1: rs1(word),
                })
            }
        },
        OPC_AMO => {
            // funct5 (bits 31:27) selects the AMO; only amoadd (00000)
            // is modeled, in word and double widths.
            if word >> 27 != 0b00000 {
                return Err(illegal());
            }
            let op = match funct3(word) {
                0b010 => AmoOp::AddW,
                0b011 => AmoOp::AddD,
                _ => return Err(illegal()),
            };
            Ok(Decoded::Amo {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
                aq: (word >> 26) & 1 != 0,
                rl: (word >> 25) & 1 != 0,
            })
        }
        _ => Err(illegal()),
    }
}

fn enc_r(opcode: u32, f3: u32, f7: u32, rd: u8, rs1: u8, rs2: u8) -> u32 {
    opcode
        | ((rd as u32 & 0x1f) << 7)
        | (f3 << 12)
        | ((rs1 as u32 & 0x1f) << 15)
        | ((rs2 as u32 & 0x1f) << 20)
        | (f7 << 25)
}

fn enc_i(opcode: u32, f3: u32, rd: u8, rs1: u8, imm: i64) -> u32 {
    opcode
        | ((rd as u32 & 0x1f) << 7)
        | (f3 << 12)
        | ((rs1 as u32 & 0x1f) << 15)
        | (((imm as u32) & 0xfff) << 20)
}

fn enc_s(opcode: u32, f3: u32, rs1: u8, rs2: u8, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (f3 << 12)
        | ((rs1 as u32 & 0x1f) << 15)
        | ((rs2 as u32 & 0x1f) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn enc_b(opcode: u32, f3: u32, rs1: u8, rs2: u8, offset: i64) -> u32 {
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (f3 << 12)
        | ((rs1 as u32 & 0x1f) << 15)
        | ((rs2 as u32 & 0x1f) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn enc_j(opcode: u32, rd: u8, offset: i64) -> u32 {
    let imm = offset as u32;
    opcode
        | ((rd as u32 & 0x1f) << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Re-encodes a decoded instruction to its 32-bit word.
///
/// For any `d` obtained from [`decode`], `encode(&d)` reproduces the
/// original word exactly; the fuzz leg enforces this.
pub fn encode(d: &Decoded) -> u32 {
    match *d {
        Decoded::Lui { rd: r, imm } => {
            OPC_LUI | ((r as u32 & 0x1f) << 7) | (imm as u32 & 0xffff_f000)
        }
        Decoded::Auipc { rd: r, imm } => {
            OPC_AUIPC | ((r as u32 & 0x1f) << 7) | (imm as u32 & 0xffff_f000)
        }
        Decoded::Jal { rd: r, offset } => enc_j(OPC_JAL, r, offset),
        Decoded::Jalr {
            rd: r,
            rs1: a,
            offset,
        } => enc_i(OPC_JALR, 0, r, a, offset),
        Decoded::Branch {
            op,
            rs1: a,
            rs2: b,
            offset,
        } => enc_b(OPC_BRANCH, op.funct3(), a, b, offset),
        Decoded::Load {
            op,
            rd: r,
            rs1: a,
            offset,
        } => enc_i(OPC_LOAD, op.funct3(), r, a, offset),
        Decoded::Store {
            op,
            rs1: a,
            rs2: b,
            offset,
        } => enc_s(OPC_STORE, op.funct3(), a, b, offset),
        Decoded::AluImm {
            op,
            rd: r,
            rs1: a,
            imm,
        } => enc_i(OPC_OP_IMM, op.funct3(), r, a, imm),
        Decoded::ShiftImm {
            op,
            word,
            rd: r,
            rs1: a,
            shamt,
        } => {
            if word {
                enc_r(
                    OPC_OP_IMM_32,
                    op.funct3(),
                    op.hi_bit() << 5,
                    r,
                    a,
                    shamt & 0x1f,
                )
            } else {
                let imm = ((op.hi_bit() as i64) << 10) | (shamt & 0x3f) as i64;
                enc_i(OPC_OP_IMM, op.funct3(), r, a, imm)
            }
        }
        Decoded::Alu {
            op,
            rd: r,
            rs1: a,
            rs2: b,
        } => enc_r(OPC_OP, op.funct3(), op.funct7(), r, a, b),
        Decoded::Addiw { rd: r, rs1: a, imm } => enc_i(OPC_OP_IMM_32, 0, r, a, imm),
        Decoded::Alu32 {
            op,
            rd: r,
            rs1: a,
            rs2: b,
        } => enc_r(OPC_OP_32, op.funct3(), op.funct7(), r, a, b),
        Decoded::Fence {
            fm,
            pred,
            succ,
            rd: r,
            rs1: a,
        } => {
            let imm =
                (((fm as i64) & 0xf) << 8) | (((pred as i64) & 0xf) << 4) | ((succ as i64) & 0xf);
            enc_i(OPC_MISC_MEM, 0, r, a, imm)
        }
        Decoded::FenceI { rd: r, rs1: a, imm } => enc_i(OPC_MISC_MEM, 0b001, r, a, imm),
        Decoded::Ecall => enc_i(OPC_SYSTEM, 0, 0, 0, 0x000),
        Decoded::Ebreak => enc_i(OPC_SYSTEM, 0, 0, 0, 0x001),
        Decoded::Mret => enc_i(OPC_SYSTEM, 0, 0, 0, 0x302),
        Decoded::Wfi => enc_i(OPC_SYSTEM, 0, 0, 0, 0x105),
        Decoded::Csr {
            op,
            rd: r,
            csr,
            rs1: a,
        } => enc_i(OPC_SYSTEM, op.funct3(), r, a, (csr & 0xfff) as i64),
        Decoded::Amo {
            op,
            rd: r,
            rs1: a,
            rs2: b,
            aq,
            rl,
        } => {
            let f7 = ((aq as u32) << 1) | (rl as u32);
            enc_r(OPC_AMO, op.funct3(), f7, r, a, b)
        }
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = |r: u8| format!("x{r}");
        match *self {
            Decoded::Lui { rd, imm } => write!(f, "lui {}, {:#x}", x(rd), (imm as u64) >> 12),
            Decoded::Auipc { rd, imm } => write!(f, "auipc {}, {:#x}", x(rd), (imm as u64) >> 12),
            Decoded::Jal { rd, offset } => write!(f, "jal {}, {offset}", x(rd)),
            Decoded::Jalr { rd, rs1, offset } => {
                write!(f, "jalr {}, {offset}({})", x(rd), x(rs1))
            }
            Decoded::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {}, {}, {offset}", op.name(), x(rs1), x(rs2))
            }
            Decoded::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                write!(f, "{} {}, {offset}({})", op.name(), x(rd), x(rs1))
            }
            Decoded::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {}, {offset}({})", op.name(), x(rs2), x(rs1))
            }
            Decoded::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {}, {}, {imm}", op.name(), x(rd), x(rs1))
            }
            Decoded::ShiftImm {
                op,
                word,
                rd,
                rs1,
                shamt,
            } => {
                let base = match op {
                    ShiftOp::Sll => "slli",
                    ShiftOp::Srl => "srli",
                    ShiftOp::Sra => "srai",
                };
                let suffix = if word { "w" } else { "" };
                write!(f, "{base}{suffix} {}, {}, {shamt}", x(rd), x(rs1))
            }
            Decoded::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {}, {}, {}", op.name(), x(rd), x(rs1), x(rs2))
            }
            Decoded::Addiw { rd, rs1, imm } => write!(f, "addiw {}, {}, {imm}", x(rd), x(rs1)),
            Decoded::Alu32 { op, rd, rs1, rs2 } => {
                write!(f, "{} {}, {}, {}", op.name(), x(rd), x(rs1), x(rs2))
            }
            Decoded::Fence { pred, succ, .. } => write!(f, "fence {pred:#x},{succ:#x}"),
            Decoded::FenceI { .. } => write!(f, "fence.i"),
            Decoded::Ecall => write!(f, "ecall"),
            Decoded::Ebreak => write!(f, "ebreak"),
            Decoded::Mret => write!(f, "mret"),
            Decoded::Wfi => write!(f, "wfi"),
            Decoded::Csr { op, rd, csr, rs1 } => {
                if op.is_immediate() {
                    write!(f, "{} {}, {csr:#x}, {rs1}", op.name(), x(rd))
                } else {
                    write!(f, "{} {}, {csr:#x}, {}", op.name(), x(rd), x(rs1))
                }
            }
            Decoded::Amo {
                op, rd, rs1, rs2, ..
            } => {
                write!(f, "{} {}, {}, ({})", op.name(), x(rd), x(rs2), x(rs1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(word: u32) -> Decoded {
        let d = decode(word).unwrap_or_else(|t| panic!("{word:#010x} illegal: {t}"));
        assert_eq!(encode(&d), word, "re-encode mismatch for {d}");
        d
    }

    #[test]
    fn canonical_instructions_roundtrip() {
        // Hand-assembled words cross-checked against the RISC-V spec.
        let words = [
            0x0000_0513, // addi a0, x0, 0
            0x7ff0_0593, // addi a1, x0, 2047
            0x8000_0613, // addi a2, x0, -2048
            0x0000_10b7, // lui ra, 0x1
            0xfffff0b7,  // lui ra, 0xfffff
            0x0000_0097, // auipc ra, 0x0
            0x008000ef,  // jal ra, 8
            0xff9ff06f,  // jal x0, -8
            0x0000_8067, // jalr x0, 0(ra)
            0x0020_8463, // beq ra, sp, 8
            0xfe209ee3,  // bne ra, sp, -4
            0x0000_b283, // ld t0, 0(ra)
            0x0050_b423, // sd t0, 8(ra)
            0x0000_8283, // lb t0, 0(ra)
            0x0000_c283, // lbu t0, 0(ra)
            0x0000_9283, // lh t0, 0(ra)
            0x0000_a283, // lw t0, 0(ra)
            0x0000_e283, // lwu t0, 0(ra)
            0x0050_8423, // sb t0, 8(ra)
            0x0050_9423, // sh t0, 8(ra)
            0x0050_a423, // sw t0, 8(ra)
            0x0020_82b3, // add t0, ra, sp
            0x4020_82b3, // sub t0, ra, sp
            0x0020_92b3, // sll t0, ra, sp
            0x4020_d2b3, // sra t0, ra, sp
            0x03f0_9093, // slli ra, ra, 63
            0x43f0_d093, // srai ra, ra, 63
            0x0010_809b, // addiw ra, ra, 1
            0x0020_80bb, // addw ra, ra, sp
            0x4020_80bb, // subw ra, ra, sp
            0x01f0_909b, // slliw ra, ra, 31
            0x41f0_d09b, // sraiw ra, ra, 31
            0x0ff0_000f, // fence iorw, iorw
            0x0330_000f, // fence rw, rw
            0x0000_100f, // fence.i
            0x0000_0073, // ecall
            0x0010_0073, // ebreak
            0x3020_0073, // mret
            0x1050_0073, // wfi
            0x3002_9073, // csrrw x0, mstatus, t0
            0x3420_2573, // csrrs a0, mcause, x0
            0x3044_5073, // csrrwi x0, mie, 8
            0x0062_a32f, // amoadd.w t1, t1, (t0)
            0x0062_b32f, // amoadd.d t1, t1, (t0)
            0x0462_b32f, // amoadd.d.aq t1, t1, (t0)
            0x0262_b32f, // amoadd.d.rl t1, t1, (t0)
        ];
        for w in words {
            roundtrip(w);
        }
    }

    #[test]
    fn immediates_sign_extend() {
        match roundtrip(0x8000_0613) {
            Decoded::AluImm {
                op: AluImmOp::Addi,
                imm,
                ..
            } => assert_eq!(imm, -2048),
            d => panic!("wrong decode: {d}"),
        }
        match roundtrip(0xfffff0b7) {
            Decoded::Lui { imm, .. } => assert_eq!(imm, -4096),
            d => panic!("wrong decode: {d}"),
        }
        match roundtrip(0xff9ff06f) {
            Decoded::Jal { offset, .. } => assert_eq!(offset, -8),
            d => panic!("wrong decode: {d}"),
        }
        match roundtrip(0xfe209ee3) {
            Decoded::Branch {
                op: BranchOp::Bne,
                offset,
                ..
            } => assert_eq!(offset, -4),
            d => panic!("wrong decode: {d}"),
        }
    }

    #[test]
    fn reserved_fields_are_illegal_not_aliased() {
        // slli with imm[10] set (would be srai's distinguishing bit
        // pattern under a sloppier decoder).
        assert!(decode(0x4010_9093).is_err());
        // srli with a stray funct7 bit.
        assert!(decode(0x2010_d093).is_err());
        // slliw with shamt bit 5 (funct7 LSB) set — reserved in RV64.
        assert!(decode(0x0210_909b).is_err());
        // jalr with funct3 != 0.
        assert!(decode(0x0000_9067).is_err());
        // PRIV with nonzero rd.
        assert!(decode(0x0000_00f3).is_err());
        // AMO other than amoadd (this is amoswap.w).
        assert!(decode(0x0862_a32f).is_err());
        // Branch funct3 = 010 (reserved).
        assert!(decode(0x0020_a463).is_err());
        // All-zero and all-one words.
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
    }

    #[test]
    fn illegal_trap_carries_the_word() {
        match decode(0xdead_beff) {
            Err(Trap::IllegalInstruction(w)) => assert_eq!(w, 0xdead_beff),
            other => panic!("expected illegal-instruction trap, got {other:?}"),
        }
    }
}
