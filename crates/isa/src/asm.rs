//! A small label-resolving RV64 assembler.
//!
//! Guest programs are checked into the repo as raw `.bin` images; this
//! builder is how they are produced (and how the check-in test verifies
//! the images match their source). Every emitted word goes through
//! [`crate::decode::encode`], so the assembler can only produce
//! encodings the decoder round-trips.

use crate::decode::{
    encode, AluImmOp, AluOp, AmoOp, BranchOp, CsrOp, Decoded, LoadOp, ShiftOp, StoreOp,
};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// One assembly slot: either a finished word or a label-relative
/// instruction resolved at [`Asm::assemble`] time.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Word(u32),
    Jal {
        rd: u8,
        label: Label,
    },
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        label: Label,
    },
    /// `auipc` + `addi` pair materializing a label's absolute address.
    La {
        rd: u8,
        label: Label,
    },
}

impl Slot {
    fn width(&self) -> u64 {
        match self {
            Slot::La { .. } => 8,
            _ => 4,
        }
    }
}

/// The assembler: accumulates instructions, resolves labels, and
/// produces a flat little-endian image based at a fixed address.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u64,
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>,
}

fn sign_extend_12(v: i64) -> i64 {
    (v << 52) >> 52
}

impl Asm {
    /// A new program image based at `base` (must be 4-aligned RAM).
    pub fn new(base: u64) -> Self {
        assert!(base.is_multiple_of(4), "code base must be 4-aligned");
        Asm {
            base,
            slots: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// The base address the image is linked at.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Creates an unbound label for forward references.
    pub fn reserve_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.slots.len());
    }

    /// A label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.reserve_label();
        self.bind(l);
        l
    }

    fn push(&mut self, d: Decoded) {
        self.slots.push(Slot::Word(encode(&d)));
    }

    /// Emits a raw 32-bit word (e.g. a deliberately illegal encoding).
    pub fn word(&mut self, w: u32) {
        self.slots.push(Slot::Word(w));
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.push(Decoded::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        });
    }

    /// `addiw rd, rs1, imm`.
    pub fn addiw(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.push(Decoded::Addiw { rd, rs1, imm });
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.push(Decoded::AluImm {
            op: AluImmOp::Andi,
            rd,
            rs1,
            imm,
        });
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Decoded::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Decoded::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.push(Decoded::ShiftImm {
            op: ShiftOp::Sll,
            word: false,
            rd,
            rs1,
            shamt,
        });
    }

    /// `lui rd, imm` (`imm` is the final sign-extended value, low 12
    /// bits zero).
    pub fn lui(&mut self, rd: u8, imm: i64) {
        assert_eq!(imm & 0xfff, 0, "lui immediate has low bits");
        self.push(Decoded::Lui { rd, imm });
    }

    /// Materializes an arbitrary 64-bit constant into `rd` (the
    /// standard `li` expansion: `addi`, `lui[+addiw]`, or a recursive
    /// shift-and-add chain).
    pub fn li(&mut self, rd: u8, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, 0, value);
        } else if value >= i32::MIN as i64 && value <= i32::MAX as i64 {
            let lo = sign_extend_12(value);
            let hi = ((value.wrapping_sub(lo) as i32) as i64) & !0xfff;
            self.lui(rd, hi);
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
        } else {
            let lo = sign_extend_12(value);
            self.li(rd, (value.wrapping_sub(lo)) >> 12);
            self.slli(rd, rd, 12);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }

    fn load(&mut self, op: LoadOp, rd: u8, base: u8, offset: i64) {
        self.push(Decoded::Load {
            op,
            rd,
            rs1: base,
            offset,
        });
    }

    fn store(&mut self, op: StoreOp, src: u8, base: u8, offset: i64) {
        self.push(Decoded::Store {
            op,
            rs1: base,
            rs2: src,
            offset,
        });
    }

    /// `ld rd, offset(base)`.
    pub fn ld(&mut self, rd: u8, base: u8, offset: i64) {
        self.load(LoadOp::Ld, rd, base, offset);
    }

    /// `lw rd, offset(base)`.
    pub fn lw(&mut self, rd: u8, base: u8, offset: i64) {
        self.load(LoadOp::Lw, rd, base, offset);
    }

    /// `lbu rd, offset(base)`.
    pub fn lbu(&mut self, rd: u8, base: u8, offset: i64) {
        self.load(LoadOp::Lbu, rd, base, offset);
    }

    /// `sd src, offset(base)`.
    pub fn sd(&mut self, src: u8, base: u8, offset: i64) {
        self.store(StoreOp::Sd, src, base, offset);
    }

    /// `sw src, offset(base)`.
    pub fn sw(&mut self, src: u8, base: u8, offset: i64) {
        self.store(StoreOp::Sw, src, base, offset);
    }

    /// `sh src, offset(base)`.
    pub fn sh(&mut self, src: u8, base: u8, offset: i64) {
        self.store(StoreOp::Sh, src, base, offset);
    }

    /// `sb src, offset(base)`.
    pub fn sb(&mut self, src: u8, base: u8, offset: i64) {
        self.store(StoreOp::Sb, src, base, offset);
    }

    /// `amoadd.w rd, src, (addr)`.
    pub fn amoadd_w(&mut self, rd: u8, src: u8, addr: u8) {
        self.push(Decoded::Amo {
            op: AmoOp::AddW,
            rd,
            rs1: addr,
            rs2: src,
            aq: false,
            rl: false,
        });
    }

    /// `amoadd.d rd, src, (addr)`.
    pub fn amoadd_d(&mut self, rd: u8, src: u8, addr: u8) {
        self.push(Decoded::Amo {
            op: AmoOp::AddD,
            rd,
            rs1: addr,
            rs2: src,
            aq: false,
            rl: false,
        });
    }

    /// `fence pred, succ` with R=2/W=1 nibbles (`fence rw, rw` = 3,3).
    pub fn fence(&mut self, pred: u8, succ: u8) {
        self.push(Decoded::Fence {
            fm: 0,
            pred,
            succ,
            rd: 0,
            rs1: 0,
        });
    }

    /// `fence.i`.
    pub fn fence_i(&mut self) {
        self.push(Decoded::FenceI {
            rd: 0,
            rs1: 0,
            imm: 0,
        });
    }

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.push(Decoded::Ecall);
    }

    /// `ebreak`.
    pub fn ebreak(&mut self) {
        self.push(Decoded::Ebreak);
    }

    /// `mret`.
    pub fn mret(&mut self) {
        self.push(Decoded::Mret);
    }

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.push(Decoded::Csr {
            op: CsrOp::Rw,
            rd,
            csr,
            rs1,
        });
    }

    /// `csrrs rd, csr, rs1`.
    pub fn csrrs(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.push(Decoded::Csr {
            op: CsrOp::Rs,
            rd,
            csr,
            rs1,
        });
    }

    /// `csrrwi rd, csr, uimm`.
    pub fn csrrwi(&mut self, rd: u8, csr: u16, uimm: u8) {
        self.push(Decoded::Csr {
            op: CsrOp::Rwi,
            rd,
            csr,
            rs1: uimm,
        });
    }

    /// `jalr rd, offset(base)`.
    pub fn jalr(&mut self, rd: u8, base: u8, offset: i64) {
        self.push(Decoded::Jalr {
            rd,
            rs1: base,
            offset,
        });
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: u8, label: Label) {
        self.slots.push(Slot::Jal { rd, label });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: Label) {
        self.slots.push(Slot::Branch {
            op: BranchOp::Beq,
            rs1,
            rs2,
            label,
        });
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: Label) {
        self.slots.push(Slot::Branch {
            op: BranchOp::Bne,
            rs1,
            rs2,
            label,
        });
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: u8, rs2: u8, label: Label) {
        self.slots.push(Slot::Branch {
            op: BranchOp::Bge,
            rs1,
            rs2,
            label,
        });
    }

    /// Loads `label`'s absolute address into `rd` (pc-relative
    /// `auipc` + `addi` pair).
    pub fn la(&mut self, rd: u8, label: Label) {
        self.slots.push(Slot::La { rd, label });
    }

    /// Resolves labels and produces the little-endian image.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels or out-of-range displacements.
    pub fn assemble(&self) -> Vec<u8> {
        // First pass: byte offset of every slot (plus the end, so a
        // label bound after the last instruction still resolves).
        let mut offsets = Vec::with_capacity(self.slots.len() + 1);
        let mut at = 0u64;
        for s in &self.slots {
            offsets.push(at);
            at += s.width();
        }
        offsets.push(at);
        let resolve = |label: Label| -> u64 {
            self.base + offsets[self.labels[label.0].expect("unbound label")]
        };
        let mut out = Vec::with_capacity((at as usize).max(4));
        for (i, s) in self.slots.iter().enumerate() {
            let pc = self.base + offsets[i];
            match *s {
                Slot::Word(w) => out.extend_from_slice(&w.to_le_bytes()),
                Slot::Jal { rd, label } => {
                    let offset = resolve(label) as i64 - pc as i64;
                    assert!(offset % 2 == 0 && (-(1 << 20)..1 << 20).contains(&offset));
                    out.extend_from_slice(&encode(&Decoded::Jal { rd, offset }).to_le_bytes());
                }
                Slot::Branch {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let offset = resolve(label) as i64 - pc as i64;
                    assert!(offset % 2 == 0 && (-(1 << 12)..1 << 12).contains(&offset));
                    out.extend_from_slice(
                        &encode(&Decoded::Branch {
                            op,
                            rs1,
                            rs2,
                            offset,
                        })
                        .to_le_bytes(),
                    );
                }
                Slot::La { rd, label } => {
                    let delta = resolve(label) as i64 - pc as i64;
                    let lo = sign_extend_12(delta);
                    let hi = delta - lo;
                    assert!(hi >= i32::MIN as i64 && hi <= i32::MAX as i64);
                    out.extend_from_slice(&encode(&Decoded::Auipc { rd, imm: hi }).to_le_bytes());
                    out.extend_from_slice(
                        &encode(&Decoded::AluImm {
                            op: AluImmOp::Addi,
                            rd,
                            rs1: rd,
                            imm: lo,
                        })
                        .to_le_bytes(),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn every_emitted_word_decodes() {
        let mut a = Asm::new(0x1_0000);
        let l = a.reserve_label();
        a.li(5, 0x4000_0000);
        a.li(6, -1);
        a.li(7, 0x1234_5678_9abc_def0);
        a.la(8, l);
        a.beq(5, 6, l);
        a.jal(1, l);
        a.bind(l);
        a.fence(3, 3);
        a.ecall();
        let img = a.assemble();
        assert_eq!(img.len() % 4, 0);
        for chunk in img.chunks(4) {
            let w = u32::from_le_bytes(chunk.try_into().unwrap());
            decode(w).unwrap();
        }
    }

    #[test]
    fn li_materializes_wide_constants() {
        // Execute the li sequences on a bare hart to check the values.
        use crate::bus::DeviceBus;
        use crate::hart::Hart;
        for value in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            0x7fff_ffff,
            -0x8000_0000,
            0x4000_0000,
            0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
        ] {
            let mut a = Asm::new(0x1_0000);
            a.li(10, value);
            a.ecall();
            let mut bus = DeviceBus::new(1);
            bus.load_image(0x1_0000, &a.assemble());
            let mut hart = Hart::new(0, 0x1_0000);
            for _ in 0..64 {
                if hart.halted {
                    break;
                }
                hart.step(&mut bus);
            }
            assert!(hart.halted);
            assert_eq!(hart.x(10) as i64, value, "li {value:#x}");
        }
    }

    #[test]
    fn la_resolves_forward_and_backward() {
        use crate::bus::DeviceBus;
        use crate::hart::Hart;
        let mut a = Asm::new(0x1_0000);
        let back = a.here();
        let fwd = a.reserve_label();
        a.la(10, fwd);
        a.la(11, back);
        a.ecall();
        a.bind(fwd);
        a.ecall();
        let mut bus = DeviceBus::new(1);
        bus.load_image(0x1_0000, &a.assemble());
        let mut hart = Hart::new(0, 0x1_0000);
        for _ in 0..16 {
            if hart.halted {
                break;
            }
            hart.step(&mut bus);
        }
        assert_eq!(hart.x(11), 0x1_0000);
        assert_eq!(hart.x(10), 0x1_0000 + 2 * 8 + 4);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_labels_panic() {
        let mut a = Asm::new(0x1_0000);
        let l = a.reserve_label();
        a.jal(0, l);
        let _ = a.assemble();
    }
}
