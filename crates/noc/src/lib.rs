//! 2D-mesh network-on-chip model (Table 2: 4×4 mesh, 16 B links,
//! 3 cycles/hop).
//!
//! The model is analytic: a message from tile *s* to tile *d* takes the XY
//! route, paying the per-hop router latency plus link serialization for its
//! payload, with an optional congestion surcharge tracked per link. This is
//! the level of fidelity the paper's Table 3 study needs — coherence and
//! memory round trips whose cost grows with mesh distance — without
//! simulating flits.
//!
//! # Example
//!
//! ```
//! use ise_noc::{Mesh, NodeId};
//! use ise_types::config::NocConfig;
//!
//! let mesh = Mesh::new(NocConfig::isca23());
//! // Corner to corner on a 4x4 mesh: 6 hops.
//! assert_eq!(mesh.hops(NodeId(0), NodeId(15)), 6);
//! // A 64-byte data message serializes over 16-byte links.
//! assert_eq!(mesh.latency(NodeId(0), NodeId(15), 64), 6 * 3 + 4);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod mesh;
pub mod traffic;

pub use mesh::{Mesh, NodeId};
pub use traffic::TrafficMeter;
