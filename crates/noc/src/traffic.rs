//! Link-level traffic accounting and congestion surcharge.
//!
//! The paper's Table 3 study runs server workloads whose coherence traffic
//! loads the mesh unevenly. [`TrafficMeter`] tracks bytes crossing each
//! directed link and converts recent utilization into a queuing surcharge,
//! so heavily shared home tiles cost more to reach — the effect that makes
//! stores slower than loads under invalidation-heavy sharing.

use crate::mesh::{Mesh, NodeId};
use std::collections::HashMap;

/// A directed link between adjacent tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Upstream tile.
    pub from: NodeId,
    /// Downstream tile.
    pub to: NodeId,
}

/// Tracks per-link utilization over a sliding window and derives a
/// congestion surcharge.
///
/// The model is a coarse M/D/1 approximation: if a link carried `u`
/// byte-cycles of traffic during the last window of `w` cycles at link
/// width `b`, its utilization is `ρ = u / (w·b)` and each message crossing
/// it pays an extra `ρ/(1-ρ)` serialization quanta, capped.
#[derive(Debug, Clone)]
pub struct TrafficMeter {
    window: u64,
    link_bytes: u64,
    epoch_start: u64,
    current: HashMap<Link, u64>,
    previous: HashMap<Link, u64>,
    total_bytes: u64,
    total_messages: u64,
}

/// Cap on the congestion surcharge per link, in cycles, to keep the
/// approximation stable near saturation.
const MAX_SURCHARGE: u64 = 16;

impl TrafficMeter {
    /// Creates a meter with the given accounting window (cycles) and link
    /// width (bytes/cycle).
    ///
    /// # Panics
    ///
    /// Panics if `window` or `link_bytes` is zero.
    pub fn new(window: u64, link_bytes: u64) -> Self {
        assert!(
            window > 0 && link_bytes > 0,
            "window and link width must be positive"
        );
        TrafficMeter {
            window,
            link_bytes,
            epoch_start: 0,
            current: HashMap::new(),
            previous: HashMap::new(),
            total_bytes: 0,
            total_messages: 0,
        }
    }

    /// Rolls the accounting epoch forward if `now` has left the current
    /// window.
    fn roll(&mut self, now: u64) {
        if now >= self.epoch_start + self.window {
            self.previous = std::mem::take(&mut self.current);
            // Skip any number of fully idle windows.
            let elapsed = now - self.epoch_start;
            self.epoch_start += (elapsed / self.window) * self.window;
            if elapsed >= 2 * self.window {
                self.previous.clear();
            }
        }
    }

    /// Records a `bytes`-sized message traversing `route` at time `now`
    /// and returns the congestion surcharge it experiences (cycles).
    pub fn record(&mut self, mesh: &Mesh, route: &[NodeId], bytes: u64, now: u64) -> u64 {
        self.roll(now);
        self.total_bytes += bytes;
        self.total_messages += 1;
        let mut surcharge = 0u64;
        for w in route.windows(2) {
            let link = Link {
                from: w[0],
                to: w[1],
            };
            let prev = self.previous.get(&link).copied().unwrap_or(0);
            let rho = (prev as f64 / (self.window * self.link_bytes) as f64).min(0.95);
            let extra = (rho / (1.0 - rho) * mesh.serialization(bytes as usize) as f64) as u64;
            surcharge += extra.min(MAX_SURCHARGE);
            *self.current.entry(link).or_insert(0) += bytes;
        }
        surcharge
    }

    /// Total bytes recorded over the meter's lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages recorded over the meter's lifetime.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::config::NocConfig;

    fn mesh() -> Mesh {
        Mesh::new(NocConfig::isca23())
    }

    #[test]
    fn idle_network_has_no_surcharge() {
        let m = mesh();
        let mut t = TrafficMeter::new(1000, 16);
        let route = m.route(NodeId(0), NodeId(15));
        assert_eq!(t.record(&m, &route, 64, 0), 0);
    }

    #[test]
    fn saturated_link_accrues_surcharge() {
        let m = mesh();
        let mut t = TrafficMeter::new(100, 16);
        let route = m.route(NodeId(0), NodeId(1));
        // Saturate window 0 beyond capacity (100 cycles * 16 B = 1600 B).
        for _ in 0..100 {
            t.record(&m, &route, 64, 10);
        }
        // Next window sees high prior utilization.
        let s = t.record(&m, &route, 64, 150);
        assert!(s > 0, "expected congestion surcharge, got {s}");
        assert!(s <= MAX_SURCHARGE * (route.len() as u64 - 1));
    }

    #[test]
    fn long_idle_gap_clears_history() {
        let m = mesh();
        let mut t = TrafficMeter::new(100, 16);
        let route = m.route(NodeId(0), NodeId(1));
        for _ in 0..100 {
            t.record(&m, &route, 64, 10);
        }
        // Two+ windows later, history is gone.
        let s = t.record(&m, &route, 64, 500);
        assert_eq!(s, 0);
    }

    #[test]
    fn totals_accumulate() {
        let m = mesh();
        let mut t = TrafficMeter::new(100, 16);
        let route = m.route(NodeId(0), NodeId(5));
        t.record(&m, &route, 64, 0);
        t.record(&m, &route, 8, 1);
        assert_eq!(t.total_bytes(), 72);
        assert_eq!(t.total_messages(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_rejected() {
        let _ = TrafficMeter::new(0, 16);
    }
}
