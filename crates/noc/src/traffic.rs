//! Link-level traffic accounting and congestion surcharge.
//!
//! The paper's Table 3 study runs server workloads whose coherence traffic
//! loads the mesh unevenly. [`TrafficMeter`] tracks bytes crossing each
//! directed link and converts recent utilization into a queuing surcharge,
//! so heavily shared home tiles cost more to reach — the effect that makes
//! stores slower than loads under invalidation-heavy sharing.
//!
//! Counters live in two fixed dense arrays indexed by [`Mesh::link_index`]
//! (current window / previous window), so the hot path is an array walk
//! along the route with no hashing and no allocation; a whole message is
//! priced and recorded in one pass.

use crate::mesh::{Mesh, NodeId};

/// Tracks per-link utilization over a sliding window and derives a
/// congestion surcharge.
///
/// The model is a coarse M/D/1 approximation: if a link carried `u`
/// byte-cycles of traffic during the last window of `w` cycles at link
/// width `b`, its utilization is `ρ = u / (w·b)` and each message crossing
/// it pays an extra `ρ/(1-ρ)` serialization quanta, capped.
#[derive(Debug, Clone)]
pub struct TrafficMeter {
    window: u64,
    link_bytes: u64,
    epoch_start: u64,
    current: Box<[u64]>,
    previous: Box<[u64]>,
    /// Per-link `ρ/(1-ρ)` derived from `previous`, refreshed once per
    /// window roll: the surcharge factor is constant within a window, so
    /// the per-message path multiplies by it instead of re-deriving the
    /// utilization quotient per hop (bit-identical — the same division
    /// happens once at the roll instead of per message).
    factor: Box<[f64]>,
    total_bytes: u64,
    total_messages: u64,
}

/// Cap on the congestion surcharge per link, in cycles, to keep the
/// approximation stable near saturation.
const MAX_SURCHARGE: u64 = 16;

impl TrafficMeter {
    /// Creates a meter for `mesh` with the given accounting window
    /// (cycles) and link width (bytes/cycle). Both counter arrays are
    /// sized to the mesh's dense link-slot space up front, so recording
    /// never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `link_bytes` is zero.
    pub fn new(mesh: &Mesh, window: u64, link_bytes: u64) -> Self {
        assert!(
            window > 0 && link_bytes > 0,
            "window and link width must be positive"
        );
        TrafficMeter {
            window,
            link_bytes,
            epoch_start: 0,
            current: vec![0; mesh.link_slots()].into_boxed_slice(),
            previous: vec![0; mesh.link_slots()].into_boxed_slice(),
            factor: vec![0.0; mesh.link_slots()].into_boxed_slice(),
            total_bytes: 0,
            total_messages: 0,
        }
    }

    /// Rolls the accounting epoch forward if `now` has left the current
    /// window.
    fn roll(&mut self, now: u64) {
        if now >= self.epoch_start + self.window {
            std::mem::swap(&mut self.previous, &mut self.current);
            self.current.fill(0);
            // Skip any number of fully idle windows.
            let elapsed = now - self.epoch_start;
            self.epoch_start += (elapsed / self.window) * self.window;
            if elapsed >= 2 * self.window {
                self.previous.fill(0);
            }
            let denom = (self.window * self.link_bytes) as f64;
            for (f, &prev) in self.factor.iter_mut().zip(self.previous.iter()) {
                *f = if prev > 0 {
                    let rho = (prev as f64 / denom).min(0.95);
                    rho / (1.0 - rho)
                } else {
                    0.0
                };
            }
        }
    }

    /// Records a `bytes`-sized message traversing the XY route from `src`
    /// to `dst` at time `now` and returns the congestion surcharge it
    /// experiences (cycles). Routing, pricing, and accounting happen in
    /// one allocation-free pass over the links.
    pub fn record(&mut self, mesh: &Mesh, src: NodeId, dst: NodeId, bytes: u64, now: u64) -> u64 {
        self.roll(now);
        self.total_bytes += bytes;
        self.total_messages += 1;
        let ser = mesh.serialization(bytes as usize) as f64;
        let mut surcharge = 0u64;
        let mut prev_node: Option<NodeId> = None;
        for node in mesh.route_iter(src, dst) {
            if let Some(from) = prev_node {
                let li = mesh.link_index(from, node);
                let f = self.factor[li];
                if f > 0.0 {
                    surcharge += ((f * ser) as u64).min(MAX_SURCHARGE);
                }
                self.current[li] += bytes;
            }
            prev_node = Some(node);
        }
        surcharge
    }

    /// Total bytes recorded over the meter's lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages recorded over the meter's lifetime.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }
}

impl ise_types::persist::Persist for TrafficMeter {
    /// Mid-window state is part of the contract: the partially filled
    /// `current` array, the `previous` window that prices the running
    /// epoch, and the derived `factor` table (saved as raw f64 bits so
    /// the restored meter prices messages bit-identically without
    /// re-deriving the quotients).
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"TRAF", |w| {
            w.u64(self.window);
            w.u64(self.link_bytes);
            w.u64(self.epoch_start);
            self.current.save(w);
            self.previous.save(w);
            self.factor.save(w);
            w.u64(self.total_bytes);
            w.u64(self.total_messages);
        });
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"TRAF", |r| {
            let window = r.u64()?;
            let link_bytes = r.u64()?;
            if window == 0 || link_bytes == 0 {
                return Err(PersistError::Corrupt("traffic meter geometry"));
            }
            let epoch_start = r.u64()?;
            let current: Box<[u64]> = Persist::restore(r)?;
            let previous: Box<[u64]> = Persist::restore(r)?;
            let factor: Box<[f64]> = Persist::restore(r)?;
            if previous.len() != current.len() || factor.len() != current.len() {
                return Err(PersistError::Corrupt("traffic meter array lengths"));
            }
            Ok(TrafficMeter {
                window,
                link_bytes,
                epoch_start,
                current,
                previous,
                factor,
                total_bytes: r.u64()?,
                total_messages: r.u64()?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::config::NocConfig;

    fn mesh() -> Mesh {
        Mesh::new(NocConfig::isca23())
    }

    #[test]
    fn idle_network_has_no_surcharge() {
        let m = mesh();
        let mut t = TrafficMeter::new(&m, 1000, 16);
        assert_eq!(t.record(&m, NodeId(0), NodeId(15), 64, 0), 0);
    }

    #[test]
    fn saturated_link_accrues_surcharge() {
        let m = mesh();
        let mut t = TrafficMeter::new(&m, 100, 16);
        // Saturate window 0 beyond capacity (100 cycles * 16 B = 1600 B).
        for _ in 0..100 {
            t.record(&m, NodeId(0), NodeId(1), 64, 10);
        }
        // Next window sees high prior utilization.
        let s = t.record(&m, NodeId(0), NodeId(1), 64, 150);
        assert!(s > 0, "expected congestion surcharge, got {s}");
        assert!(s <= MAX_SURCHARGE * m.hops(NodeId(0), NodeId(1)));
    }

    #[test]
    fn long_idle_gap_clears_history() {
        let m = mesh();
        let mut t = TrafficMeter::new(&m, 100, 16);
        for _ in 0..100 {
            t.record(&m, NodeId(0), NodeId(1), 64, 10);
        }
        // Two+ windows later, history is gone.
        let s = t.record(&m, NodeId(0), NodeId(1), 64, 500);
        assert_eq!(s, 0);
    }

    #[test]
    fn totals_accumulate() {
        let m = mesh();
        let mut t = TrafficMeter::new(&m, 100, 16);
        t.record(&m, NodeId(0), NodeId(5), 64, 0);
        t.record(&m, NodeId(0), NodeId(5), 8, 1);
        assert_eq!(t.total_bytes(), 72);
        assert_eq!(t.total_messages(), 2);
    }

    #[test]
    fn dense_meter_matches_naive_hash_meter() {
        // Differential: the dense-array meter must price and account
        // byte-identically with a naive per-link hash-map mirror of the
        // pre-rework implementation.
        use std::collections::HashMap;
        struct Naive {
            window: u64,
            link_bytes: u64,
            epoch_start: u64,
            current: HashMap<(usize, usize), u64>,
            previous: HashMap<(usize, usize), u64>,
        }
        impl Naive {
            fn record(&mut self, mesh: &Mesh, route: &[NodeId], bytes: u64, now: u64) -> u64 {
                if now >= self.epoch_start + self.window {
                    self.previous = std::mem::take(&mut self.current);
                    let elapsed = now - self.epoch_start;
                    self.epoch_start += (elapsed / self.window) * self.window;
                    if elapsed >= 2 * self.window {
                        self.previous.clear();
                    }
                }
                let mut surcharge = 0u64;
                for w in route.windows(2) {
                    let link = (w[0].index(), w[1].index());
                    let prev = self.previous.get(&link).copied().unwrap_or(0);
                    let rho = (prev as f64 / (self.window * self.link_bytes) as f64).min(0.95);
                    let extra =
                        (rho / (1.0 - rho) * mesh.serialization(bytes as usize) as f64) as u64;
                    surcharge += extra.min(MAX_SURCHARGE);
                    *self.current.entry(link).or_insert(0) += bytes;
                }
                surcharge
            }
        }
        let m = mesh();
        let mut dense = TrafficMeter::new(&m, 100, 16);
        let mut naive = Naive {
            window: 100,
            link_bytes: 16,
            epoch_start: 0,
            current: HashMap::new(),
            previous: HashMap::new(),
        };
        // Deterministic pseudo-random message schedule with idle gaps.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut now = 0u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = NodeId((state >> 33) as usize % 16);
            let dst = NodeId((state >> 12) as usize % 16);
            let bytes = if state & 1 == 0 { 72 } else { 8 };
            now += state % 37;
            let route = m.route(src, dst);
            assert_eq!(
                dense.record(&m, src, dst, bytes, now),
                naive.record(&m, &route, bytes, now),
                "surcharge diverged at now={now} src={src} dst={dst}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_rejected() {
        let _ = TrafficMeter::new(&mesh(), 0, 16);
    }

    #[test]
    fn persist_round_trip_mid_window_prices_identically() {
        use ise_types::persist::{restore_container, save_container};
        let m = mesh();
        let mut t = TrafficMeter::new(&m, 100, 16);
        // Load a window, roll into the next one (live surcharge factors),
        // then snapshot mid-window with a partially filled `current`.
        for _ in 0..100 {
            t.record(&m, NodeId(0), NodeId(1), 64, 10);
        }
        t.record(&m, NodeId(0), NodeId(3), 72, 150);
        let bytes = save_container(&t);
        let mut back: TrafficMeter = restore_container(&bytes).unwrap();
        assert_eq!(save_container(&back), bytes);
        // Both meters must price the same schedule identically from here:
        // same surcharges inside the restored window and across the roll.
        for (now, dst) in [(160, 1), (170, 5), (260, 1), (400, 9)] {
            assert_eq!(
                back.record(&m, NodeId(0), NodeId(dst), 64, now),
                t.record(&m, NodeId(0), NodeId(dst), 64, now),
                "diverged at now={now}"
            );
        }
        assert_eq!(back.total_bytes(), t.total_bytes());
        assert_eq!(back.total_messages(), t.total_messages());
    }

    #[test]
    fn persist_rejects_corrupt_geometry() {
        use ise_types::persist::{restore_container, save_container, PersistError};
        let m = mesh();
        let t = TrafficMeter::new(&m, 100, 16);
        let bytes = save_container(&t);
        // Zero the window field (first u64 after the section header:
        // 4-byte magic + 4-byte version + 4-byte tag + 8-byte length).
        let mut bad = bytes.clone();
        bad[20..28].fill(0);
        // Re-stamp the trailing content hash so corruption reaches the
        // field validator rather than the hash check.
        let off = bad.len() - 8;
        let h = ise_types::persist::fnv1a(&bad[..off]);
        bad[off..].copy_from_slice(&h.to_le_bytes());
        match restore_container::<TrafficMeter>(&bad) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("geometry")),
            other => panic!("expected corrupt geometry, got {other:?}"),
        }
    }
}
