//! Mesh topology, XY routing, and message latency.

use ise_types::config::NocConfig;
use std::fmt;

/// Identifier of a mesh node (tile). Tiles are numbered row-major:
/// node `y * mesh_x + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

/// A 2D mesh with XY (dimension-ordered) routing.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    cfg: NocConfig,
}

impl Mesh {
    /// Builds a mesh from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if either mesh dimension or the link width is zero.
    pub fn new(cfg: NocConfig) -> Self {
        assert!(
            cfg.mesh_x > 0 && cfg.mesh_y > 0,
            "mesh dimensions must be positive"
        );
        assert!(cfg.link_bytes > 0, "link width must be positive");
        Mesh { cfg }
    }

    /// The configuration this mesh was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of tiles.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes()
    }

    /// (x, y) coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        assert!(n.0 < self.nodes(), "node {} out of range", n.0);
        (n.0 % self.cfg.mesh_x, n.0 / self.cfg.mesh_x)
    }

    /// Node at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(
            x < self.cfg.mesh_x && y < self.cfg.mesh_y,
            "coords out of range"
        );
        NodeId(y * self.cfg.mesh_x + x)
    }

    /// Manhattan hop count between two nodes (XY routing is minimal).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// The XY route from `src` to `dst`, inclusive of both endpoints.
    /// X is routed first, then Y — the deadlock-free dimension order.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![self.node_at(x, y)];
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(self.node_at(x, y));
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(self.node_at(x, y));
        }
        path
    }

    /// Serialization delay for a `bytes`-sized payload over the link width
    /// (header flit rides for free; zero-byte control messages take one
    /// flit).
    pub fn serialization(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.cfg.link_bytes as u64).max(1)
    }

    /// End-to-end uncontended latency of one message: per-hop router cost
    /// plus payload serialization. A self-message (src == dst) costs only
    /// serialization.
    pub fn latency(&self, src: NodeId, dst: NodeId, bytes: usize) -> u64 {
        self.hops(src, dst) * self.cfg.hop_latency + self.serialization(bytes)
    }

    /// Round-trip latency: a `req_bytes` request followed by a
    /// `resp_bytes` response over the reverse route.
    pub fn round_trip(&self, src: NodeId, dst: NodeId, req_bytes: usize, resp_bytes: usize) -> u64 {
        self.latency(src, dst, req_bytes) + self.latency(dst, src, resp_bytes)
    }

    /// Worst-case hop count in this mesh (corner to corner).
    pub fn diameter(&self) -> u64 {
        (self.cfg.mesh_x - 1 + self.cfg.mesh_y - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(NocConfig::isca23())
    }

    #[test]
    fn coords_roundtrip() {
        let m = mesh4();
        for n in 0..16 {
            let (x, y) = m.coords(NodeId(n));
            assert_eq!(m.node_at(x, y), NodeId(n));
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let m = mesh4();
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(12)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(5), NodeId(10)), 2);
    }

    #[test]
    fn hops_symmetric() {
        let m = mesh4();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(m.hops(NodeId(a), NodeId(b)), m.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn route_is_minimal_and_contiguous() {
        let m = mesh4();
        for a in 0..16 {
            for b in 0..16 {
                let r = m.route(NodeId(a), NodeId(b));
                assert_eq!(r.len() as u64, m.hops(NodeId(a), NodeId(b)) + 1);
                assert_eq!(*r.first().unwrap(), NodeId(a));
                assert_eq!(*r.last().unwrap(), NodeId(b));
                for w in r.windows(2) {
                    assert_eq!(m.hops(w[0], w[1]), 1, "route must step one hop at a time");
                }
            }
        }
    }

    #[test]
    fn route_is_xy_ordered() {
        let m = mesh4();
        // 0 -> 15 must go along row 0 first: 0,1,2,3 then down 7,11,15.
        let r = m.route(NodeId(0), NodeId(15));
        assert_eq!(
            r,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(7),
                NodeId(11),
                NodeId(15)
            ]
        );
    }

    #[test]
    fn serialization_rounds_up() {
        let m = mesh4();
        assert_eq!(m.serialization(0), 1);
        assert_eq!(m.serialization(1), 1);
        assert_eq!(m.serialization(16), 1);
        assert_eq!(m.serialization(17), 2);
        assert_eq!(m.serialization(64), 4);
    }

    #[test]
    fn table2_latency_example() {
        let m = mesh4();
        // Control message one hop: 3 + 1.
        assert_eq!(m.latency(NodeId(0), NodeId(1), 8), 4);
        // 64B data corner-to-corner: 6*3 + 4.
        assert_eq!(m.latency(NodeId(0), NodeId(15), 64), 22);
    }

    #[test]
    fn round_trip_adds_both_directions() {
        let m = mesh4();
        let rt = m.round_trip(NodeId(0), NodeId(15), 8, 64);
        assert_eq!(
            rt,
            m.latency(NodeId(0), NodeId(15), 8) + m.latency(NodeId(15), NodeId(0), 64)
        );
    }

    #[test]
    fn diameter_of_4x4_is_6() {
        assert_eq!(mesh4().diameter(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        mesh4().coords(NodeId(16));
    }
}
