//! Mesh topology, XY routing, and message latency.

use ise_types::config::NocConfig;
use std::fmt;

/// Identifier of a mesh node (tile). Tiles are numbered row-major:
/// node `y * mesh_x + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

/// A 2D mesh with XY (dimension-ordered) routing.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    cfg: NocConfig,
}

impl Mesh {
    /// Builds a mesh from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if either mesh dimension or the link width is zero.
    pub fn new(cfg: NocConfig) -> Self {
        assert!(
            cfg.mesh_x > 0 && cfg.mesh_y > 0,
            "mesh dimensions must be positive"
        );
        assert!(cfg.link_bytes > 0, "link width must be positive");
        Mesh { cfg }
    }

    /// The configuration this mesh was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of tiles.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes()
    }

    /// (x, y) coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        assert!(n.0 < self.nodes(), "node {} out of range", n.0);
        (n.0 % self.cfg.mesh_x, n.0 / self.cfg.mesh_x)
    }

    /// Node at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(
            x < self.cfg.mesh_x && y < self.cfg.mesh_y,
            "coords out of range"
        );
        NodeId(y * self.cfg.mesh_x + x)
    }

    /// Manhattan hop count between two nodes (XY routing is minimal).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// The XY route from `src` to `dst`, inclusive of both endpoints.
    /// X is routed first, then Y — the deadlock-free dimension order.
    ///
    /// Allocates; the hot path uses [`Mesh::route_iter`] instead.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        self.route_iter(src, dst).collect()
    }

    /// Allocation-free iterator over the XY route from `src` to `dst`,
    /// inclusive of both endpoints. Yields exactly `hops + 1` nodes.
    pub fn route_iter(&self, src: NodeId, dst: NodeId) -> RouteIter {
        let (x, y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        RouteIter {
            mesh_x: self.cfg.mesh_x,
            x,
            y,
            dx,
            dy,
            emitted_src: false,
        }
    }

    /// Number of dense link slots: every tile has one outgoing slot per
    /// direction (E, W, S, N), so `link_index` values are `< link_slots`.
    pub fn link_slots(&self) -> usize {
        self.nodes() * 4
    }

    /// Dense index of the directed link between two *adjacent* tiles.
    /// Encoded as `from * 4 + direction`, so per-link counters can live
    /// in a flat array instead of a hash map.
    ///
    /// # Panics
    ///
    /// Panics if the tiles are not mesh neighbours.
    pub fn link_index(&self, from: NodeId, to: NodeId) -> usize {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let dir = if ty == fy && tx == fx + 1 {
            0 // east
        } else if ty == fy && tx + 1 == fx {
            1 // west
        } else if tx == fx && ty == fy + 1 {
            2 // south
        } else if tx == fx && ty + 1 == fy {
            3 // north
        } else {
            panic!("tiles {} and {} are not adjacent", from.0, to.0);
        };
        from.0 * 4 + dir
    }

    /// Serialization delay for a `bytes`-sized payload over the link width
    /// (header flit rides for free; zero-byte control messages take one
    /// flit).
    pub fn serialization(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.cfg.link_bytes as u64).max(1)
    }

    /// End-to-end uncontended latency of one message: per-hop router cost
    /// plus payload serialization. A self-message (src == dst) costs only
    /// serialization.
    pub fn latency(&self, src: NodeId, dst: NodeId, bytes: usize) -> u64 {
        self.hops(src, dst) * self.cfg.hop_latency + self.serialization(bytes)
    }

    /// Round-trip latency: a `req_bytes` request followed by a
    /// `resp_bytes` response over the reverse route.
    pub fn round_trip(&self, src: NodeId, dst: NodeId, req_bytes: usize, resp_bytes: usize) -> u64 {
        self.latency(src, dst, req_bytes) + self.latency(dst, src, resp_bytes)
    }

    /// Worst-case hop count in this mesh (corner to corner).
    pub fn diameter(&self) -> u64 {
        (self.cfg.mesh_x - 1 + self.cfg.mesh_y - 1) as u64
    }
}

/// Iterator state for [`Mesh::route_iter`]: walks X toward the
/// destination column, then Y toward the destination row.
#[derive(Debug, Clone)]
pub struct RouteIter {
    mesh_x: usize,
    x: usize,
    y: usize,
    dx: usize,
    dy: usize,
    emitted_src: bool,
}

impl Iterator for RouteIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if !self.emitted_src {
            self.emitted_src = true;
        } else if self.x != self.dx {
            self.x = if self.dx > self.x {
                self.x + 1
            } else {
                self.x - 1
            };
        } else if self.y != self.dy {
            self.y = if self.dy > self.y {
                self.y + 1
            } else {
                self.y - 1
            };
        } else {
            return None;
        }
        Some(NodeId(self.y * self.mesh_x + self.x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(NocConfig::isca23())
    }

    #[test]
    fn coords_roundtrip() {
        let m = mesh4();
        for n in 0..16 {
            let (x, y) = m.coords(NodeId(n));
            assert_eq!(m.node_at(x, y), NodeId(n));
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let m = mesh4();
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(12)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(5), NodeId(10)), 2);
    }

    #[test]
    fn hops_symmetric() {
        let m = mesh4();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(m.hops(NodeId(a), NodeId(b)), m.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn route_is_minimal_and_contiguous() {
        let m = mesh4();
        for a in 0..16 {
            for b in 0..16 {
                let r = m.route(NodeId(a), NodeId(b));
                assert_eq!(r.len() as u64, m.hops(NodeId(a), NodeId(b)) + 1);
                assert_eq!(*r.first().unwrap(), NodeId(a));
                assert_eq!(*r.last().unwrap(), NodeId(b));
                for w in r.windows(2) {
                    assert_eq!(m.hops(w[0], w[1]), 1, "route must step one hop at a time");
                }
            }
        }
    }

    #[test]
    fn route_is_xy_ordered() {
        let m = mesh4();
        // 0 -> 15 must go along row 0 first: 0,1,2,3 then down 7,11,15.
        let r = m.route(NodeId(0), NodeId(15));
        assert_eq!(
            r,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(7),
                NodeId(11),
                NodeId(15)
            ]
        );
    }

    #[test]
    fn serialization_rounds_up() {
        let m = mesh4();
        assert_eq!(m.serialization(0), 1);
        assert_eq!(m.serialization(1), 1);
        assert_eq!(m.serialization(16), 1);
        assert_eq!(m.serialization(17), 2);
        assert_eq!(m.serialization(64), 4);
    }

    #[test]
    fn table2_latency_example() {
        let m = mesh4();
        // Control message one hop: 3 + 1.
        assert_eq!(m.latency(NodeId(0), NodeId(1), 8), 4);
        // 64B data corner-to-corner: 6*3 + 4.
        assert_eq!(m.latency(NodeId(0), NodeId(15), 64), 22);
    }

    #[test]
    fn round_trip_adds_both_directions() {
        let m = mesh4();
        let rt = m.round_trip(NodeId(0), NodeId(15), 8, 64);
        assert_eq!(
            rt,
            m.latency(NodeId(0), NodeId(15), 8) + m.latency(NodeId(15), NodeId(0), 64)
        );
    }

    #[test]
    fn diameter_of_4x4_is_6() {
        assert_eq!(mesh4().diameter(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        mesh4().coords(NodeId(16));
    }
}
