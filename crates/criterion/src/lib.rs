//! Offline stand-in for the Criterion bench harness.
//!
//! The container this repo builds in has no network access to a crates
//! registry, so the real `criterion` crate cannot be fetched. The bench
//! sources in `crates/bench/benches/` are written against Criterion's
//! API; this crate provides the same surface (`Criterion`,
//! `benchmark_group`, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!`) with a deliberately simple
//! measurement strategy: run each benchmark body `sample_size` times and
//! report total and per-iteration wall-clock time. No statistics, no
//! HTML reports — just enough to keep `cargo bench` meaningful and the
//! bench sources compiling unchanged.

#![deny(missing_docs)]

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group, Criterion-style.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark body; its [`iter`](Bencher::iter) method
/// runs and times the routine.
pub struct Bencher {
    samples: usize,
    elapsed_ns: u128,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iterations = self.samples as u64;
    }
}

fn report(id: &str, bencher: &Bencher) {
    let per_iter = if bencher.iterations == 0 {
        0
    } else {
        bencher.elapsed_ns / bencher.iterations as u128
    };
    println!(
        "bench {id:<48} {:>12} ns/iter ({} iters, {} ns total)",
        per_iter, bencher.iterations, bencher.elapsed_ns
    );
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: DEFAULT_SAMPLE_SIZE,
            elapsed_ns: 0,
            iterations: 0,
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many times each routine runs per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_ns: 0,
            iterations: 0,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_ns: 0,
            iterations: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Emits `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert_eq!(ran, DEFAULT_SAMPLE_SIZE as u32);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| b.iter(|| ran += x));
        group.finish();
        assert_eq!(ran, 6);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
