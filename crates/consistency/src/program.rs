//! Litmus programs: the input language of the checker and the operational
//! machine.

use ise_types::instr::{FenceKind, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic memory location (litmus tests use a handful: A, B, C...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Loc(pub u8);

impl Loc {
    /// The number of distinct locations the litmus toolchain supports
    /// end to end: the parser rejects names past `A..H`, the fuzz
    /// generator stays inside the bound, and the sim bridge maps each
    /// location to its own EInject page. Eight is far more than any
    /// litmus shape needs while keeping exhaustive exploration and
    /// axiom enumeration tractable.
    pub const LIMIT: u8 = 8;

    /// Conventional names for the first few locations.
    pub fn name(self) -> String {
        if self.0 < 26 {
            ((b'A' + self.0) as char).to_string()
        } else {
            format!("x{}", self.0)
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One statement's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StmtOp {
    /// Store `value` to `loc`.
    Write {
        /// Target location.
        loc: Loc,
        /// Stored value (give each write a distinct nonzero value).
        value: u64,
    },
    /// Load `loc` into `dst`.
    Read {
        /// Source location.
        loc: Loc,
        /// Destination register.
        dst: Reg,
    },
    /// Memory fence.
    Fence(FenceKind),
    /// Atomic fetch-add: loads the old value into `dst` and stores
    /// `old + add`. Fully ordered (RVWMO `aq`+`rl` semantics).
    Amo {
        /// Target location.
        loc: Loc,
        /// Addend.
        add: u64,
        /// Destination register for the old value.
        dst: Reg,
    },
}

/// One statement: an operation plus an optional dependency on an earlier
/// load's destination register (models RVWMO's address/data/control
/// dependencies — the "Dependencies" family of Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stmt {
    /// The operation.
    pub op: StmtOp,
    /// If `Some(r)`, this statement is dependency-ordered after the load
    /// producing `r`.
    pub dep: Option<Reg>,
}

impl Stmt {
    /// A store.
    pub fn write(loc: Loc, value: u64) -> Self {
        Stmt {
            op: StmtOp::Write { loc, value },
            dep: None,
        }
    }

    /// A load.
    pub fn read(loc: Loc, dst: Reg) -> Self {
        Stmt {
            op: StmtOp::Read { loc, dst },
            dep: None,
        }
    }

    /// A fence.
    pub fn fence(kind: FenceKind) -> Self {
        Stmt {
            op: StmtOp::Fence(kind),
            dep: None,
        }
    }

    /// An atomic fetch-add.
    pub fn amo(loc: Loc, add: u64, dst: Reg) -> Self {
        Stmt {
            op: StmtOp::Amo { loc, add, dst },
            dep: None,
        }
    }

    /// Marks this statement dependent on register `r`.
    pub fn depending_on(mut self, r: Reg) -> Self {
        self.dep = Some(r);
        self
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            StmtOp::Write { loc, value } => write!(f, "W {loc}={value}")?,
            StmtOp::Read { loc, dst } => write!(f, "R {dst}<-{loc}")?,
            StmtOp::Fence(k) => write!(f, "{k}")?,
            StmtOp::Amo { loc, add, dst } => write!(f, "AMO {dst}<-{loc}+={add}")?,
        }
        if let Some(r) = self.dep {
            write!(f, " [dep {r}]")?;
        }
        Ok(())
    }
}

/// A multi-threaded litmus program. Memory is zero-initialized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LitmusProgram {
    /// One statement list per thread.
    pub threads: Vec<Vec<Stmt>>,
}

impl LitmusProgram {
    /// Builds a program from per-thread statement lists.
    ///
    /// # Panics
    ///
    /// Panics if there are no threads, or a dependency references a
    /// register not produced by an earlier load on the same thread.
    pub fn new(threads: Vec<Vec<Stmt>>) -> Self {
        assert!(!threads.is_empty(), "program needs at least one thread");
        for (t, stmts) in threads.iter().enumerate() {
            let mut produced: Vec<Reg> = Vec::new();
            for (i, s) in stmts.iter().enumerate() {
                if let Some(r) = s.dep {
                    assert!(
                        produced.contains(&r),
                        "thread {t} stmt {i}: dependency on {r} not produced earlier"
                    );
                }
                match s.op {
                    StmtOp::Read { dst, .. } | StmtOp::Amo { dst, .. } => produced.push(dst),
                    _ => {}
                }
            }
        }
        LitmusProgram { threads }
    }

    /// All locations the program touches, ascending.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|s| match s.op {
                StmtOp::Write { loc, .. } | StmtOp::Read { loc, .. } | StmtOp::Amo { loc, .. } => {
                    Some(loc)
                }
                StmtOp::Fence(_) => None,
            })
            .collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }

    /// Total statements across threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A final outcome: the value each load-producing register ended with,
/// keyed by `(thread, register)`.
pub type Outcome = BTreeMap<(usize, Reg), u64>;

/// Formats an outcome compactly (`0:r0=1 1:r1=0`).
pub fn format_outcome(o: &Outcome) -> String {
    o.iter()
        .map(|((t, r), v)| format!("{t}:{r}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Loc {
        Loc(0)
    }
    fn b() -> Loc {
        Loc(1)
    }

    #[test]
    fn locations_deduped_and_sorted() {
        let p = LitmusProgram::new(vec![
            vec![Stmt::write(b(), 1), Stmt::write(a(), 1)],
            vec![Stmt::read(a(), Reg(0)), Stmt::read(b(), Reg(1))],
        ]);
        assert_eq!(p.locations(), vec![a(), b()]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn dependency_validation_accepts_well_formed() {
        let p = LitmusProgram::new(vec![vec![
            Stmt::read(a(), Reg(0)),
            Stmt::write(b(), 1).depending_on(Reg(0)),
        ]]);
        assert_eq!(p.threads[0][1].dep, Some(Reg(0)));
    }

    #[test]
    #[should_panic(expected = "not produced earlier")]
    fn dangling_dependency_rejected() {
        LitmusProgram::new(vec![vec![Stmt::write(b(), 1).depending_on(Reg(0))]]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_program_rejected() {
        LitmusProgram::new(vec![]);
    }

    #[test]
    fn display_reads_like_litmus() {
        assert_eq!(Stmt::write(a(), 1).to_string(), "W A=1");
        assert_eq!(Stmt::read(b(), Reg(2)).to_string(), "R r2<-B");
        assert_eq!(
            Stmt::write(a(), 1).depending_on(Reg(0)).to_string(),
            "W A=1 [dep r0]"
        );
    }

    #[test]
    fn loc_names() {
        assert_eq!(Loc(0).name(), "A");
        assert_eq!(Loc(25).name(), "Z");
        assert_eq!(Loc(30).name(), "x30");
    }
}
