//! Mechanization of Proof 1 (paper §4.6): the store-store ordering rule
//! of PC holds under the same-stream design.
//!
//! The proof considers two program-ordered stores `S(A) <p S(B)` on one
//! core and case-splits on which of them faults. For each case we build
//! the global order of operations the same-stream design mandates —
//! drains in store-buffer FIFO order, `DETECT <m PUT <m GET <m S_OS <m
//! RESOLVE` for the faulting episode, OS applications in interface order —
//! and check that the *effective write* of A (its drain or its `S_OS`)
//! precedes the effective write of B. Running the same cases under the
//! split-stream policy of §4.5 exhibits the violation that motivates the
//! same-stream design.

use ise_types::model::DrainPolicy;
use std::fmt;

/// One operation in the derived global memory order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofOp {
    /// `S(A)` or `S(B)` drained from the store buffer to memory.
    Drain(char),
    /// Exception detected on a store.
    Detect(char),
    /// A load completing (for the load-ordering rules).
    Load(char),
    /// A fence completing (for the fence rules).
    Fence,
    /// Store supplied to the architectural interface.
    Put(char),
    /// OS retrieved a store from the interface.
    Get(char),
    /// OS applied the store to memory (`S_OS`).
    Sos(char),
    /// OS finished handling.
    Resolve,
}

impl ProofOp {
    /// Whether this operation makes the named store's value visible in
    /// memory (a drain or an OS application).
    pub fn effective_write_of(self, name: char) -> bool {
        matches!(self, ProofOp::Drain(n) | ProofOp::Sos(n) if n == name)
    }
}

impl fmt::Display for ProofOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofOp::Drain(n) => write!(f, "S({n})"),
            ProofOp::Load(n) => write!(f, "L({n})"),
            ProofOp::Fence => write!(f, "F"),
            ProofOp::Detect(n) => write!(f, "DETECT({n})"),
            ProofOp::Put(n) => write!(f, "PUT(S({n}))"),
            ProofOp::Get(n) => write!(f, "GET({n})"),
            ProofOp::Sos(n) => write!(f, "S_OS({n})"),
            ProofOp::Resolve => write!(f, "RESOLVE"),
        }
    }
}

/// Derives the global order of operations for two program-ordered stores
/// `S(A) <p S(B)` with the given faulting flags, under `policy`.
///
/// The store buffer drains FIFO (PC). Under [`DrainPolicy::SameStream`],
/// detection of a fault drains *both* stores to the interface in order
/// and the OS applies both in retrieved order (§4.6). Under
/// [`DrainPolicy::SplitStream`], only the faulting store goes to the
/// interface while a younger non-faulting store proceeds to memory (§4.5)
/// — the case the paper shows to be racy.
pub fn derive_global_order(fault_a: bool, fault_b: bool, policy: DrainPolicy) -> Vec<ProofOp> {
    use ProofOp::*;
    match (policy, fault_a, fault_b) {
        // Case 1: neither faults — plain FIFO drain.
        (_, false, false) => vec![Drain('A'), Drain('B')],
        // Case 2: only B faults. A drains first (FIFO), then B's episode.
        (_, false, true) => vec![
            Drain('A'),
            Detect('B'),
            Put('B'),
            Get('B'),
            Sos('B'),
            Resolve,
        ],
        // Cases 3 & 4 under same-stream: A's detection sends the whole
        // buffer — B included, faulting or not — through the interface.
        (DrainPolicy::SameStream, true, _) => vec![
            Detect('A'),
            Put('A'),
            Put('B'),
            Get('A'),
            Sos('A'),
            Get('B'),
            Sos('B'),
            Resolve,
        ],
        // Cases 3 & 4 under split-stream: the faulting A goes to the
        // interface while the non-faulting B drains straight to memory —
        // B's value becomes visible before S_OS(A).
        (DrainPolicy::SplitStream, true, false) => vec![
            Detect('A'),
            Put('A'),
            Drain('B'),
            Get('A'),
            Sos('A'),
            Resolve,
        ],
        (DrainPolicy::SplitStream, true, true) => vec![
            Detect('A'),
            Put('A'),
            Detect('B'),
            Put('B'),
            Get('A'),
            Sos('A'),
            Get('B'),
            Sos('B'),
            Resolve,
        ],
    }
}

/// Checks the store-store rule: A's effective write precedes B's in the
/// derived global order.
pub fn store_store_order_preserved(fault_a: bool, fault_b: bool, policy: DrainPolicy) -> bool {
    let order = derive_global_order(fault_a, fault_b, policy);
    let pos = |name| order.iter().position(|op| op.effective_write_of(name));
    match (pos('A'), pos('B')) {
        (Some(a), Some(b)) => a < b,
        _ => false,
    }
}

/// Derives the global order for `L(A) <p S(B)` where the store may
/// fault: the PC load-store rule. Loads complete before retirement, so
/// the load precedes the store's detection — and therefore both its
/// drain and its `S_OS` — in every case.
pub fn derive_load_store_order(fault_b: bool) -> Vec<ProofOp> {
    use ProofOp::*;
    if fault_b {
        vec![
            Load('A'),
            Detect('B'),
            Put('B'),
            Get('B'),
            Sos('B'),
            Resolve,
        ]
    } else {
        vec![Load('A'), Drain('B')]
    }
}

/// Checks the PC load-store rule `L(A) <p S(B) ⇒ L(A) <m S(B)` under
/// imprecise handling.
pub fn load_store_order_preserved(fault_b: bool) -> bool {
    let order = derive_load_store_order(fault_b);
    let l = order.iter().position(|op| matches!(op, ProofOp::Load('A')));
    let s = order.iter().position(|op| op.effective_write_of('B'));
    matches!((l, s), (Some(l), Some(s)) if l < s)
}

/// Derives the global order for `S(A) <p F <p S(B)` with `S(A)` possibly
/// faulting: the fence rule. A fence blocks the ROB until the store
/// buffer drains; if the drain detects an exception, the fence is
/// re-executed only after RESOLVE (paper §4.4: "the load/atomic/fence
/// instruction will be re-executed only after successful exception
/// handling indicated by RESOLVE <m F").
pub fn derive_fence_order(fault_a: bool) -> Vec<ProofOp> {
    use ProofOp::*;
    if fault_a {
        vec![
            Detect('A'),
            Put('A'),
            Get('A'),
            Sos('A'),
            Resolve,
            Fence,
            Drain('B'),
        ]
    } else {
        vec![Drain('A'), Fence, Drain('B')]
    }
}

/// Checks the fence rule: A's effective write precedes the fence, which
/// precedes B's, and — when A faulted — RESOLVE precedes the fence.
pub fn fence_order_preserved(fault_a: bool) -> bool {
    let order = derive_fence_order(fault_a);
    let pos = |pred: &dyn Fn(&ProofOp) -> bool| order.iter().position(pred);
    let a = pos(&|op| op.effective_write_of('A'));
    let f = pos(&|op| matches!(op, ProofOp::Fence));
    let b = pos(&|op| op.effective_write_of('B'));
    let resolve_ok = if fault_a {
        match (pos(&|op| matches!(op, ProofOp::Resolve)), f) {
            (Some(r), Some(f)) => r < f,
            _ => false,
        }
    } else {
        true
    };
    matches!((a, f, b), (Some(a), Some(f), Some(b)) if a < f && f < b) && resolve_ok
}

/// Derives the global order for `S(A, D)` (faulting) followed in program
/// order by `L(A)`: the value rule `L(A) = MAX<m {S(A)}`. Two legal
/// executions exist: the load forwards `D` from the store buffer before
/// detection, or it stalls (precise-exception discipline drains the SB
/// first) and executes after `S_OS(A)` made `D` globally visible. Either
/// way it observes `D`.
pub fn derive_value_rule_orders() -> [Vec<ProofOp>; 2] {
    use ProofOp::*;
    [
        // Forwarding: the load reads the SB entry; memory order of the
        // load is before the OS apply, but the *value* is D already.
        vec![
            Load('A'),
            Detect('A'),
            Put('A'),
            Get('A'),
            Sos('A'),
            Resolve,
        ],
        // Stall-and-replay: the load re-executes after RESOLVE.
        vec![
            Detect('A'),
            Put('A'),
            Get('A'),
            Sos('A'),
            Resolve,
            Load('A'),
        ],
    ]
}

/// Checks the interface-order half of the contract in the derived order:
/// every PUT precedes its GET, PUTs are in program order, GETs are in PUT
/// order, and all S_OS precede RESOLVE.
pub fn interface_order_respected(order: &[ProofOp]) -> bool {
    let pos_of = |target: ProofOp| order.iter().position(|&op| op == target);
    let resolve = pos_of(ProofOp::Resolve);
    for &name in &['A', 'B'] {
        if let Some(p) = pos_of(ProofOp::Put(name)) {
            let Some(g) = pos_of(ProofOp::Get(name)) else {
                return false; // a PUT store must be retrieved
            };
            let Some(s) = pos_of(ProofOp::Sos(name)) else {
                return false; // and applied
            };
            if !(p < g && g < s) {
                return false;
            }
            if let Some(r) = resolve {
                if s > r {
                    return false;
                }
            } else {
                return false;
            }
        }
    }
    // PUT order follows program order.
    if let (Some(pa), Some(pb)) = (pos_of(ProofOp::Put('A')), pos_of(ProofOp::Put('B'))) {
        if pa > pb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proof1_all_four_cases_hold_under_same_stream() {
        for (fa, fb) in [(false, false), (false, true), (true, true), (true, false)] {
            assert!(
                store_store_order_preserved(fa, fb, DrainPolicy::SameStream),
                "case (fault_a={fa}, fault_b={fb}) must preserve S(A) <m S(B)"
            );
        }
    }

    #[test]
    fn split_stream_case4_violates_store_store_order() {
        // Only S(A) faulting: the younger S(B) reaches memory before
        // S_OS(A) — exactly the §4.5 violation.
        assert!(!store_store_order_preserved(
            true,
            false,
            DrainPolicy::SplitStream
        ));
    }

    #[test]
    fn split_stream_other_cases_are_fine() {
        // The violation needs a faulting older store and a non-faulting
        // younger one; the remaining cases happen to preserve order.
        assert!(store_store_order_preserved(
            false,
            false,
            DrainPolicy::SplitStream
        ));
        assert!(store_store_order_preserved(
            false,
            true,
            DrainPolicy::SplitStream
        ));
        assert!(store_store_order_preserved(
            true,
            true,
            DrainPolicy::SplitStream
        ));
    }

    #[test]
    fn episode_orders_respect_the_interface_contract() {
        for policy in [DrainPolicy::SameStream, DrainPolicy::SplitStream] {
            for (fa, fb) in [(false, false), (false, true), (true, true), (true, false)] {
                let order = derive_global_order(fa, fb, policy);
                assert!(
                    interface_order_respected(&order),
                    "{policy}: case ({fa},{fb}) violates DETECT<PUT<GET<S_OS<RESOLVE: {:?}",
                    order
                );
            }
        }
    }

    #[test]
    fn load_store_rule_holds_both_ways() {
        assert!(load_store_order_preserved(false));
        assert!(load_store_order_preserved(true));
    }

    #[test]
    fn fence_rule_holds_and_requires_resolve_before_fence() {
        assert!(fence_order_preserved(false));
        assert!(fence_order_preserved(true));
        // The faulting derivation really contains RESOLVE <m F.
        let order = derive_fence_order(true);
        let r = order
            .iter()
            .position(|o| matches!(o, ProofOp::Resolve))
            .unwrap();
        let f = order
            .iter()
            .position(|o| matches!(o, ProofOp::Fence))
            .unwrap();
        assert!(r < f);
    }

    #[test]
    fn value_rule_orders_put_sos_before_any_post_resolve_load() {
        for order in derive_value_rule_orders() {
            assert!(interface_order_respected(&order), "{order:?}");
            // If the load executes after RESOLVE, S_OS precedes it.
            let l = order
                .iter()
                .position(|o| matches!(o, ProofOp::Load('A')))
                .unwrap();
            let r = order
                .iter()
                .position(|o| matches!(o, ProofOp::Resolve))
                .unwrap();
            let s = order
                .iter()
                .position(|o| matches!(o, ProofOp::Sos('A')))
                .unwrap();
            if l > r {
                assert!(s < l, "replayed load must see S_OS(A): {order:?}");
            }
        }
    }

    #[test]
    fn effective_write_classification() {
        assert!(ProofOp::Drain('A').effective_write_of('A'));
        assert!(ProofOp::Sos('B').effective_write_of('B'));
        assert!(!ProofOp::Put('A').effective_write_of('A'));
        assert!(!ProofOp::Drain('A').effective_write_of('B'));
    }

    #[test]
    fn orders_render_like_the_paper() {
        let order = derive_global_order(true, false, DrainPolicy::SameStream);
        let s: Vec<String> = order.iter().map(|o| o.to_string()).collect();
        assert_eq!(
            s.join(" <m "),
            "DETECT(A) <m PUT(S(A)) <m PUT(S(B)) <m GET(A) <m S_OS(A) <m GET(B) <m S_OS(B) <m RESOLVE"
        );
    }
}
