//! Batched axiomatic checking with allowed-set memoization.
//!
//! Enumerating a program's allowed outcomes is the expensive half of a
//! differential check (candidate executions grow with the product of
//! reads-from choices and per-location coherence orders). The fuzzing
//! harness asks for the same program's envelope repeatedly — once when
//! the case runs, then once per shrinking attempt, most of which mutate
//! a program the shrinker has already tried — so [`BatchChecker`] caches
//! the enumeration keyed by `(program, model)` and exposes the
//! subset-check the litmus runner uses as its pass criterion.

use crate::axiom::allowed_outcomes;
use crate::program::{LitmusProgram, Outcome};
use crate::source::{allowed_src_outcomes, SrcProgram};
use ise_types::model::ConsistencyModel;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// A memoizing front-end over [`allowed_outcomes`].
#[derive(Debug, Default)]
pub struct BatchChecker {
    cache: HashMap<(LitmusProgram, ConsistencyModel), Rc<BTreeSet<Outcome>>>,
    hits: u64,
    misses: u64,
}

impl BatchChecker {
    /// An empty checker.
    pub fn new() -> Self {
        BatchChecker::default()
    }

    /// The allowed-outcome set for `(prog, model)`, enumerated at most
    /// once per checker.
    pub fn allowed(
        &mut self,
        prog: &LitmusProgram,
        model: ConsistencyModel,
    ) -> Rc<BTreeSet<Outcome>> {
        if let Some(set) = self.cache.get(&(prog.clone(), model)) {
            self.hits += 1;
            return Rc::clone(set);
        }
        self.misses += 1;
        let set = Rc::new(allowed_outcomes(prog, model));
        self.cache.insert((prog.clone(), model), Rc::clone(&set));
        set
    }

    /// The outcomes in `observed` the model forbids (empty exactly when
    /// `observed ⊆ allowed` — the litmus pass criterion).
    pub fn violations(
        &mut self,
        prog: &LitmusProgram,
        model: ConsistencyModel,
        observed: &BTreeSet<Outcome>,
    ) -> Vec<Outcome> {
        let allowed = self.allowed(prog, model);
        observed.difference(&allowed).cloned().collect()
    }

    /// Cache hits so far (repeat queries answered without enumeration).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (enumerations actually performed).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// A memoizing front-end over [`allowed_src_outcomes`] — the
/// language-level twin of [`BatchChecker`], used by the trisection
/// harness (the source program is the whole key: the language has no
/// model parameter).
#[derive(Debug, Default)]
pub struct SrcBatchChecker {
    cache: HashMap<SrcProgram, Rc<BTreeSet<Outcome>>>,
    hits: u64,
    misses: u64,
}

impl SrcBatchChecker {
    /// An empty checker.
    pub fn new() -> Self {
        SrcBatchChecker::default()
    }

    /// The language-allowed outcome set for `prog`, enumerated at most
    /// once per checker.
    pub fn allowed(&mut self, prog: &SrcProgram) -> Rc<BTreeSet<Outcome>> {
        if let Some(set) = self.cache.get(prog) {
            self.hits += 1;
            return Rc::clone(set);
        }
        self.misses += 1;
        let set = Rc::new(allowed_src_outcomes(prog));
        self.cache.insert(prog.clone(), Rc::clone(&set));
        set
    }

    /// The outcomes in `observed` the language forbids (empty exactly
    /// when `observed ⊆ allowed` — the trisection pass criterion).
    pub fn violations(&mut self, prog: &SrcProgram, observed: &BTreeSet<Outcome>) -> Vec<Outcome> {
        let allowed = self.allowed(prog);
        observed.difference(&allowed).cloned().collect()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (enumerations actually performed).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Loc, Stmt};
    use crate::source::{MemOrder, SrcStmt};
    use ise_types::instr::Reg;

    fn sb() -> LitmusProgram {
        LitmusProgram::new(vec![
            vec![Stmt::write(Loc(0), 1), Stmt::read(Loc(1), Reg(0))],
            vec![Stmt::write(Loc(1), 1), Stmt::read(Loc(0), Reg(1))],
        ])
    }

    #[test]
    fn cached_set_matches_direct_enumeration() {
        let mut b = BatchChecker::new();
        for model in ConsistencyModel::ALL {
            let cached = b.allowed(&sb(), model);
            assert_eq!(*cached, allowed_outcomes(&sb(), model));
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let mut b = BatchChecker::new();
        let first = b.allowed(&sb(), ConsistencyModel::Pc);
        let second = b.allowed(&sb(), ConsistencyModel::Pc);
        assert_eq!(first, second);
        assert_eq!(b.misses(), 1);
        assert_eq!(b.hits(), 1);
        // A different model is a different key.
        let _ = b.allowed(&sb(), ConsistencyModel::Wc);
        assert_eq!(b.misses(), 2);
    }

    #[test]
    fn src_checker_caches_by_program() {
        let mp = SrcProgram::new(vec![
            vec![SrcStmt::store(Loc(0), 1, MemOrder::Release)],
            vec![SrcStmt::load(Loc(0), Reg(0), MemOrder::Acquire)],
        ]);
        let mut b = SrcBatchChecker::new();
        let first = b.allowed(&mp);
        let second = b.allowed(&mp);
        assert_eq!(first, second);
        assert_eq!(b.misses(), 1);
        assert_eq!(b.hits(), 1);
        assert_eq!(*first, allowed_src_outcomes(&mp));
        // A language-forbidden outcome surfaces as a violation.
        let mut bogus = Outcome::new();
        bogus.insert((1, Reg(0)), 7);
        let observed: BTreeSet<Outcome> = [bogus.clone()].into_iter().collect();
        assert_eq!(b.violations(&mp, &observed), vec![bogus]);
    }

    #[test]
    fn violations_empty_iff_subset() {
        let mut b = BatchChecker::new();
        let allowed = b.allowed(&sb(), ConsistencyModel::Wc);
        let observed: BTreeSet<Outcome> = allowed.iter().take(2).cloned().collect();
        assert!(b
            .violations(&sb(), ConsistencyModel::Wc, &observed)
            .is_empty());
        let mut bogus = Outcome::new();
        bogus.insert((0, Reg(0)), 99);
        let observed: BTreeSet<Outcome> = [bogus.clone()].into_iter().collect();
        assert_eq!(
            b.violations(&sb(), ConsistencyModel::Wc, &observed),
            vec![bogus]
        );
    }
}
