//! The compiler-mapping pass: source programs → hardware litmus
//! primitives.
//!
//! A [`MappingTable`] is *data, not code*: for each source operation
//! class and memory order it records which hardware fences surround the
//! lowered access. [`lower`] walks a [`SrcProgram`] and emits a
//! [`LitmusProgram`] by table lookup alone — so a mutated table
//! ([`MappingBug`]) injects a known-wrong compiler for the trisection
//! harness's self-checks without touching any lowering logic.
//!
//! The correct tables ([`correct_table`]):
//!
//! | source        | SC    | PC/TSO   | WC          |
//! |---------------|-------|----------|-------------|
//! | store relaxed | `W`   | `W`      | `W`         |
//! | store release | `W`   | `W`      | `F ; W`     |
//! | store seq_cst | `W`   | `W ; F`  | `F ; W ; F` |
//! | load relaxed  | `R`   | `R`      | `R`         |
//! | load acquire  | `R`   | `R`      | `R ; F`     |
//! | load seq_cst  | `R`   | `R`      | `F ; R ; F` |
//! | fence acquire | (nop) | (nop)    | `F`         |
//! | fence release | (nop) | (nop)    | `F`         |
//! | fence seq_cst | (nop) | `F`      | `F`         |
//!
//! SC hardware needs no fences (every interleaving of an SC machine
//! satisfies the language axioms). TSO preserves all orders except
//! store→load, which only the seq_cst axiom needs restored — the
//! classic x86 mapping (trailing `mfence` on seq_cst stores). The WC
//! hardware model keeps only same-location order, dependencies, and
//! fence-imposed edges, so release stores take a leading full fence,
//! acquire loads a trailing one, and seq_cst accesses both. Full
//! fences (not `F.ww`/`F.rr`) are required: a release store must order
//! prior *loads* before it and an acquire load must order later
//! *stores* after it.

use crate::program::{LitmusProgram, Stmt};
use crate::source::{MemOrder, SrcOp, SrcProgram, SrcStmt};
use ise_types::instr::FenceKind;
use ise_types::model::ConsistencyModel;
use std::collections::BTreeMap;

/// How one source access lowers: hardware fences emitted before and
/// after the access itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessMapping {
    /// Fences emitted before the access.
    pub pre: Vec<FenceKind>,
    /// Fences emitted after the access.
    pub post: Vec<FenceKind>,
}

impl AccessMapping {
    fn plain() -> Self {
        AccessMapping::default()
    }
    fn pre(kind: FenceKind) -> Self {
        AccessMapping {
            pre: vec![kind],
            post: Vec::new(),
        }
    }
    fn post(kind: FenceKind) -> Self {
        AccessMapping {
            pre: Vec::new(),
            post: vec![kind],
        }
    }
    fn both(kind: FenceKind) -> Self {
        AccessMapping {
            pre: vec![kind],
            post: vec![kind],
        }
    }
}

/// A per-model compiler mapping: pure data the lowering pass looks up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingTable {
    /// The hardware model this table targets.
    pub model: ConsistencyModel,
    /// Store lowerings, keyed by order (relaxed, release, seq_cst).
    pub stores: BTreeMap<MemOrder, AccessMapping>,
    /// Load lowerings, keyed by order (relaxed, acquire, seq_cst).
    pub loads: BTreeMap<MemOrder, AccessMapping>,
    /// Fence lowerings, keyed by order (acquire, release, seq_cst); an
    /// empty sequence erases the fence.
    pub fences: BTreeMap<MemOrder, Vec<FenceKind>>,
}

/// The correct (believed-sound) mapping table for `model`.
pub fn correct_table(model: ConsistencyModel) -> MappingTable {
    let f = FenceKind::Full;
    let (stores, loads, fences) = match model {
        ConsistencyModel::Sc => (
            [
                (MemOrder::Relaxed, AccessMapping::plain()),
                (MemOrder::Release, AccessMapping::plain()),
                (MemOrder::SeqCst, AccessMapping::plain()),
            ],
            [
                (MemOrder::Relaxed, AccessMapping::plain()),
                (MemOrder::Acquire, AccessMapping::plain()),
                (MemOrder::SeqCst, AccessMapping::plain()),
            ],
            [
                (MemOrder::Acquire, Vec::new()),
                (MemOrder::Release, Vec::new()),
                (MemOrder::SeqCst, Vec::new()),
            ],
        ),
        ConsistencyModel::Pc => (
            [
                (MemOrder::Relaxed, AccessMapping::plain()),
                (MemOrder::Release, AccessMapping::plain()),
                (MemOrder::SeqCst, AccessMapping::post(f)),
            ],
            [
                (MemOrder::Relaxed, AccessMapping::plain()),
                (MemOrder::Acquire, AccessMapping::plain()),
                (MemOrder::SeqCst, AccessMapping::plain()),
            ],
            [
                (MemOrder::Acquire, Vec::new()),
                (MemOrder::Release, Vec::new()),
                (MemOrder::SeqCst, vec![f]),
            ],
        ),
        ConsistencyModel::Wc => (
            [
                (MemOrder::Relaxed, AccessMapping::plain()),
                (MemOrder::Release, AccessMapping::pre(f)),
                (MemOrder::SeqCst, AccessMapping::both(f)),
            ],
            [
                (MemOrder::Relaxed, AccessMapping::plain()),
                (MemOrder::Acquire, AccessMapping::post(f)),
                (MemOrder::SeqCst, AccessMapping::both(f)),
            ],
            [
                (MemOrder::Acquire, vec![f]),
                (MemOrder::Release, vec![f]),
                (MemOrder::SeqCst, vec![f]),
            ],
        ),
    };
    MappingTable {
        model,
        stores: stores.into_iter().collect(),
        loads: loads.into_iter().collect(),
        fences: fences.into_iter().collect(),
    }
}

/// A deliberately wrong table mutation for harness self-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MappingBug {
    /// A release store lowered without its leading fence under WC — the
    /// classic "forgot the barrier in the mapping" compiler bug.
    WcReleaseStoreNoFence,
    /// An acquire load lowered exactly like a relaxed load (its fences
    /// dropped) under every model.
    AcquireLoadAsRelaxed,
}

impl MappingBug {
    /// Every bug, in declaration order.
    pub const ALL: [MappingBug; 2] = [
        MappingBug::WcReleaseStoreNoFence,
        MappingBug::AcquireLoadAsRelaxed,
    ];

    /// Stable kebab-case name (CLI flag values, telemetry keys).
    pub fn name(self) -> &'static str {
        match self {
            MappingBug::WcReleaseStoreNoFence => "wc-release-store-no-fence",
            MappingBug::AcquireLoadAsRelaxed => "acquire-load-as-relaxed",
        }
    }
}

/// [`correct_table`] with `bug` injected: the returned table is the
/// correct one except for the mutated entry.
pub fn buggy_table(model: ConsistencyModel, bug: MappingBug) -> MappingTable {
    let mut table = correct_table(model);
    match bug {
        MappingBug::WcReleaseStoreNoFence => {
            if model == ConsistencyModel::Wc {
                table
                    .stores
                    .insert(MemOrder::Release, AccessMapping::plain());
            }
        }
        MappingBug::AcquireLoadAsRelaxed => {
            let relaxed = table.loads[&MemOrder::Relaxed].clone();
            table.loads.insert(MemOrder::Acquire, relaxed);
        }
    }
    table
}

/// Lowers `prog` through `table` into hardware litmus primitives.
///
/// Each source access becomes its table entry's `pre` fences, the
/// access itself (same location, value, and destination register,
/// carrying the source statement's dependency annotation), then the
/// `post` fences. Source fences become their table entry's fence list.
/// Registers are preserved 1:1, so a source outcome and a lowered
/// outcome are directly comparable.
///
/// # Panics
///
/// Panics if a statement's order has no table entry (the constructors
/// of [`SrcProgram`] and [`correct_table`] keep the key sets aligned).
pub fn lower(prog: &SrcProgram, table: &MappingTable) -> LitmusProgram {
    let threads = prog
        .threads
        .iter()
        .map(|stmts| {
            let mut out: Vec<Stmt> = Vec::new();
            for s in stmts {
                lower_stmt(s, table, &mut out);
            }
            // A thread of erased fences must not become empty: the
            // machine wants at least one statement per thread. A full
            // fence over nothing is a no-op on every model.
            if out.is_empty() {
                out.push(Stmt::fence(FenceKind::Full));
            }
            out
        })
        .collect();
    LitmusProgram::new(threads)
}

fn lower_stmt(s: &SrcStmt, table: &MappingTable, out: &mut Vec<Stmt>) {
    match s.op {
        SrcOp::Store { loc, value, order } => {
            let m = table
                .stores
                .get(&order)
                .unwrap_or_else(|| panic!("no store mapping for {order}"));
            out.extend(m.pre.iter().map(|&k| Stmt::fence(k)));
            let mut w = Stmt::write(loc, value);
            w.dep = s.dep;
            out.push(w);
            out.extend(m.post.iter().map(|&k| Stmt::fence(k)));
        }
        SrcOp::Load { loc, dst, order } => {
            let m = table
                .loads
                .get(&order)
                .unwrap_or_else(|| panic!("no load mapping for {order}"));
            out.extend(m.pre.iter().map(|&k| Stmt::fence(k)));
            let mut r = Stmt::read(loc, dst);
            r.dep = s.dep;
            out.push(r);
            out.extend(m.post.iter().map(|&k| Stmt::fence(k)));
        }
        SrcOp::Fence { order } => {
            let m = table
                .fences
                .get(&order)
                .unwrap_or_else(|| panic!("no fence mapping for {order}"));
            out.extend(m.iter().map(|&k| Stmt::fence(k)));
        }
    }
}

fn fence_token(kind: FenceKind) -> &'static str {
    match kind {
        FenceKind::Full => "F",
        FenceKind::StoreStore => "F.ww",
        FenceKind::LoadLoad => "F.rr",
    }
}

fn sequence(pre: &[FenceKind], op: &str, post: &[FenceKind]) -> String {
    let mut parts: Vec<&str> = pre.iter().map(|&k| fence_token(k)).collect();
    parts.push(op);
    parts.extend(post.iter().map(|&k| fence_token(k)));
    parts.join(" ; ")
}

/// Renders `table` as stable text — the golden-snapshot form.
pub fn render_mapping_table(table: &MappingTable) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "mapping table: {}", table.model).unwrap();
    for (order, m) in &table.stores {
        writeln!(
            out,
            "  store.{:<3} -> {}",
            order.token(),
            sequence(&m.pre, "W", &m.post)
        )
        .unwrap();
    }
    for (order, m) in &table.loads {
        writeln!(
            out,
            "  load.{:<4} -> {}",
            order.token(),
            sequence(&m.pre, "R", &m.post)
        )
        .unwrap();
    }
    for (order, fences) in &table.fences {
        let rhs = if fences.is_empty() {
            "(erased)".to_string()
        } else {
            fences
                .iter()
                .map(|&k| fence_token(k))
                .collect::<Vec<_>>()
                .join(" ; ")
        };
        writeln!(out, "  fence.{:<3} -> {rhs}", order.token()).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Loc, StmtOp};
    use crate::source::SrcStmt;
    use ise_types::instr::Reg;
    use MemOrder::{Acquire, Relaxed, Release, SeqCst};

    const A: Loc = Loc(0);
    const B: Loc = Loc(1);
    const R0: Reg = Reg(0);

    #[test]
    fn sc_lowers_everything_plain() {
        let p = SrcProgram::new(vec![vec![
            SrcStmt::store(A, 1, SeqCst),
            SrcStmt::fence(SeqCst),
            SrcStmt::load(B, R0, Acquire),
        ]]);
        let lowered = lower(&p, &correct_table(ConsistencyModel::Sc));
        assert_eq!(lowered.threads[0].len(), 2);
        assert!(lowered.threads[0]
            .iter()
            .all(|s| !matches!(s.op, StmtOp::Fence(_))));
    }

    #[test]
    fn wc_release_store_takes_a_leading_fence() {
        let p = SrcProgram::new(vec![vec![SrcStmt::store(A, 1, Release)]]);
        let lowered = lower(&p, &correct_table(ConsistencyModel::Wc));
        assert_eq!(lowered.threads[0].len(), 2);
        assert!(matches!(
            lowered.threads[0][0].op,
            StmtOp::Fence(FenceKind::Full)
        ));
        assert!(matches!(lowered.threads[0][1].op, StmtOp::Write { .. }));
    }

    #[test]
    fn wc_acquire_load_takes_a_trailing_fence() {
        let p = SrcProgram::new(vec![vec![SrcStmt::load(A, R0, Acquire)]]);
        let lowered = lower(&p, &correct_table(ConsistencyModel::Wc));
        assert_eq!(lowered.threads[0].len(), 2);
        assert!(matches!(lowered.threads[0][0].op, StmtOp::Read { .. }));
        assert!(matches!(
            lowered.threads[0][1].op,
            StmtOp::Fence(FenceKind::Full)
        ));
    }

    #[test]
    fn pc_fences_only_seq_cst_stores() {
        let p = SrcProgram::new(vec![vec![
            SrcStmt::store(A, 1, Release),
            SrcStmt::store(A, 2, SeqCst),
            SrcStmt::load(B, R0, SeqCst),
        ]]);
        let lowered = lower(&p, &correct_table(ConsistencyModel::Pc));
        let kinds: Vec<bool> = lowered.threads[0]
            .iter()
            .map(|s| matches!(s.op, StmtOp::Fence(_)))
            .collect();
        // W, W, F, R — one fence, after the seq_cst store.
        assert_eq!(kinds, vec![false, false, true, false]);
    }

    #[test]
    fn dependencies_ride_on_the_lowered_access() {
        let p = SrcProgram::new(vec![vec![
            SrcStmt::load(A, R0, Acquire),
            SrcStmt::store(B, 1, Release).depending_on(R0),
        ]]);
        let lowered = lower(&p, &correct_table(ConsistencyModel::Wc));
        // R, F, F, W — the W carries the dep.
        let w = lowered.threads[0]
            .iter()
            .find(|s| matches!(s.op, StmtOp::Write { .. }))
            .expect("store survives lowering");
        assert_eq!(w.dep, Some(R0));
        // The lowered program still validates (dep after its producer).
        let _ = LitmusProgram::new(lowered.threads.clone());
    }

    #[test]
    fn an_all_fence_thread_does_not_lower_to_empty() {
        let p = SrcProgram::new(vec![
            vec![SrcStmt::fence(Release)],
            vec![SrcStmt::store(A, 1, Relaxed)],
        ]);
        // Under PC the release fence erases; the thread must survive.
        let lowered = lower(&p, &correct_table(ConsistencyModel::Pc));
        assert_eq!(lowered.threads.len(), 2);
        assert!(!lowered.threads[0].is_empty());
    }

    #[test]
    fn buggy_tables_differ_from_correct_exactly_where_advertised() {
        let correct = correct_table(ConsistencyModel::Wc);
        let b1 = buggy_table(ConsistencyModel::Wc, MappingBug::WcReleaseStoreNoFence);
        assert_eq!(b1.stores[&Release], AccessMapping::plain());
        assert_eq!(b1.loads, correct.loads);
        assert_eq!(b1.fences, correct.fences);

        let b2 = buggy_table(ConsistencyModel::Wc, MappingBug::AcquireLoadAsRelaxed);
        assert_eq!(b2.loads[&Acquire], AccessMapping::plain());
        assert_eq!(b2.stores, correct.stores);

        // The release-store bug is a WC-mapping bug: other models keep
        // their correct (already fence-free) entry.
        assert_eq!(
            buggy_table(ConsistencyModel::Pc, MappingBug::WcReleaseStoreNoFence),
            correct_table(ConsistencyModel::Pc)
        );
    }

    #[test]
    fn rendered_table_is_stable_text() {
        let text = render_mapping_table(&correct_table(ConsistencyModel::Wc));
        assert!(text.contains("mapping table: WC"));
        assert!(text.contains("store.rel -> F ; W"));
        assert!(text.contains("load.acq  -> R ; F"));
        assert!(text.contains("fence.sc  -> F"));
    }
}
