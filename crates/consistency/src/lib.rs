//! Memory-consistency formalism (paper §4).
//!
//! This crate mechanizes the paper's formal machinery:
//!
//! * [`program`] — small litmus programs over symbolic locations, with
//!   address/data/control dependencies, fences and atomics (the event
//!   vocabulary of Table 4);
//! * [`axiom`] — an axiomatic checker in the herding-cats style: it
//!   enumerates candidate executions (reads-from and coherence-order
//!   assignments), filters them through per-model axioms (SC, PC/TSO,
//!   WC/RVWMO-fragment), and returns the set of **allowed outcomes** a
//!   program may produce;
//! * [`batch`] — memoizing front-ends over the axiom checkers for
//!   callers (the fuzzing harness, shrinkers) that query the same
//!   programs repeatedly;
//! * [`source`] — a C11-like source language (relaxed / acquire /
//!   release / seq_cst loads, stores, and fences) with its own
//!   language-level allowed-outcome enumerator;
//! * [`lowering`] — the compiler-mapping pass from source programs to
//!   the hardware litmus primitives, driven by a per-model
//!   [`MappingTable`](lowering::MappingTable) that is data, not code —
//!   so the trisection harness can inject known-wrong mappings;
//! * [`proofs`] — a mechanization of Proof 1 (the store-store rule of PC
//!   under the same-stream design): for every faulting combination of two
//!   program-ordered stores, the effective memory-order of their writes
//!   is shown to preserve program order.
//!
//! The operational machine in `ise-litmus` explores real interleavings of
//! the store buffer + FSB + OS pipeline and checks its observed outcomes
//! against [`axiom::allowed_outcomes`] — reproducing the paper's litmus
//! campaign (§6.3) with exhaustive schedules instead of FPGA sampling.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod axiom;
pub mod batch;
pub mod lowering;
pub mod program;
pub mod proofs;
pub mod source;

pub use axiom::allowed_outcomes;
pub use batch::{BatchChecker, SrcBatchChecker};
pub use lowering::{
    buggy_table, correct_table, lower, render_mapping_table, MappingBug, MappingTable,
};
pub use program::{LitmusProgram, Loc, Outcome, Stmt, StmtOp};
pub use source::{allowed_src_outcomes, MemOrder, SrcOp, SrcProgram, SrcStmt};
