//! A C11-like source language over the litmus `Loc` space.
//!
//! The trisection checker (TriCheck-style: software model × compiler
//! mapping × hardware model) needs a *language-level* program
//! representation whose semantics are defined independently of any
//! hardware model. This module provides it:
//!
//! * [`SrcProgram`] — multi-threaded programs of atomic loads, stores,
//!   and fences, each annotated with a C11-like [`MemOrder`]
//!   (`relaxed` / `acquire` / `release` / `seq_cst`), over the same
//!   [`Loc`]/[`Reg`] vocabulary as [`LitmusProgram`](crate::program);
//! * [`allowed_src_outcomes`] — an axiomatic allowed-outcome enumerator
//!   at the language level, mirroring the candidate-execution machinery
//!   of [`axiom`](crate::axiom): every reads-from assignment × every
//!   per-location modification order, filtered through the language
//!   axioms.
//!
//! The axioms are a deliberately *weak* C11 fragment (RC11 minus
//! release sequences and minus the no-thin-air rule):
//!
//! * **coherence** — with `hb = (sb ∪ sw)⁺` and
//!   `eco = (rf ∪ mo ∪ fr)⁺`, require `hb` acyclic and `hb ; eco`
//!   irreflexive. `sw` (synchronizes-with) connects a release-or-stronger
//!   store (or a release fence sequenced before the store) to an
//!   acquire-or-stronger load reading from it (or an acquire fence
//!   sequenced after the load).
//! * **seq_cst** — a partial `psc` order over `seq_cst` events must be
//!   acyclic: direct `hb`/`rf`/`mo`/`fr` between two `seq_cst` events,
//!   plus the fence forms `[F_sc] ; sb ; eco ; sb ; [F_sc]`,
//!   `[F_sc] ; sb ; eco ; [E_sc]` and `[E_sc] ; eco ; sb ; [F_sc]`.
//!
//! Weak is the *sound* direction for trisection: every outcome a
//! correctly-lowered program can exhibit on the hardware models must be
//! language-allowed, so the language model must never forbid more than
//! the mapping + hardware enforce. The seeded-buggy-mapping self-checks
//! (see `ise-fuzz`) pin the other direction: the model is still strong
//! enough to catch a release store lowered without its fence or an
//! acquire load lowered as relaxed.

use crate::program::{Loc, Outcome};
use ise_types::instr::Reg;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A C11-like memory-order annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOrder {
    /// `memory_order_relaxed`: atomicity only, no ordering.
    Relaxed,
    /// `memory_order_acquire` (loads and fences).
    Acquire,
    /// `memory_order_release` (stores and fences).
    Release,
    /// `memory_order_seq_cst`: globally ordered.
    SeqCst,
}

impl MemOrder {
    /// Every order, in [`MemOrder`] declaration order.
    pub const ALL: [MemOrder; 4] = [
        MemOrder::Relaxed,
        MemOrder::Acquire,
        MemOrder::Release,
        MemOrder::SeqCst,
    ];

    /// The stable text-dialect token (`rlx`, `acq`, `rel`, `sc`).
    pub fn token(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "rlx",
            MemOrder::Acquire => "acq",
            MemOrder::Release => "rel",
            MemOrder::SeqCst => "sc",
        }
    }

    /// Whether a store with this order carries release semantics.
    pub fn is_release(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::SeqCst)
    }

    /// Whether a load with this order carries acquire semantics.
    pub fn is_acquire(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::SeqCst)
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One source statement's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcOp {
    /// An atomic store (valid orders: relaxed, release, seq_cst).
    Store {
        /// Target location.
        loc: Loc,
        /// Stored value.
        value: u64,
        /// Memory order.
        order: MemOrder,
    },
    /// An atomic load (valid orders: relaxed, acquire, seq_cst).
    Load {
        /// Source location.
        loc: Loc,
        /// Destination register.
        dst: Reg,
        /// Memory order.
        order: MemOrder,
    },
    /// A fence (valid orders: acquire, release, seq_cst).
    Fence {
        /// Memory order.
        order: MemOrder,
    },
}

/// One source statement: an operation plus an optional syntactic
/// dependency on an earlier load's destination register. Dependencies
/// don't change the language semantics (`sb ⊆ hb` already), but they
/// survive lowering and constrain the hardware models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcStmt {
    /// The operation.
    pub op: SrcOp,
    /// If `Some(r)`, the lowered access is dependency-ordered after the
    /// load producing `r`.
    pub dep: Option<Reg>,
}

impl SrcStmt {
    /// An atomic store.
    pub fn store(loc: Loc, value: u64, order: MemOrder) -> Self {
        SrcStmt {
            op: SrcOp::Store { loc, value, order },
            dep: None,
        }
    }

    /// An atomic load.
    pub fn load(loc: Loc, dst: Reg, order: MemOrder) -> Self {
        SrcStmt {
            op: SrcOp::Load { loc, dst, order },
            dep: None,
        }
    }

    /// A fence.
    pub fn fence(order: MemOrder) -> Self {
        SrcStmt {
            op: SrcOp::Fence { order },
            dep: None,
        }
    }

    /// Marks this statement dependent on register `r`.
    pub fn depending_on(mut self, r: Reg) -> Self {
        self.dep = Some(r);
        self
    }

    /// The register this statement produces, if any.
    pub fn produced(&self) -> Option<Reg> {
        match self.op {
            SrcOp::Load { dst, .. } => Some(dst),
            _ => None,
        }
    }
}

impl fmt::Display for SrcStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            SrcOp::Store { loc, value, order } => write!(f, "W.{order} {loc}={value}")?,
            SrcOp::Load { loc, dst, order } => write!(f, "R.{order} {dst}<-{loc}")?,
            SrcOp::Fence { order } => write!(f, "F.{order}")?,
        }
        if let Some(r) = self.dep {
            write!(f, " [dep {r}]")?;
        }
        Ok(())
    }
}

/// A multi-threaded source program. Memory is zero-initialized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SrcProgram {
    /// One statement list per thread.
    pub threads: Vec<Vec<SrcStmt>>,
}

impl SrcProgram {
    /// Builds a program from per-thread statement lists.
    ///
    /// # Panics
    ///
    /// Panics if there are no threads, a statement carries an order its
    /// operation cannot (acquire store, release load, relaxed fence), a
    /// fence carries a dependency annotation, or a dependency references
    /// a register not produced by an earlier load on the same thread.
    pub fn new(threads: Vec<Vec<SrcStmt>>) -> Self {
        assert!(!threads.is_empty(), "program needs at least one thread");
        for (t, stmts) in threads.iter().enumerate() {
            let mut produced: Vec<Reg> = Vec::new();
            for (i, s) in stmts.iter().enumerate() {
                match s.op {
                    SrcOp::Store { order, .. } => assert!(
                        !matches!(order, MemOrder::Acquire),
                        "thread {t} stmt {i}: a store cannot be acquire"
                    ),
                    SrcOp::Load { order, .. } => assert!(
                        !matches!(order, MemOrder::Release),
                        "thread {t} stmt {i}: a load cannot be release"
                    ),
                    SrcOp::Fence { order } => {
                        assert!(
                            !matches!(order, MemOrder::Relaxed),
                            "thread {t} stmt {i}: a relaxed fence is a no-op"
                        );
                        assert!(
                            s.dep.is_none(),
                            "thread {t} stmt {i}: a fence cannot carry a dependency"
                        );
                    }
                }
                if let Some(r) = s.dep {
                    assert!(
                        produced.contains(&r),
                        "thread {t} stmt {i}: dependency on {r} not produced earlier"
                    );
                }
                if let Some(dst) = s.produced() {
                    produced.push(dst);
                }
            }
        }
        SrcProgram { threads }
    }

    /// All locations the program touches, ascending.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|s| match s.op {
                SrcOp::Store { loc, .. } | SrcOp::Load { loc, .. } => Some(loc),
                SrcOp::Fence { .. } => None,
            })
            .collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }

    /// Total statements across threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Language-level candidate-execution enumeration.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SrcEv {
    id: usize,
    thread: usize,
    idx: usize,
    op: SrcOp,
}

impl SrcEv {
    fn loc(&self) -> Option<Loc> {
        match self.op {
            SrcOp::Store { loc, .. } | SrcOp::Load { loc, .. } => Some(loc),
            SrcOp::Fence { .. } => None,
        }
    }
    fn is_read(&self) -> bool {
        matches!(self.op, SrcOp::Load { .. })
    }
    fn is_write(&self) -> bool {
        matches!(self.op, SrcOp::Store { .. })
    }
    fn is_fence(&self) -> bool {
        matches!(self.op, SrcOp::Fence { .. })
    }
    fn order(&self) -> MemOrder {
        match self.op {
            SrcOp::Store { order, .. } | SrcOp::Load { order, .. } | SrcOp::Fence { order } => {
                order
            }
        }
    }
    fn is_sc(&self) -> bool {
        self.order() == MemOrder::SeqCst
    }
}

fn src_events(prog: &SrcProgram) -> Vec<SrcEv> {
    let mut evs = Vec::new();
    for (t, stmts) in prog.threads.iter().enumerate() {
        for (i, s) in stmts.iter().enumerate() {
            evs.push(SrcEv {
                id: evs.len(),
                thread: t,
                idx: i,
                op: s.op,
            });
        }
    }
    evs
}

/// Boolean reachability matrix: the transitive closure of `edges` over
/// `n` events (Floyd–Warshall; litmus-sized `n` keeps this trivial).
fn closure(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in edges {
        reach[a][b] = true;
    }
    for k in 0..n {
        let via_k = reach[k].clone();
        for row in &mut reach {
            if row[k] {
                for (cell, &step) in row.iter_mut().zip(&via_k) {
                    *cell |= step;
                }
            }
        }
    }
    reach
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

fn acyclic(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a != b {
            adj[a].push(b);
        } else {
            return false;
        }
    }
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let child = adj[node][*next];
                *next += 1;
                match color[child] {
                    0 => {
                        color[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => return false,
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    true
}

/// `sb`: sequenced-before pairs (all same-thread index-ordered pairs,
/// fences included — the language `hb` contains *all* of `sb`).
fn sb_pairs(evs: &[SrcEv]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for a in evs {
        for b in evs {
            if a.thread == b.thread && a.idx < b.idx {
                out.push((a.id, b.id));
            }
        }
    }
    out
}

/// Synchronizes-with edges induced by one rf edge `(w, r)`: release
/// sources (the store itself if release-or-stronger, plus release
/// fences sequenced before it) to acquire sinks (the load itself if
/// acquire-or-stronger, plus acquire fences sequenced after it).
fn sw_edges(evs: &[SrcEv], rf: &HashMap<usize, Option<usize>>) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (&r, &src) in rf {
        let Some(w) = src else { continue };
        let (we, re) = (&evs[w], &evs[r]);
        let mut sources: Vec<usize> = Vec::new();
        if we.order().is_release() {
            sources.push(w);
        }
        sources.extend(
            evs.iter()
                .filter(|f| {
                    f.is_fence()
                        && matches!(f.order(), MemOrder::Release | MemOrder::SeqCst)
                        && f.thread == we.thread
                        && f.idx < we.idx
                })
                .map(|f| f.id),
        );
        let mut sinks: Vec<usize> = Vec::new();
        if re.order().is_acquire() {
            sinks.push(r);
        }
        sinks.extend(
            evs.iter()
                .filter(|f| {
                    f.is_fence()
                        && matches!(f.order(), MemOrder::Acquire | MemOrder::SeqCst)
                        && f.thread == re.thread
                        && f.idx > re.idx
                })
                .map(|f| f.id),
        );
        for &s in &sources {
            for &d in &sinks {
                if s != d {
                    out.push((s, d));
                }
            }
        }
    }
    out
}

/// Enumerates all outcomes the C11-like language axioms allow for
/// `prog`.
///
/// Mirrors [`allowed_outcomes`](crate::axiom::allowed_outcomes): every
/// reads-from assignment × every per-location modification order is a
/// candidate execution; candidates surviving the coherence and seq_cst
/// axioms contribute their register values to the allowed set.
pub fn allowed_src_outcomes(prog: &SrcProgram) -> BTreeSet<Outcome> {
    let evs = src_events(prog);
    let n = evs.len();
    let reads: Vec<usize> = evs.iter().filter(|e| e.is_read()).map(|e| e.id).collect();
    let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
    for e in &evs {
        if e.is_write() {
            writes_by_loc
                .entry(e.loc().expect("stores have locations"))
                .or_default()
                .push(e.id);
        }
    }
    for loc in prog.locations() {
        writes_by_loc.entry(loc).or_default();
    }

    // rf choices per read: any same-location store, or the initial zero.
    let rf_options: Vec<Vec<Option<usize>>> = reads
        .iter()
        .map(|&r| {
            let loc = evs[r].loc().expect("loads have locations");
            let mut opts: Vec<Option<usize>> = vec![None];
            opts.extend(writes_by_loc[&loc].iter().map(|&w| Some(w)));
            opts
        })
        .collect();

    // mo (coherence/modification order) choices per location.
    let locs: Vec<Loc> = writes_by_loc.keys().copied().collect();
    let mo_options: Vec<Vec<Vec<usize>>> = locs
        .iter()
        .map(|l| permutations(&writes_by_loc[l]))
        .collect();

    let sb = sb_pairs(&evs);
    let sc_events: Vec<usize> = evs.iter().filter(|e| e.is_sc()).map(|e| e.id).collect();
    let sc_fences: Vec<usize> = evs
        .iter()
        .filter(|e| e.is_sc() && e.is_fence())
        .map(|e| e.id)
        .collect();
    let sb_reach = closure(n, &sb);

    let mut outcomes = BTreeSet::new();
    let mut rf_idx = vec![0usize; reads.len()];
    loop {
        let rf: HashMap<usize, Option<usize>> = reads
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, rf_options[i][rf_idx[i]]))
            .collect();
        let sw = sw_edges(&evs, &rf);
        let mut hb_base = sb.clone();
        hb_base.extend(&sw);
        // sw can only create a cycle through sb (it follows rf); a
        // cyclic hb is an inconsistent candidate for every mo choice.
        if acyclic(n, &hb_base) {
            let hb = closure(n, &hb_base);
            let rf_e: Vec<(usize, usize)> = rf
                .iter()
                .filter_map(|(&r, &src)| src.map(|w| (w, r)))
                .collect();

            let mut mo_idx = vec![0usize; locs.len()];
            loop {
                let mut eco_base = rf_e.clone();
                let mut mo_pos: HashMap<usize, usize> = HashMap::new();
                for (i, _) in locs.iter().enumerate() {
                    let order = &mo_options[i][mo_idx[i]];
                    for (p, &w) in order.iter().enumerate() {
                        mo_pos.insert(w, p);
                    }
                    for a in 0..order.len() {
                        for b in a + 1..order.len() {
                            eco_base.push((order[a], order[b]));
                        }
                    }
                }
                // fr: each read is before every store mo-later than its
                // source (all stores at its location, for an init read).
                for (&r, &src) in &rf {
                    let loc = evs[r].loc().expect("loads have locations");
                    let li = locs.iter().position(|&l| l == loc).expect("known loc");
                    let order = &mo_options[li][mo_idx[li]];
                    let start = match src {
                        None => 0,
                        Some(w) => mo_pos[&w] + 1,
                    };
                    for &w in &order[start..] {
                        eco_base.push((r, w));
                    }
                }
                let eco = closure(n, &eco_base);

                // Coherence: hb acyclic (checked above) and hb;eco
                // irreflexive.
                let coherent =
                    (0..n).all(|x| (0..n).all(|y| !(hb[x][y] && eco[y][x])) && !hb[x][x]);

                if coherent && psc_acyclic(&evs, &sc_events, &sc_fences, &sb_reach, &hb, &eco) {
                    let mut o = Outcome::new();
                    for &r in &reads {
                        let v = match rf[&r] {
                            None => 0,
                            Some(w) => match evs[w].op {
                                SrcOp::Store { value, .. } => value,
                                _ => unreachable!("rf sources are stores"),
                            },
                        };
                        let SrcOp::Load { dst, .. } = evs[r].op else {
                            unreachable!("reads are loads")
                        };
                        o.insert((evs[r].thread, dst), v);
                    }
                    outcomes.insert(o);
                }

                // Advance mo indices.
                let mut k = 0;
                loop {
                    if k == locs.len() {
                        break;
                    }
                    mo_idx[k] += 1;
                    if mo_idx[k] < mo_options[k].len() {
                        break;
                    }
                    mo_idx[k] = 0;
                    k += 1;
                }
                if k == locs.len() {
                    break;
                }
            }
        }

        // Advance rf indices.
        let mut k = 0;
        loop {
            if k == reads.len() {
                break;
            }
            rf_idx[k] += 1;
            if rf_idx[k] < rf_options[k].len() {
                break;
            }
            rf_idx[k] = 0;
            k += 1;
        }
        if k == reads.len() {
            break;
        }
    }
    outcomes
}

/// The seq_cst axiom: the partial `psc` order over seq_cst events must
/// be acyclic.
fn psc_acyclic(
    evs: &[SrcEv],
    sc_events: &[usize],
    sc_fences: &[usize],
    sb: &[Vec<bool>],
    hb: &[Vec<bool>],
    eco: &[Vec<bool>],
) -> bool {
    if sc_events.len() < 2 {
        return true;
    }
    let n = evs.len();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Direct hb / eco between two sc events.
    for &a in sc_events {
        for &b in sc_events {
            if a != b && (hb[a][b] || eco[a][b]) {
                edges.push((a, b));
            }
        }
    }
    // Fence forms. `[F_sc]; sb; eco; sb; [F_sc]` and the one-sided
    // variants against sc accesses.
    for &fa in sc_fences {
        for &fb in sc_fences {
            if fa == fb {
                continue;
            }
            let hit = (0..n).any(|x| sb[fa][x] && (0..n).any(|y| eco[x][y] && sb[y][fb]));
            if hit {
                edges.push((fa, fb));
            }
        }
    }
    for &fa in sc_fences {
        for &b in sc_events {
            if fa != b && (0..n).any(|x| sb[fa][x] && eco[x][b]) {
                edges.push((fa, b));
            }
        }
    }
    for &a in sc_events {
        for &fb in sc_fences {
            if a != fb && (0..n).any(|y| eco[a][y] && sb[y][fb]) {
                edges.push((a, fb));
            }
        }
    }
    acyclic(n, &edges)
}

/// Whether `outcome` is allowed for `prog` by the language axioms.
pub fn is_src_outcome_allowed(prog: &SrcProgram, outcome: &Outcome) -> bool {
    allowed_src_outcomes(prog).contains(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Loc = Loc(0);
    const B: Loc = Loc(1);
    const R0: Reg = Reg(0);
    const R1: Reg = Reg(1);

    use MemOrder::{Acquire, Relaxed, Release, SeqCst};

    fn outcome(pairs: &[(usize, Reg, u64)]) -> Outcome {
        pairs.iter().map(|&(t, r, v)| ((t, r), v)).collect()
    }

    fn mp(store_order: MemOrder, load_order: MemOrder) -> SrcProgram {
        SrcProgram::new(vec![
            vec![
                SrcStmt::store(B, 1, Relaxed),
                SrcStmt::store(A, 1, store_order),
            ],
            vec![
                SrcStmt::load(A, R0, load_order),
                SrcStmt::load(B, R1, Relaxed),
            ],
        ])
    }

    #[test]
    fn relaxed_mp_allows_the_stale_read() {
        let allowed = allowed_src_outcomes(&mp(Relaxed, Relaxed));
        assert!(allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 1)])));
    }

    #[test]
    fn release_acquire_mp_forbids_the_stale_read() {
        let allowed = allowed_src_outcomes(&mp(Release, Acquire));
        assert!(!allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(1, R0, 0), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 1)])));
    }

    #[test]
    fn one_sided_synchronization_is_not_enough() {
        // Release store + relaxed load (or relaxed store + acquire load):
        // no sw edge, so the stale read stays allowed.
        for (s, l) in [(Release, Relaxed), (Relaxed, Acquire)] {
            let allowed = allowed_src_outcomes(&mp(s, l));
            assert!(
                allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])),
                "store {s} / load {l}: one-sided sync must not forbid"
            );
        }
    }

    #[test]
    fn fences_synchronize_relaxed_accesses() {
        // Release fence before the store, acquire fence after the load:
        // same guarantee as release/acquire on the accesses.
        let p = SrcProgram::new(vec![
            vec![
                SrcStmt::store(B, 1, Relaxed),
                SrcStmt::fence(Release),
                SrcStmt::store(A, 1, Relaxed),
            ],
            vec![
                SrcStmt::load(A, R0, Relaxed),
                SrcStmt::fence(Acquire),
                SrcStmt::load(B, R1, Relaxed),
            ],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(!allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 1)])));
    }

    #[test]
    fn seq_cst_dekker_forbids_both_zero() {
        let p = SrcProgram::new(vec![
            vec![SrcStmt::store(A, 1, SeqCst), SrcStmt::load(B, R0, SeqCst)],
            vec![SrcStmt::store(B, 1, SeqCst), SrcStmt::load(A, R1, SeqCst)],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(!allowed.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(0, R0, 1), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(0, R0, 1), (1, R1, 1)])));
    }

    #[test]
    fn release_acquire_dekker_allows_both_zero() {
        // Store buffering is visible through release/acquire: only
        // seq_cst forbids it.
        let p = SrcProgram::new(vec![
            vec![SrcStmt::store(A, 1, Release), SrcStmt::load(B, R0, Acquire)],
            vec![SrcStmt::store(B, 1, Release), SrcStmt::load(A, R1, Acquire)],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(allowed.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
    }

    #[test]
    fn seq_cst_fences_forbid_dekker_with_relaxed_accesses() {
        let p = SrcProgram::new(vec![
            vec![
                SrcStmt::store(A, 1, Relaxed),
                SrcStmt::fence(SeqCst),
                SrcStmt::load(B, R0, Relaxed),
            ],
            vec![
                SrcStmt::store(B, 1, Relaxed),
                SrcStmt::fence(SeqCst),
                SrcStmt::load(A, R1, Relaxed),
            ],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(!allowed.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
    }

    #[test]
    fn coherence_holds_for_relaxed_same_location() {
        // CoRR: two relaxed reads of one location never observe
        // anti-coherence order.
        let p = SrcProgram::new(vec![
            vec![SrcStmt::store(A, 1, Relaxed)],
            vec![SrcStmt::load(A, R0, Relaxed), SrcStmt::load(A, R1, Relaxed)],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(!allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])));
        assert!(allowed.contains(&outcome(&[(1, R0, 0), (1, R1, 1)])));
    }

    #[test]
    fn a_thread_reads_its_own_store() {
        let p = SrcProgram::new(vec![vec![
            SrcStmt::store(A, 1, Relaxed),
            SrcStmt::load(A, R0, Relaxed),
        ]]);
        let allowed = allowed_src_outcomes(&p);
        assert!(allowed.contains(&outcome(&[(0, R0, 1)])));
        assert!(!allowed.contains(&outcome(&[(0, R0, 0)])));
    }

    #[test]
    fn load_buffering_is_allowed_without_the_thin_air_rule() {
        // LB with relaxed (or even acquire) loads: both reads observing
        // the other thread's later store is allowed — the language model
        // deliberately omits the no-thin-air axiom because the hardware
        // mappings of relaxed accesses do not forbid it.
        let p = SrcProgram::new(vec![
            vec![SrcStmt::load(A, R0, Relaxed), SrcStmt::store(B, 1, Relaxed)],
            vec![SrcStmt::load(B, R1, Relaxed), SrcStmt::store(A, 1, Relaxed)],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(allowed.contains(&outcome(&[(0, R0, 1), (1, R1, 1)])));
    }

    #[test]
    fn lb_with_release_acquire_pairs_is_forbidden() {
        // T0: Racq A; Wrel B  ∥  T1: Racq B; Wrel A — both-1 would put
        // each rf source hb-after its own read: a coherence violation.
        let p = SrcProgram::new(vec![
            vec![SrcStmt::load(A, R0, Acquire), SrcStmt::store(B, 1, Release)],
            vec![SrcStmt::load(B, R1, Acquire), SrcStmt::store(A, 1, Release)],
        ]);
        let allowed = allowed_src_outcomes(&p);
        assert!(!allowed.contains(&outcome(&[(0, R0, 1), (1, R1, 1)])));
        assert!(allowed.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
    }

    #[test]
    fn validation_rejects_bad_orders() {
        use std::panic::catch_unwind;
        assert!(
            catch_unwind(|| SrcProgram::new(vec![vec![SrcStmt::store(A, 1, Acquire)]])).is_err()
        );
        assert!(
            catch_unwind(|| SrcProgram::new(vec![vec![SrcStmt::load(A, R0, Release)]])).is_err()
        );
        assert!(catch_unwind(|| SrcProgram::new(vec![vec![SrcStmt::fence(Relaxed)]])).is_err());
        assert!(catch_unwind(|| SrcProgram::new(vec![vec![
            SrcStmt::store(A, 1, Relaxed).depending_on(R0)
        ]]))
        .is_err());
    }

    #[test]
    fn locations_and_len() {
        let p = mp(Release, Acquire);
        assert_eq!(p.locations(), vec![A, B]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn display_reads_like_annotated_litmus() {
        assert_eq!(SrcStmt::store(A, 1, Release).to_string(), "W.rel A=1");
        assert_eq!(SrcStmt::load(B, R0, Acquire).to_string(), "R.acq r0<-B");
        assert_eq!(SrcStmt::fence(SeqCst).to_string(), "F.sc");
        assert_eq!(
            SrcStmt::store(A, 1, Relaxed).depending_on(R0).to_string(),
            "W.rlx A=1 [dep r0]"
        );
    }
}
