//! Axiomatic allowed-outcome enumeration (herding-cats style).
//!
//! For a [`LitmusProgram`] we enumerate *candidate executions* — every
//! assignment of a reads-from source to each read and of a coherence
//! (total write) order to each location — and keep the candidates that
//! satisfy the selected model's axioms:
//!
//! * **uniproc** (all models): `po_loc ∪ rf ∪ co ∪ fr` is acyclic —
//!   SC-per-location, the "Coherence order" discipline of Table 6;
//! * **SC**: `po ∪ rf ∪ co ∪ fr` acyclic;
//! * **PC/TSO**: `ppo ∪ rfe ∪ co ∪ fr` acyclic, where ppo drops
//!   write→read pairs (the store buffer's relaxation) and fences/atomics
//!   restore order;
//! * **WC** (RVWMO fragment): ppo keeps only same-location order (minus
//!   forwardable write→read), fence-imposed order, syntactic
//!   dependencies, and atomics.
//!
//! The surviving candidates' register values form the **allowed outcome
//! set** that the operational machine's observations must stay inside.

use crate::program::{LitmusProgram, Loc, Outcome, StmtOp};
use ise_types::instr::{FenceKind, Reg};
use ise_types::model::ConsistencyModel;
use std::collections::{BTreeMap, BTreeSet, HashMap};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Write {
        loc: Loc,
        value: u64,
    },
    Read {
        loc: Loc,
        dst: Reg,
    },
    Fence(FenceKind),
    /// Atomic fetch-add: both a read and a write.
    Amo {
        loc: Loc,
        add: u64,
        dst: Reg,
    },
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    id: usize,
    thread: usize,
    idx: usize,
    kind: EvKind,
    dep: Option<Reg>,
}

impl Ev {
    fn loc(&self) -> Option<Loc> {
        match self.kind {
            EvKind::Write { loc, .. } | EvKind::Read { loc, .. } | EvKind::Amo { loc, .. } => {
                Some(loc)
            }
            EvKind::Fence(_) => None,
        }
    }
    fn is_read(&self) -> bool {
        matches!(self.kind, EvKind::Read { .. } | EvKind::Amo { .. })
    }
    fn is_write(&self) -> bool {
        matches!(self.kind, EvKind::Write { .. } | EvKind::Amo { .. })
    }
    fn is_plain_read(&self) -> bool {
        matches!(self.kind, EvKind::Read { .. })
    }
    fn is_mem(&self) -> bool {
        !matches!(self.kind, EvKind::Fence(_))
    }
    fn dst(&self) -> Option<Reg> {
        match self.kind {
            EvKind::Read { dst, .. } | EvKind::Amo { dst, .. } => Some(dst),
            _ => None,
        }
    }
}

fn events_of(prog: &LitmusProgram) -> Vec<Ev> {
    let mut evs = Vec::new();
    for (t, stmts) in prog.threads.iter().enumerate() {
        for (i, s) in stmts.iter().enumerate() {
            let kind = match s.op {
                StmtOp::Write { loc, value } => EvKind::Write { loc, value },
                StmtOp::Read { loc, dst } => EvKind::Read { loc, dst },
                StmtOp::Fence(k) => EvKind::Fence(k),
                StmtOp::Amo { loc, add, dst } => EvKind::Amo { loc, add, dst },
            };
            evs.push(Ev {
                id: evs.len(),
                thread: t,
                idx: i,
                kind,
                dep: s.dep,
            });
        }
    }
    evs
}

/// One candidate execution: rf source per read (None = initial zero) and
/// co position list per location.
struct Candidate<'a> {
    evs: &'a [Ev],
    /// For each read event id: source write event id, or None for init.
    rf: HashMap<usize, Option<usize>>,
    /// Per location: write event ids in coherence order.
    co: HashMap<Loc, Vec<usize>>,
    /// Resolved value of each write event (Amo values depend on rf).
    wval: HashMap<usize, u64>,
    /// Resolved value of each read event.
    rval: HashMap<usize, u64>,
}

impl<'a> Candidate<'a> {
    /// Resolves Amo read/write values through the rf graph. Returns false
    /// on an unresolvable cycle.
    fn resolve_values(&mut self) -> bool {
        for ev in self.evs {
            if let EvKind::Write { value, .. } = ev.kind {
                self.wval.insert(ev.id, value);
            }
        }
        // Iterate until fixpoint (chains of Amos resolve one per pass).
        let reads: Vec<usize> = self
            .evs
            .iter()
            .filter(|e| e.is_read())
            .map(|e| e.id)
            .collect();
        for _ in 0..=reads.len() {
            let mut progress = false;
            for &r in &reads {
                if self.rval.contains_key(&r) {
                    continue;
                }
                let v = match self.rf[&r] {
                    None => Some(0),
                    Some(src) => self.wval.get(&src).copied(),
                };
                if let Some(v) = v {
                    self.rval.insert(r, v);
                    if let EvKind::Amo { add, .. } = self.evs[r].kind {
                        self.wval.insert(r, v.wrapping_add(add));
                    }
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        reads.iter().all(|r| self.rval.contains_key(r))
    }

    /// The atomicity axiom: an Amo's write must immediately follow its
    /// read source in co (no intervening write to the same location).
    fn atomicity_ok(&self) -> bool {
        for ev in self.evs {
            if let EvKind::Amo { loc, .. } = ev.kind {
                let order = &self.co[&loc];
                let my_pos = order.iter().position(|&w| w == ev.id).expect("amo in co");
                match self.rf[&ev.id] {
                    None => {
                        if my_pos != 0 {
                            return false;
                        }
                    }
                    Some(src) => {
                        let Some(src_pos) = order.iter().position(|&w| w == src) else {
                            return false; // source at another location: ill-formed
                        };
                        if my_pos != src_pos + 1 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn co_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for order in self.co.values() {
            for i in 0..order.len() {
                for j in i + 1..order.len() {
                    out.push((order[i], order[j]));
                }
            }
        }
        out
    }

    fn rf_edges(&self) -> Vec<(usize, usize)> {
        self.rf
            .iter()
            .filter_map(|(&r, &src)| src.map(|s| (s, r)))
            .collect()
    }

    fn fr_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (&r, &src) in &self.rf {
            let loc = self.evs[r].loc().expect("reads have locations");
            let order = &self.co[&loc];
            let start = match src {
                None => 0,
                Some(s) => order
                    .iter()
                    .position(|&w| w == s)
                    .map(|p| p + 1)
                    .unwrap_or(usize::MAX),
            };
            if start == usize::MAX {
                continue;
            }
            for &w in &order[start..] {
                if w != r {
                    out.push((r, w));
                }
            }
        }
        out
    }
}

fn acyclic(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a != b {
            adj[a].push(b);
        } else {
            return false;
        }
    }
    // Iterative three-color DFS.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let child = adj[node][*next];
                *next += 1;
                match color[child] {
                    0 => {
                        color[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => return false,
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    true
}

/// Fence-imposed ordering edges for one thread.
fn fence_edges(evs: &[Ev]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for f in evs.iter().filter(|e| matches!(e.kind, EvKind::Fence(_))) {
        let EvKind::Fence(kind) = f.kind else {
            unreachable!()
        };
        let before: Vec<&Ev> = evs
            .iter()
            .filter(|e| e.thread == f.thread && e.idx < f.idx && e.is_mem())
            .collect();
        let after: Vec<&Ev> = evs
            .iter()
            .filter(|e| e.thread == f.thread && e.idx > f.idx && e.is_mem())
            .collect();
        for b in &before {
            for a in &after {
                let ordered = match kind {
                    FenceKind::Full => true,
                    FenceKind::StoreStore => b.is_write() && a.is_write(),
                    FenceKind::LoadLoad => b.is_read() && a.is_read(),
                };
                if ordered {
                    out.push((b.id, a.id));
                }
            }
        }
    }
    out
}

/// Syntactic dependency edges: each statement with `dep = Some(r)` is
/// ordered after the most recent earlier load producing `r`.
fn dep_edges(evs: &[Ev]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for e in evs {
        let Some(r) = e.dep else { continue };
        let src = evs
            .iter()
            .filter(|s| s.thread == e.thread && s.idx < e.idx && s.dst() == Some(r))
            .max_by_key(|s| s.idx);
        if let Some(s) = src {
            out.push((s.id, e.id));
        }
    }
    out
}

/// Program-order pairs between memory events of the same thread.
fn po_pairs(evs: &[Ev]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for a in evs {
        for b in evs {
            if a.thread == b.thread && a.idx < b.idx && a.is_mem() && b.is_mem() {
                out.push((a.id, b.id));
            }
        }
    }
    out
}

fn ppo(evs: &[Ev], model: ConsistencyModel) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for &(ai, bi) in &po_pairs(evs) {
        let (a, b) = (&evs[ai], &evs[bi]);
        let keep = match model {
            ConsistencyModel::Sc => true,
            ConsistencyModel::Pc => {
                // TSO relaxes write -> (plain) read; atomics are fully
                // ordered.
                !(a.is_write() && !a.is_read() && b.is_plain_read())
            }
            ConsistencyModel::Wc => {
                let same_loc = a.loc().is_some() && a.loc() == b.loc();
                let amo_order =
                    matches!(a.kind, EvKind::Amo { .. }) || matches!(b.kind, EvKind::Amo { .. });
                // Same-location order holds except forwardable W->R.
                let loc_order = same_loc && !(a.is_write() && !a.is_read() && b.is_plain_read());
                loc_order || amo_order
            }
        };
        if keep {
            edges.push((ai, bi));
        }
    }
    edges.extend(fence_edges(evs));
    edges.extend(dep_edges(evs));
    edges
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// Enumerates all outcomes `model` allows for `prog`.
///
/// Each outcome maps `(thread, register)` to the value the load left in
/// the register. Programs of litmus size (≤ ~10 events, ≤ 3 writes per
/// location) enumerate in microseconds; the cost is exponential in writes
/// per location.
pub fn allowed_outcomes(prog: &LitmusProgram, model: ConsistencyModel) -> BTreeSet<Outcome> {
    let evs = events_of(prog);
    let reads: Vec<usize> = evs.iter().filter(|e| e.is_read()).map(|e| e.id).collect();
    let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
    for e in &evs {
        if e.is_write() {
            writes_by_loc
                .entry(e.loc().expect("writes have locations"))
                .or_default()
                .push(e.id);
        }
    }
    for loc in prog.locations() {
        writes_by_loc.entry(loc).or_default();
    }

    // rf choices per read: any same-location write, or init.
    let rf_options: Vec<Vec<Option<usize>>> = reads
        .iter()
        .map(|&r| {
            let loc = evs[r].loc().expect("reads have locations");
            let mut opts: Vec<Option<usize>> = vec![None];
            for &w in writes_by_loc.get(&loc).map(|v| v.as_slice()).unwrap_or(&[]) {
                if w != r {
                    opts.push(Some(w));
                }
            }
            opts
        })
        .collect();

    // co choices per location.
    let locs: Vec<Loc> = writes_by_loc.keys().copied().collect();
    let co_options: Vec<Vec<Vec<usize>>> = locs
        .iter()
        .map(|l| permutations(&writes_by_loc[l]))
        .collect();

    let ppo_edges = ppo(&evs, model);
    let po_loc: Vec<(usize, usize)> = po_pairs(&evs)
        .into_iter()
        .filter(|&(a, b)| evs[a].loc().is_some() && evs[a].loc() == evs[b].loc())
        .collect();

    let mut outcomes = BTreeSet::new();
    let mut rf_idx = vec![0usize; reads.len()];
    loop {
        // Current rf assignment.
        let rf: HashMap<usize, Option<usize>> = reads
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, rf_options[i][rf_idx[i]]))
            .collect();

        let mut co_idx = vec![0usize; locs.len()];
        loop {
            let co: HashMap<Loc, Vec<usize>> = locs
                .iter()
                .enumerate()
                .map(|(i, &l)| (l, co_options[i][co_idx[i]].clone()))
                .collect();
            let mut cand = Candidate {
                evs: &evs,
                rf: rf.clone(),
                co,
                wval: HashMap::new(),
                rval: HashMap::new(),
            };
            if cand.resolve_values() && cand.atomicity_ok() {
                let rf_e = cand.rf_edges();
                let co_e = cand.co_edges();
                let fr_e = cand.fr_edges();
                // uniproc: SC per location.
                let mut uni = po_loc.clone();
                uni.extend(&rf_e);
                uni.extend(&co_e);
                uni.extend(&fr_e);
                if acyclic(evs.len(), &uni) {
                    // model axiom.
                    let mut global = ppo_edges.clone();
                    match model {
                        ConsistencyModel::Sc => global.extend(&rf_e),
                        _ => global.extend(
                            rf_e.iter()
                                .filter(|&&(w, r)| evs[w].thread != evs[r].thread),
                        ),
                    }
                    global.extend(&co_e);
                    global.extend(&fr_e);
                    if acyclic(evs.len(), &global) {
                        let mut o = Outcome::new();
                        for &r in &reads {
                            o.insert(
                                (evs[r].thread, evs[r].dst().expect("reads have dst")),
                                cand.rval[&r],
                            );
                        }
                        outcomes.insert(o);
                    }
                }
            }

            // Advance co indices.
            let mut k = 0;
            loop {
                if k == locs.len() {
                    break;
                }
                co_idx[k] += 1;
                if co_idx[k] < co_options[k].len() {
                    break;
                }
                co_idx[k] = 0;
                k += 1;
            }
            if k == locs.len() {
                break;
            }
        }

        // Advance rf indices.
        let mut k = 0;
        loop {
            if k == reads.len() {
                break;
            }
            rf_idx[k] += 1;
            if rf_idx[k] < rf_options[k].len() {
                break;
            }
            rf_idx[k] = 0;
            k += 1;
        }
        if k == reads.len() {
            break;
        }
    }
    outcomes
}

/// Whether `outcome` is allowed for `prog` under `model`.
pub fn is_outcome_allowed(
    prog: &LitmusProgram,
    model: ConsistencyModel,
    outcome: &Outcome,
) -> bool {
    allowed_outcomes(prog, model).contains(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Stmt;

    const A: Loc = Loc(0);
    const B: Loc = Loc(1);
    const R0: Reg = Reg(0);
    const R1: Reg = Reg(1);

    fn outcome(pairs: &[(usize, Reg, u64)]) -> Outcome {
        pairs.iter().map(|&(t, r, v)| ((t, r), v)).collect()
    }

    /// Message passing with full fences: Fig. 1 of the paper.
    fn mp_fenced() -> LitmusProgram {
        LitmusProgram::new(vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(A, 1),
            ],
            vec![
                Stmt::read(A, R0),
                Stmt::fence(FenceKind::Full),
                Stmt::read(B, R1),
            ],
        ])
    }

    #[test]
    fn mp_with_fences_forbids_stale_b() {
        for model in ConsistencyModel::ALL {
            let allowed = allowed_outcomes(&mp_fenced(), model);
            // Three results allowed, the fourth (A=1, B=0) forbidden.
            assert!(allowed.contains(&outcome(&[(1, R0, 0), (1, R1, 0)])));
            assert!(allowed.contains(&outcome(&[(1, R0, 0), (1, R1, 1)])));
            assert!(allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 1)])));
            assert!(
                !allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])),
                "{model}: MP violation must be forbidden"
            );
        }
    }

    #[test]
    fn mp_unfenced_allowed_under_wc_only() {
        let p = LitmusProgram::new(vec![
            vec![Stmt::write(B, 1), Stmt::write(A, 1)],
            vec![Stmt::read(A, R0), Stmt::read(B, R1)],
        ]);
        let bad = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(!allowed_outcomes(&p, ConsistencyModel::Sc).contains(&bad));
        assert!(!allowed_outcomes(&p, ConsistencyModel::Pc).contains(&bad));
        // WC relaxes store-store and load-load order: observable.
        assert!(allowed_outcomes(&p, ConsistencyModel::Wc).contains(&bad));
    }

    /// Store buffering (Dekker): the classic TSO relaxation.
    #[test]
    fn sb_relaxation_separates_sc_from_pc() {
        let p = LitmusProgram::new(vec![
            vec![Stmt::write(A, 1), Stmt::read(B, R0)],
            vec![Stmt::write(B, 1), Stmt::read(A, R1)],
        ]);
        let both_zero = outcome(&[(0, R0, 0), (1, R1, 0)]);
        assert!(
            !allowed_outcomes(&p, ConsistencyModel::Sc).contains(&both_zero),
            "SC forbids r0=r1=0"
        );
        assert!(
            allowed_outcomes(&p, ConsistencyModel::Pc).contains(&both_zero),
            "TSO allows r0=r1=0 (store buffering)"
        );
        assert!(allowed_outcomes(&p, ConsistencyModel::Wc).contains(&both_zero));
    }

    #[test]
    fn sb_with_full_fences_restores_sc() {
        let p = LitmusProgram::new(vec![
            vec![
                Stmt::write(A, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::read(B, R0),
            ],
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::read(A, R1),
            ],
        ]);
        let both_zero = outcome(&[(0, R0, 0), (1, R1, 0)]);
        for model in ConsistencyModel::ALL {
            assert!(
                !allowed_outcomes(&p, model).contains(&both_zero),
                "{model}: fenced SB forbids r0=r1=0"
            );
        }
    }

    #[test]
    fn corr_same_location_reads_never_go_backwards() {
        // CoRR: two reads of the same location on one thread must not see
        // values in anti-coherence order.
        let p = LitmusProgram::new(vec![
            vec![Stmt::write(A, 1)],
            vec![Stmt::read(A, R0), Stmt::read(A, R1)],
        ]);
        for model in ConsistencyModel::ALL {
            let allowed = allowed_outcomes(&p, model);
            assert!(
                !allowed.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])),
                "{model}: CoRR violation must be forbidden"
            );
            assert!(allowed.contains(&outcome(&[(1, R0, 0), (1, R1, 1)])));
        }
    }

    #[test]
    fn store_forwarding_allows_own_value_early() {
        // A thread reads its own buffered store before it is globally
        // visible (rfi): allowed everywhere.
        let p = LitmusProgram::new(vec![vec![Stmt::write(A, 1), Stmt::read(A, R0)]]);
        for model in ConsistencyModel::ALL {
            let allowed = allowed_outcomes(&p, model);
            assert!(allowed.contains(&outcome(&[(0, R0, 1)])));
            assert!(
                !allowed.contains(&outcome(&[(0, R0, 0)])),
                "{model}: cannot read 0 past own store of 1"
            );
        }
    }

    #[test]
    fn dependency_orders_wc() {
        // MP with address dependency on the consumer side and SS fence on
        // the producer: WC must forbid the stale read.
        let p = LitmusProgram::new(vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::StoreStore),
                Stmt::write(A, 1),
            ],
            vec![Stmt::read(A, R0), Stmt::read(B, R1).depending_on(R0)],
        ]);
        let bad = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(
            !allowed_outcomes(&p, ConsistencyModel::Wc).contains(&bad),
            "dependency + SS fence forbids MP violation under WC"
        );
        // Without the dependency, WC allows it (load-load reordering).
        let p2 = LitmusProgram::new(vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::StoreStore),
                Stmt::write(A, 1),
            ],
            vec![Stmt::read(A, R0), Stmt::read(B, R1)],
        ]);
        assert!(allowed_outcomes(&p2, ConsistencyModel::Wc).contains(&bad));
    }

    #[test]
    fn amo_is_atomic() {
        // Two increments of A: final read must be able to see 2 and must
        // never lose an update.
        let p = LitmusProgram::new(vec![vec![Stmt::amo(A, 1, R0)], vec![Stmt::amo(A, 1, R1)]]);
        for model in ConsistencyModel::ALL {
            let allowed = allowed_outcomes(&p, model);
            // One of the AMOs must observe the other: (0,1) or (1,0),
            // never (0,0) or (1,1).
            assert!(allowed.contains(&outcome(&[(0, R0, 0), (1, R1, 1)])));
            assert!(allowed.contains(&outcome(&[(0, R0, 1), (1, R1, 0)])));
            assert!(
                !allowed.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])),
                "{model}: lost update must be forbidden"
            );
        }
    }

    #[test]
    fn coherence_ww_total_order() {
        // 2+2W with SS fences: writes to each location must not be
        // observed in contradictory orders.
        let p = LitmusProgram::new(vec![
            vec![
                Stmt::write(A, 1),
                Stmt::fence(FenceKind::StoreStore),
                Stmt::write(B, 1),
            ],
            vec![
                Stmt::write(B, 2),
                Stmt::fence(FenceKind::StoreStore),
                Stmt::write(A, 2),
            ],
        ]);
        // No registers: this test just must not blow up and must produce
        // the single empty outcome.
        for model in ConsistencyModel::ALL {
            let allowed = allowed_outcomes(&p, model);
            assert_eq!(allowed.len(), 1);
        }
    }

    #[test]
    fn pc_keeps_store_store_order_without_fences() {
        // MP without fences under PC: store-store and load-load order are
        // preserved, so the violation stays forbidden.
        let p = LitmusProgram::new(vec![
            vec![Stmt::write(B, 1), Stmt::write(A, 1)],
            vec![Stmt::read(A, R0), Stmt::read(B, R1)],
        ]);
        let bad = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(!allowed_outcomes(&p, ConsistencyModel::Pc).contains(&bad));
    }
}
