//! Property tests for the compiler-mapping pass: every lowering — the
//! correct tables *and* every seeded-buggy variant — must preserve the
//! program's structure. A mapping bug is allowed to drop fences, never
//! to move, drop, or reorder accesses:
//!
//! * each thread's memory-access sequence (kind, location, value or
//!   destination register) survives verbatim once fences are stripped;
//! * dependency annotations ride on the lowered access 1:1;
//! * registers and thread indices are preserved, so source and lowered
//!   outcomes are directly comparable — the invariant the whole
//!   trisection oracle rests on;
//! * the lowered program still validates (no dangling dependencies, no
//!   empty thread lists).

use ise_consistency::program::{Loc, StmtOp};
use ise_consistency::source::{MemOrder, SrcOp, SrcProgram, SrcStmt};
use ise_consistency::{buggy_table, correct_table, lower, MappingBug, MappingTable};
use ise_types::instr::Reg;
use ise_types::model::ConsistencyModel;
use quickprop::Gen;

/// A random well-formed source program (valid orders, deps only on
/// registers produced earlier in the same thread).
fn arb_src_program(g: &mut Gen) -> SrcProgram {
    let n_threads = g.range_usize(1, 4);
    let threads: Vec<Vec<SrcStmt>> = (0..n_threads)
        .map(|_| {
            let n_stmts = g.range_usize(1, 5);
            let mut produced: Vec<Reg> = Vec::new();
            let mut next_reg = 0u8;
            (0..n_stmts)
                .map(|_| {
                    let loc = Loc(g.range_u64(0, 3) as u8);
                    let mut stmt = match g.range_u64(0, 10) {
                        0..=3 => SrcStmt::store(
                            loc,
                            g.range_u64(1, 4),
                            *g.choose(&[MemOrder::Relaxed, MemOrder::Release, MemOrder::SeqCst]),
                        ),
                        4..=7 => {
                            let dst = Reg(next_reg);
                            next_reg += 1;
                            SrcStmt::load(
                                loc,
                                dst,
                                *g.choose(&[
                                    MemOrder::Relaxed,
                                    MemOrder::Acquire,
                                    MemOrder::SeqCst,
                                ]),
                            )
                        }
                        _ => SrcStmt::fence(*g.choose(&[
                            MemOrder::Acquire,
                            MemOrder::Release,
                            MemOrder::SeqCst,
                        ])),
                    };
                    if !produced.is_empty()
                        && !matches!(stmt.op, SrcOp::Fence { .. })
                        && g.range_u64(0, 5) == 0
                    {
                        stmt = stmt.depending_on(*g.choose(&produced));
                    }
                    if let Some(dst) = stmt.produced() {
                        produced.push(dst);
                    }
                    stmt
                })
                .collect()
        })
        .collect();
    SrcProgram::new(threads)
}

/// Every table a campaign can lower through.
fn all_tables() -> Vec<MappingTable> {
    let mut tables = Vec::new();
    for model in ConsistencyModel::ALL {
        tables.push(correct_table(model));
        for bug in MappingBug::ALL {
            tables.push(buggy_table(model, bug));
        }
    }
    tables
}

/// The access skeleton of a source thread: fences stripped, each access
/// as (is_store, loc, value-or-dst, dep).
fn src_skeleton(stmts: &[SrcStmt]) -> Vec<(bool, Loc, u64, Option<Reg>)> {
    stmts
        .iter()
        .filter_map(|s| match s.op {
            SrcOp::Store { loc, value, .. } => Some((true, loc, value, s.dep)),
            SrcOp::Load { loc, dst, .. } => Some((false, loc, u64::from(dst.0), s.dep)),
            SrcOp::Fence { .. } => None,
        })
        .collect()
}

#[test]
fn every_lowering_preserves_access_order_and_dependencies() {
    quickprop::check(256, |g| {
        let prog = arb_src_program(g);
        for table in all_tables() {
            let lowered = lower(&prog, &table);
            assert_eq!(
                lowered.threads.len(),
                prog.threads.len(),
                "{}: thread count changed",
                table.model
            );
            for (src_thread, low_thread) in prog.threads.iter().zip(&lowered.threads) {
                let got: Vec<(bool, Loc, u64, Option<Reg>)> = low_thread
                    .iter()
                    .filter_map(|s| match s.op {
                        StmtOp::Write { loc, value } => Some((true, loc, value, s.dep)),
                        StmtOp::Read { loc, dst } => Some((false, loc, u64::from(dst.0), s.dep)),
                        StmtOp::Fence(_) => None,
                        StmtOp::Amo { .. } => panic!("lowering never emits atomics"),
                    })
                    .collect();
                assert_eq!(
                    got,
                    src_skeleton(src_thread),
                    "{}: access skeleton changed",
                    table.model
                );
            }
        }
    });
}

#[test]
fn every_lowering_keeps_fences_adjacent_to_their_access() {
    // A table entry's fences must sit immediately before/after the
    // access they annotate — no other access may slip between an access
    // and its own fences.
    quickprop::check(128, |g| {
        let prog = arb_src_program(g);
        for table in all_tables() {
            let lowered = lower(&prog, &table);
            for (src_thread, low_thread) in prog.threads.iter().zip(&lowered.threads) {
                // Concatenate what the table says each statement should
                // become — the table is data, so it *is* the spec.
                let mut expect: Vec<String> = Vec::new();
                for s in src_thread {
                    match s.op {
                        SrcOp::Store { loc, value, order } => {
                            let m = &table.stores[&order];
                            expect.extend(m.pre.iter().map(|k| format!("{:?}", StmtOp::Fence(*k))));
                            expect.push(format!("{:?}", StmtOp::Write { loc, value }));
                            expect
                                .extend(m.post.iter().map(|k| format!("{:?}", StmtOp::Fence(*k))));
                        }
                        SrcOp::Load { loc, dst, order } => {
                            let m = &table.loads[&order];
                            expect.extend(m.pre.iter().map(|k| format!("{:?}", StmtOp::Fence(*k))));
                            expect.push(format!("{:?}", StmtOp::Read { loc, dst }));
                            expect
                                .extend(m.post.iter().map(|k| format!("{:?}", StmtOp::Fence(*k))));
                        }
                        SrcOp::Fence { order } => expect.extend(
                            table.fences[&order]
                                .iter()
                                .map(|k| format!("{:?}", StmtOp::Fence(*k))),
                        ),
                    }
                }
                // A thread whose every statement erases lowers to the
                // non-empty-thread placeholder fence.
                if expect.is_empty() {
                    expect.push(format!(
                        "{:?}",
                        StmtOp::Fence(ise_types::instr::FenceKind::Full)
                    ));
                }
                let got: Vec<String> = low_thread.iter().map(|st| format!("{:?}", st.op)).collect();
                assert_eq!(got, expect, "{}: fence placement drifted", table.model);
            }
        }
    });
}

#[test]
fn sc_lowering_is_fence_free_and_wc_seq_cst_is_fully_fenced() {
    quickprop::check(64, |g| {
        let prog = arb_src_program(g);
        let sc = lower(&prog, &correct_table(ConsistencyModel::Sc));
        let mem_ops = prog
            .threads
            .iter()
            .flatten()
            .filter(|s| !matches!(s.op, SrcOp::Fence { .. }))
            .count();
        let sc_stmts: Vec<_> = sc.threads.iter().flatten().collect();
        // SC hardware needs no fences: everything beyond the empty-thread
        // placeholder is a bare access.
        assert_eq!(
            sc_stmts
                .iter()
                .filter(|s| !matches!(s.op, StmtOp::Fence(_)))
                .count(),
            mem_ops
        );
        // Under WC every seq_cst access is fenced on both sides.
        let wc = lower(&prog, &correct_table(ConsistencyModel::Wc));
        for (src_thread, low_thread) in prog.threads.iter().zip(&wc.threads) {
            let mut cursor = 0usize;
            for s in src_thread {
                match s.op {
                    SrcOp::Store { order, .. } | SrcOp::Load { order, .. }
                        if order == MemOrder::SeqCst =>
                    {
                        // Find the access for this statement.
                        while !matches!(
                            low_thread[cursor].op,
                            StmtOp::Write { .. } | StmtOp::Read { .. }
                        ) {
                            cursor += 1;
                        }
                        assert!(
                            matches!(low_thread[cursor - 1].op, StmtOp::Fence(_)),
                            "seq_cst access without leading fence"
                        );
                        assert!(
                            matches!(low_thread[cursor + 1].op, StmtOp::Fence(_)),
                            "seq_cst access without trailing fence"
                        );
                        cursor += 1;
                    }
                    SrcOp::Fence { .. } => {}
                    _ => {
                        while !matches!(
                            low_thread[cursor].op,
                            StmtOp::Write { .. } | StmtOp::Read { .. }
                        ) {
                            cursor += 1;
                        }
                        cursor += 1;
                    }
                }
            }
        }
    });
}
