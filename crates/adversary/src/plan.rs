//! The fault-plan genome the adversarial search mutates.
//!
//! A plan is everything the attacker controls: *which* pool pages fault,
//! *how* they deny (the [`FaultKind`] and its parameters), which
//! exception the denied transactions carry, and how deep the victim's
//! FSB rings are. The mutation operators below are the search's whole
//! move set; each targets a specific recovery-path lever — window
//! alignment to FSB drain boundaries, transient healing horizons that
//! straddle the retry budget, capacities that force early-drain
//! chunking.

use ise_engine::SimRng;
use ise_types::config::OsCostConfig;
use ise_types::{ExceptionKind, FaultKind, FaultSpec};

/// Pages in the victim's faultable pool (see [`crate::target`]).
pub const POOL_PAGES: u8 = 8;

/// FSB ring capacities the search may select. The smallest forces the
/// most early-drain chunks per burst; the largest matches the store
/// buffer, so a burst fits in one episode.
pub const FSB_CAPACITIES: [usize; 4] = [4, 8, 16, 32];

/// Transient healing horizons, spanning "heals at the drain denial"
/// through "outlives the whole retry ladder".
const CLEARS_LADDER: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Intermittent denial probabilities.
const PROB_LADDER: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// The cycle granularity of one recovery episode: exception dispatch
/// plus applying one full FSB ring. Windowed faults snapped to multiples
/// of this boundary open and close in phase with the handler's drain
/// chunks — the alignment objective (2) exploits.
pub fn drain_boundary(os: &OsCostConfig, fsb_capacity: usize) -> u64 {
    os.dispatch_overhead + fsb_capacity as u64 * os.apply_per_store
}

/// One candidate fault plan.
#[derive(Debug, Clone)]
pub struct AdvPlan {
    /// Sorted, deduped, non-empty indices into the victim pool
    /// (`0..POOL_PAGES`).
    pub pages: Vec<u8>,
    /// Temporal behaviour shared by every planned page.
    pub kind: FaultKind,
    /// Exception carried by denied transactions.
    pub exception: ExceptionKind,
    /// FSB ring capacity the victim system is built with.
    pub fsb_capacity: usize,
}

impl AdvPlan {
    /// The per-page spec this plan injects.
    pub fn spec(&self) -> FaultSpec {
        FaultSpec {
            kind: self.kind,
            exception: self.exception,
        }
    }

    /// Canonical identity string: the evaluation-cache key, the ranking
    /// tiebreaker, and the scorecard's `best_plan` rendering.
    pub fn key(&self) -> String {
        let pages: Vec<String> = self.pages.iter().map(u8::to_string).collect();
        format!(
            "fsb{:02}|{}|{}|pages[{}]",
            self.fsb_capacity,
            self.exception,
            self.kind,
            pages.join(",")
        )
    }

    /// A fresh random plan drawn from `rng`.
    pub fn random(rng: &mut SimRng, os: &OsCostConfig) -> Self {
        let k = rng.range(1, 4) as usize;
        let pages: Vec<u8> = rng
            .sample_indices(POOL_PAGES as usize, k)
            .into_iter()
            .map(|i| i as u8)
            .collect();
        let fsb_capacity = FSB_CAPACITIES[rng.index(FSB_CAPACITIES.len())];
        let kind = match rng.range(0, 4) {
            0 => FaultKind::Permanent,
            1 => FaultKind::Transient {
                clears_after: CLEARS_LADDER[rng.index(CLEARS_LADDER.len())],
            },
            2 => FaultKind::Intermittent {
                probability: PROB_LADDER[rng.index(PROB_LADDER.len())],
            },
            _ => {
                let b = drain_boundary(os, fsb_capacity);
                FaultKind::Windowed {
                    from: 0,
                    until: rng.range(1, 5) * b,
                }
            }
        };
        let exception = if rng.chance(0.25) {
            ExceptionKind::MachineCheck
        } else {
            ExceptionKind::BusError
        };
        AdvPlan {
            pages,
            kind,
            exception,
            fsb_capacity,
        }
        .normalized()
    }

    /// One mutation step: applies one of the eight operators, chosen by
    /// `rng`, and returns the (normalized) child.
    pub fn mutate(&self, rng: &mut SimRng, os: &OsCostConfig) -> Self {
        let mut child = self.clone();
        match rng.range(0, 8) {
            // Add a pool page not yet in the plan.
            0 => {
                let free: Vec<u8> = (0..POOL_PAGES)
                    .filter(|p| !child.pages.contains(p))
                    .collect();
                if !free.is_empty() {
                    child.pages.push(free[rng.index(free.len())]);
                }
            }
            // Remove one page (a plan always keeps at least one).
            1 => {
                if child.pages.len() > 1 {
                    let i = rng.index(child.pages.len());
                    child.pages.remove(i);
                }
            }
            // Swap one planned page for an unplanned one.
            2 => {
                let free: Vec<u8> = (0..POOL_PAGES)
                    .filter(|p| !child.pages.contains(p))
                    .collect();
                if !free.is_empty() {
                    let i = rng.index(child.pages.len());
                    child.pages[i] = free[rng.index(free.len())];
                }
            }
            // Cycle the temporal behaviour.
            3 => {
                child.kind = match child.kind {
                    FaultKind::Permanent => FaultKind::Transient { clears_after: 64 },
                    FaultKind::Transient { .. } => FaultKind::Intermittent { probability: 0.5 },
                    FaultKind::Intermittent { .. } => FaultKind::Windowed {
                        from: 0,
                        until: 4 * drain_boundary(os, child.fsb_capacity),
                    },
                    FaultKind::Windowed { .. } => FaultKind::Permanent,
                };
            }
            // Perturb the kind's parameter one ladder step.
            4 => {
                child.kind = match child.kind {
                    FaultKind::Transient { clears_after } => FaultKind::Transient {
                        clears_after: ladder_step(&CLEARS_LADDER, clears_after, rng),
                    },
                    FaultKind::Intermittent { probability } => FaultKind::Intermittent {
                        probability: ladder_step_f(&PROB_LADDER, probability, rng),
                    },
                    FaultKind::Windowed { from, until } => {
                        let b = drain_boundary(os, child.fsb_capacity);
                        let width = until.saturating_sub(from).max(b);
                        let from = if rng.chance(0.5) {
                            from.saturating_add(b)
                        } else {
                            from.saturating_sub(b)
                        };
                        FaultKind::Windowed {
                            from,
                            until: from + width,
                        }
                    }
                    // A permanent fault has no parameter; soften it into
                    // the longest transient instead.
                    FaultKind::Permanent => FaultKind::Transient { clears_after: 128 },
                };
            }
            // Snap the fault window onto FSB drain boundaries.
            5 => {
                let b = drain_boundary(os, child.fsb_capacity);
                let k = rng.range(0, 4);
                let m = rng.range(1, 4);
                child.kind = FaultKind::Windowed {
                    from: k * b,
                    until: (k + m) * b,
                };
            }
            // Flip the embedded exception.
            6 => {
                child.exception = match child.exception {
                    ExceptionKind::MachineCheck => ExceptionKind::BusError,
                    _ => ExceptionKind::MachineCheck,
                };
            }
            // Cycle the FSB ring capacity.
            _ => {
                let i = FSB_CAPACITIES
                    .iter()
                    .position(|&c| c == child.fsb_capacity)
                    .unwrap_or(0);
                child.fsb_capacity = FSB_CAPACITIES[(i + 1) % FSB_CAPACITIES.len()];
            }
        }
        child.normalized()
    }

    /// Restores the plan's canonical-form invariants.
    fn normalized(mut self) -> Self {
        self.pages.sort_unstable();
        self.pages.dedup();
        if self.pages.is_empty() {
            self.pages.push(0);
        }
        if !FSB_CAPACITIES.contains(&self.fsb_capacity) {
            self.fsb_capacity = FSB_CAPACITIES[0];
        }
        self
    }
}

/// Moves `v` one step up or down `ladder` (clamped at the ends).
fn ladder_step(ladder: &[u32], v: u32, rng: &mut SimRng) -> u32 {
    let i = ladder.iter().position(|&x| x >= v).unwrap_or(0);
    let j = if rng.chance(0.5) {
        (i + 1).min(ladder.len() - 1)
    } else {
        i.saturating_sub(1)
    };
    ladder[j]
}

/// [`ladder_step`] over an `f64` ladder.
fn ladder_step_f(ladder: &[f64], v: f64, rng: &mut SimRng) -> f64 {
    let i = ladder.iter().position(|&x| x >= v).unwrap_or(0);
    let j = if rng.chance(0.5) {
        (i + 1).min(ladder.len() - 1)
    } else {
        i.saturating_sub(1)
    };
    ladder[j]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os() -> OsCostConfig {
        OsCostConfig::isca23()
    }

    #[test]
    fn random_plans_are_canonical_and_deterministic() {
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        for _ in 0..200 {
            let p = AdvPlan::random(&mut a, &os());
            let q = AdvPlan::random(&mut b, &os());
            assert_eq!(p.key(), q.key());
            assert!(!p.pages.is_empty());
            assert!(p.pages.windows(2).all(|w| w[0] < w[1]), "{:?}", p.pages);
            assert!(p.pages.iter().all(|&i| i < POOL_PAGES));
            assert!(FSB_CAPACITIES.contains(&p.fsb_capacity));
        }
    }

    #[test]
    fn mutations_preserve_canonical_form_and_cover_every_operator() {
        let mut rng = SimRng::seed_from(11);
        let mut plan = AdvPlan::random(&mut rng, &os());
        let mut keys = std::collections::HashSet::new();
        let mut saw_windowed = false;
        let mut saw_mc = false;
        for _ in 0..500 {
            plan = plan.mutate(&mut rng, &os());
            assert!(!plan.pages.is_empty());
            assert!(plan.pages.windows(2).all(|w| w[0] < w[1]));
            assert!(FSB_CAPACITIES.contains(&plan.fsb_capacity));
            saw_windowed |= matches!(plan.kind, FaultKind::Windowed { .. });
            saw_mc |= plan.exception == ExceptionKind::MachineCheck;
            keys.insert(plan.key());
        }
        assert!(
            keys.len() > 50,
            "mutation walk barely moved: {}",
            keys.len()
        );
        assert!(saw_windowed, "the window operators never fired");
        assert!(saw_mc, "the exception flip never fired");
    }

    #[test]
    fn snapped_windows_land_on_drain_boundaries() {
        let mut rng = SimRng::seed_from(3);
        let mut plan = AdvPlan::random(&mut rng, &os());
        for _ in 0..400 {
            plan = plan.mutate(&mut rng, &os());
            if let FaultKind::Windowed { from, until } = plan.kind {
                let b = drain_boundary(&os(), plan.fsb_capacity);
                if from % b == 0 && until % b == 0 && until > from {
                    return; // found one snapped window
                }
            }
        }
        panic!("no boundary-aligned window in 400 mutations");
    }

    #[test]
    fn key_is_injective_over_the_core_knobs() {
        let base = AdvPlan {
            pages: vec![0, 3],
            kind: FaultKind::Permanent,
            exception: ExceptionKind::BusError,
            fsb_capacity: 8,
        };
        let mut other = base.clone();
        other.fsb_capacity = 16;
        assert_ne!(base.key(), other.key());
        let mut other = base.clone();
        other.kind = FaultKind::Transient { clears_after: 2 };
        assert_ne!(base.key(), other.key());
        let mut other = base.clone();
        other.pages = vec![0, 4];
        assert_ne!(base.key(), other.key());
    }
}
