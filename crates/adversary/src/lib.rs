//! Adversarial fault-plan search against the OS recovery paths
//! (DESIGN.md §13).
//!
//! The chaos campaigns sample fault plans at random; this crate *searches*
//! for the worst one. A seeded hill-climb with random restarts and a
//! per-objective beam ([`search`]) mutates fault plans ([`plan`]) — pages,
//! temporal behaviour, window alignment to FSB drain boundaries, exception
//! codes, ring capacity — against a fixed two-core victim ([`target`]),
//! scoring each candidate on four damage objectives ([`eval`]):
//!
//! 1. corrupt architectural state while tripping no invariant,
//! 2. maximize victim stall via FSB early-drain storms,
//! 3. exhaust the retry budget on the longest backoff path,
//! 4. force kill-path entry with maximal in-flight FSB occupancy.
//!
//! Every evaluation runs the full shared invariant set
//! ([`ise_sim::invariants`]), a corruption win is auto-shrunk through the
//! `ise-fuzz` shrinker into a litmus-dialect regression ([`regress`]), and
//! each campaign emits a deterministic JSON resilience scorecard —
//! byte-identical at any `ISE_WORKERS` count and under either clock. The
//! CI self-check runs the same seeded search against the unhardened and
//! hardened [`ise_types::RecoveryHardening`] configurations and demands
//! the search win against the former and fail against the latter.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod eval;
pub mod plan;
pub mod regress;
pub mod search;
pub mod target;

pub use eval::{evaluate, EvalConfig, EvalOutcome, Objective};
pub use plan::{drain_boundary, AdvPlan, FSB_CAPACITIES, POOL_PAGES};
pub use regress::{corruption_case, corruption_oracle, shrink_corruption, write_regression};
pub use search::{
    run_search, run_search_with_workers, self_check, AdversaryReport, ObjectiveResult,
    SearchConfig, SelfCheck,
};
pub use target::{pool_page, pool_pages, victim_workload, BURST_STORES};
