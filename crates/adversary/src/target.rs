//! The fixed victim every fault plan is evaluated against.
//!
//! Two cores on the prototype mesh: core 0 bursts back-to-back stores
//! sweeping the eight-page faultable pool (the worst case for FSB
//! occupancy — every store can fault, and consecutive stores hit
//! different pages so nothing coalesces away), while core 1 runs clean
//! bystander traffic on disjoint pages. The bystander makes victim
//! damage visible: a fault plan that stalls the kernel or kills core 0
//! must do so without corrupting or losing core 1's stores, which the
//! invariant set checks after every evaluation.

use crate::plan::POOL_PAGES;
use ise_types::addr::{Addr, PAGE_SIZE};
use ise_types::instr::Reg;
use ise_types::{Instruction, PageId};
use ise_workloads::layout::EINJECT_BASE;
use ise_workloads::Workload;

/// Stores in core 0's burst. Deliberately at most 64: with the smallest
/// FSB capacity (4) that bounds early-drain continuations at 16 chunks,
/// which keeps the hardened/unhardened stall scores separable (see
/// [`crate::eval::STALL_MIN_DISPATCH_CYCLES`]).
pub const BURST_STORES: usize = 48;

/// The `i`-th pool page (one EInject page per pool slot, the same
/// mapping the litmus bridge uses for symbolic locations).
pub fn pool_page(i: u8) -> PageId {
    assert!(i < POOL_PAGES, "pool index {i} out of range");
    Addr::new(EINJECT_BASE + u64::from(i) * PAGE_SIZE).page()
}

/// All pool pages, in index order.
pub fn pool_pages() -> Vec<PageId> {
    (0..POOL_PAGES).map(pool_page).collect()
}

/// Builds the victim workload. `einject_pages` declares the pool;
/// evaluations clear it and inject through a [`ise_core::FaultInjector`]
/// instead (the chaos-campaign idiom), so EInject stays inert.
pub fn victim_workload() -> Workload {
    // Core 0: a store burst striding across the pool — store i hits page
    // i mod POOL_PAGES at a fresh offset, so no two burst stores
    // coalesce and every one is exposed to the plan.
    let stride = POOL_PAGES as usize;
    let burst: Vec<Instruction> = (0..BURST_STORES)
        .map(|i| {
            let page = (i % stride) as u64;
            let offset = (i / stride) as u64 * 8;
            Instruction::store(
                Addr::new(EINJECT_BASE + page * PAGE_SIZE + offset),
                i as u64 + 1,
            )
        })
        .collect();

    // Core 1: clean store/load pairs on pages far outside the pool.
    let clean_base = EINJECT_BASE + 64 * PAGE_SIZE;
    let mut clean = Vec::with_capacity(64);
    for i in 0..32u64 {
        let addr = Addr::new(clean_base + (i % 4) * PAGE_SIZE + (i / 4) * 8);
        clean.push(Instruction::store(addr, i + 1));
        clean.push(Instruction::load(addr, Reg(0)));
    }

    Workload {
        name: "adversary-victim".to_string(),
        traces: vec![burst.into(), clean.into()],
        einject_pages: pool_pages(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::InstrKind;

    #[test]
    fn pool_pages_are_distinct_and_stable() {
        let pages = pool_pages();
        let mut deduped = pages.clone();
        deduped.dedup();
        assert_eq!(pages.len(), POOL_PAGES as usize);
        assert_eq!(pages, deduped);
        assert_eq!(pages, pool_pages());
    }

    #[test]
    fn burst_sweeps_every_pool_page_without_coalescable_pairs() {
        let w = victim_workload();
        assert_eq!(w.traces.len(), 2);
        assert_eq!(w.traces[0].len(), BURST_STORES);
        let mut addrs = std::collections::HashSet::new();
        let mut pages = std::collections::HashSet::new();
        for ins in w.traces[0].iter() {
            let InstrKind::Store { addr, .. } = ins.kind else {
                panic!("the burst is stores only");
            };
            assert!(addrs.insert(addr.raw()), "duplicate burst address");
            pages.insert(addr.page());
        }
        assert_eq!(
            pages.len(),
            POOL_PAGES as usize,
            "burst must sweep the pool"
        );
        assert_eq!(w.einject_pages, pool_pages());
    }

    #[test]
    fn bystander_traffic_is_disjoint_from_the_pool() {
        let w = victim_workload();
        let pool: std::collections::HashSet<_> = pool_pages().into_iter().collect();
        for ins in w.traces[1].iter() {
            let addr = match ins.kind {
                InstrKind::Store { addr, .. } | InstrKind::Load { addr, .. } => addr,
                _ => continue,
            };
            assert!(
                !pool.contains(&addr.page()),
                "bystander touches pool page {:?}",
                addr.page()
            );
        }
    }
}
