//! From a corruption win to a checked-in regression.
//!
//! An objective-(1) win means the unhardened kernel silently dropped a
//! store while reporting it applied. That damage shape is exactly what
//! the fuzz harness's `SimInvariant` oracle detects, so a winning plan
//! is recast as a [`FuzzCase`] — one store per attacked pool page, every
//! page faulting, the stubborn transient overlay, the unhardened cost
//! model — and pushed through the existing `ise-fuzz` shrinker. What
//! survives is a minimal litmus-dialect reproducer ready for
//! `litmus/regressions/`.

use crate::plan::AdvPlan;
use ise_consistency::program::{LitmusProgram, Loc, Stmt};
use ise_consistency::BatchChecker;
use ise_fuzz::{
    check_case, shrink, to_parsed, CampaignFinding, FindingKind, FuzzCase, OracleConfig,
};
use ise_litmus::render_litmus;
use ise_types::config::OsCostConfig;
use ise_types::model::{ConsistencyModel, DrainPolicy};
use ise_types::RecoveryHardening;
use std::path::{Path, PathBuf};

/// A transient horizon that outlives the whole retry ladder, forcing
/// every faulting store onto the exhaustion path.
const STUBBORN_CLEARS_AFTER: u32 = 100;

/// The fuzz case a corruption-winning `plan` lowers to: one writer
/// thread storing to one symbolic location per attacked pool page, all
/// of them faulting under the transient overlay. Pool page indices and
/// litmus locations share the same EInject-page mapping, so the
/// reproducer faults the very pages the plan did.
pub fn corruption_case(plan: &AdvPlan, seed: u64) -> FuzzCase {
    let n = plan.pages.len().clamp(1, Loc::LIMIT as usize);
    let thread: Vec<Stmt> = (0..n).map(|i| Stmt::write(Loc(i as u8), 1)).collect();
    let faulting: Vec<Loc> = (0..n).map(|i| Loc(i as u8)).collect();
    FuzzCase {
        seed,
        program: LitmusProgram::new(vec![thread]),
        model: ConsistencyModel::Pc,
        policy: DrainPolicy::SameStream,
        faulting,
        overlay: true,
    }
}

/// The oracle configuration that replays the corruption: sim legs on,
/// stubborn overlay, unhardened recovery costs.
pub fn corruption_oracle() -> OracleConfig {
    OracleConfig {
        run_sim: true,
        os_costs: Some(OsCostConfig::isca23().with_hardening(RecoveryHardening::unhardened())),
        overlay_clears_after: STUBBORN_CLEARS_AFTER,
        ..OracleConfig::default()
    }
}

/// Recasts a corruption win as a fuzz finding and shrinks it. Returns
/// `None` when the lowered case does not reproduce the silent drop
/// through the fuzz oracle (the win then stays a scorecard entry
/// without a corpus artifact).
pub fn shrink_corruption(plan: &AdvPlan, seed: u64) -> Option<CampaignFinding> {
    let case = corruption_case(plan, seed);
    let oracle = corruption_oracle();
    let mut batch = BatchChecker::new();
    let reproduces = check_case(&case, &oracle, &mut batch).iter().any(|f| {
        f.kind == FindingKind::SimInvariant && f.detail.contains("applied store not visible")
    });
    if !reproduces {
        return None;
    }
    let shrunk = shrink(&case, FindingKind::SimInvariant, &oracle, &mut batch);
    // Re-derive the detail from the reproducer itself, like the fuzz
    // campaign does.
    let (detail, outcomes) = check_case(&shrunk.case, &oracle, &mut batch)
        .into_iter()
        .find(|f| f.kind == FindingKind::SimInvariant)
        .map(|f| (f.detail, f.outcomes))
        .unwrap_or_default();
    Some(CampaignFinding {
        index: 0,
        seed,
        kind: FindingKind::SimInvariant,
        detail,
        case: shrunk.case,
        outcomes,
        steps: shrunk.steps,
    })
}

/// Writes `finding` into `dir` (created if missing) as
/// `<kind>-seed<seed>.litmus`, the fuzz campaign's corpus naming.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_regression(finding: &CampaignFinding, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "{}-seed{}.litmus",
        finding.kind.name(),
        finding.seed
    ));
    std::fs::write(&path, render_litmus(&to_parsed(finding)))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::{ExceptionKind, FaultKind};

    fn winning_plan() -> AdvPlan {
        AdvPlan {
            pages: vec![0, 1],
            kind: FaultKind::Transient { clears_after: 128 },
            exception: ExceptionKind::BusError,
            fsb_capacity: 32,
        }
    }

    #[test]
    fn corruption_case_faults_every_lowered_location() {
        let case = corruption_case(&winning_plan(), 9);
        assert_eq!(case.program.threads.len(), 1);
        assert_eq!(case.faulting.len(), 2);
        assert!(case.overlay);
        assert_eq!(case.program.locations(), case.faulting);
    }

    #[test]
    fn a_corruption_win_shrinks_to_a_reproducing_finding() {
        let finding = shrink_corruption(&winning_plan(), 9)
            .expect("the silent drop must reproduce through the fuzz oracle");
        assert_eq!(finding.kind, FindingKind::SimInvariant);
        assert!(
            finding.detail.contains("applied store not visible"),
            "detail: {}",
            finding.detail
        );
        // The shrinker should get down to a single faulting store.
        assert_eq!(finding.case.program.len(), 1, "{:?}", finding.case.program);
        assert_eq!(finding.case.faulting.len(), 1);
        assert!(finding.case.overlay, "the overlay carries the fault");
    }
}
