//! Objective evaluation: one fault plan, one full-system run, four
//! damage scores.
//!
//! Every evaluation runs the complete invariant set — the standard
//! chaos-campaign trio plus the containment layer plus the
//! applied-visibility audit (see [`ise_sim::invariants`]) — so a "win"
//! is never an artifact of a run the simulator itself would reject. The
//! four objectives mirror DESIGN.md §13:
//!
//! 1. **Corrupt** — architectural state diverges (the visibility audit
//!    fires) while every invariant stays green and nothing is killed:
//!    the silent-drop lie of an unhardened kernel.
//! 2. **Stall** — the victim burns dispatch overhead in early-drain
//!    continuation storms.
//! 3. **Exhaust** — a plan pins the handler on the longest backoff
//!    ladder until the retry budget runs out.
//! 4. **Kill** — the kill path fires with maximal in-flight FSB state
//!    to discard.

use crate::plan::AdvPlan;
use crate::target::{pool_page, victim_workload};
use ise_core::{FaultInjector, FaultPlan, FaultResolver};
use ise_engine::Cycle;
use ise_sim::{invariants, System};
use ise_types::config::{OsCostConfig, SystemConfig};
use ise_types::model::ConsistencyModel;
use ise_types::RecoveryHardening;
use std::rc::Rc;

/// Default cycle budget per evaluation. The victim completes in well
/// under 100k cycles even on the slowest backoff path; a plan that is
/// still running here has livelocked the recovery and scores zero.
pub const EVAL_MAX_CYCLES: Cycle = 2_000_000;

/// Minimum early-drain continuation chunks for a stall win.
pub const STALL_MIN_CHUNKS: u64 = 4;

/// Minimum continuation dispatch cycles for a stall win: four full
/// unhardened dispatches. A hardened kernel charges continuations
/// `dispatch_overhead / 8`, and the 48-store burst bounds chunks at 12
/// per episode, so the hardened ceiling (~16 × 65) sits far below this.
pub const STALL_MIN_DISPATCH_CYCLES: Cycle = 2_080;

/// Minimum backoff cycles for an exhaustion win: one full jitterless
/// ladder (64 + 128 + 256 + 512) under the ISCA'23 costs.
pub const EXHAUST_MIN_BACKOFF: Cycle = 960;

/// Minimum discarded in-flight stores for a kill win.
pub const KILL_MIN_DISCARDED: u64 = 8;

/// How one evaluation runs: which recovery configuration defends, under
/// what budget and clock.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// OS cost model (and its [`RecoveryHardening`]) under attack.
    pub os: OsCostConfig,
    /// Cycle budget per run (clamped by the `ISE_CELL_BUDGET` watchdog).
    pub max_cycles: Cycle,
    /// Drive the reference per-cycle clock instead of cycle skipping.
    /// Outcomes are byte-identical either way; the adversary-smoke CI
    /// leg pins both to prove it.
    pub reference_clock: bool,
}

impl EvalConfig {
    /// The hardened ISCA'23 recovery configuration (the default kernel).
    pub fn hardened() -> Self {
        EvalConfig {
            os: OsCostConfig::isca23(),
            max_cycles: EVAL_MAX_CYCLES,
            reference_clock: false,
        }
    }

    /// The deliberately weak recovery configuration the self-check
    /// attacks: no jitter, no kill on exhaustion (silent drop), full
    /// dispatch charge per continuation chunk.
    pub fn unhardened() -> Self {
        EvalConfig {
            os: OsCostConfig::isca23().with_hardening(RecoveryHardening::unhardened()),
            ..Self::hardened()
        }
    }

    /// Whether this configuration runs the fully hardened recovery.
    pub fn is_hardened(&self) -> bool {
        self.os.hardening == RecoveryHardening::hardened()
    }
}

/// Everything one evaluation measured, as plain owned data so results
/// cross worker threads and cache lookups freely.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The evaluated plan's [`AdvPlan::key`].
    pub key: String,
    /// The run exhausted its cycle budget (all objectives score zero).
    pub timed_out: bool,
    /// Standard + containment invariant violations (empty = contained).
    pub violations: Vec<String>,
    /// Applied-visibility audit findings (non-empty = architectural
    /// corruption).
    pub corruption: Vec<String>,
    /// Processes killed.
    pub killed: u64,
    /// Stores that exhausted their retry budget.
    pub retry_exhausted: u64,
    /// Total cycles spent in retry backoff.
    pub backoff_cycles: Cycle,
    /// Early-drain continuation chunks after the first.
    pub continuation_invocations: u64,
    /// Dispatch cycles charged to those continuations.
    pub continuation_dispatch_cycles: Cycle,
    /// Early-drain interrupts delivered.
    pub early_drain_interrupts: u64,
    /// Deepest FSB occupancy observed.
    pub fsb_high_water_mark: usize,
    /// In-flight stores discarded by kill paths, across cores.
    pub discarded: u64,
    /// Transactions the injector denied.
    pub denied: u64,
    /// Stores the OS applied.
    pub stores_applied: u64,
    /// Cycles to completion (or to the budget).
    pub cycles: Cycle,
}

/// The four damage objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Corrupt architectural state while tripping no invariant.
    Corrupt,
    /// Maximize victim stall via FSB early-drain storms.
    Stall,
    /// Exhaust the retry budget on the longest backoff path.
    Exhaust,
    /// Force kill-path entry with maximal in-flight FSB occupancy.
    Kill,
}

impl Objective {
    /// All objectives, in scorecard order.
    pub const ALL: [Objective; 4] = [
        Objective::Corrupt,
        Objective::Stall,
        Objective::Exhaust,
        Objective::Kill,
    ];

    /// Stable name (telemetry keys, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Objective::Corrupt => "corrupt",
            Objective::Stall => "stall",
            Objective::Exhaust => "exhaust",
            Objective::Kill => "kill",
        }
    }

    /// Whether `outcome` clears this objective's win threshold. Timed
    /// out runs never win: damage the invariants cannot audit does not
    /// count.
    pub fn win(self, outcome: &EvalOutcome) -> bool {
        if outcome.timed_out {
            return false;
        }
        match self {
            Objective::Corrupt => {
                outcome.violations.is_empty()
                    && outcome.killed == 0
                    && !outcome.corruption.is_empty()
            }
            Objective::Stall => {
                outcome.continuation_invocations >= STALL_MIN_CHUNKS
                    && outcome.continuation_dispatch_cycles >= STALL_MIN_DISPATCH_CYCLES
            }
            Objective::Exhaust => {
                outcome.retry_exhausted >= 1 && outcome.backoff_cycles >= EXHAUST_MIN_BACKOFF
            }
            Objective::Kill => outcome.killed >= 1 && outcome.discarded >= KILL_MIN_DISCARDED,
        }
    }

    /// The hill-climbing score (higher = more damage), comparable only
    /// within one objective.
    pub fn score(self, outcome: &EvalOutcome) -> u64 {
        if outcome.timed_out {
            return 0;
        }
        match self {
            Objective::Corrupt => outcome.corruption.len() as u64,
            Objective::Stall => outcome.continuation_dispatch_cycles,
            Objective::Exhaust => outcome.backoff_cycles,
            Objective::Kill => outcome.discarded + outcome.fsb_high_water_mark as u64,
        }
    }
}

/// Runs `plan` against the victim under `cfg` and measures everything
/// the objectives need. Pure: the same (plan, cfg) pair produces the
/// same outcome on any thread, which is what lets the search cache and
/// parallelize evaluations without perturbing the report.
pub fn evaluate(plan: &AdvPlan, cfg: &EvalConfig) -> EvalOutcome {
    let mut sys_cfg = SystemConfig::prototype2().with_model(ConsistencyModel::Pc);
    sys_cfg.os = cfg.os;
    sys_cfg.reference_clock = cfg.reference_clock;

    let workload = victim_workload();
    let injector: Rc<FaultInjector> = Rc::new(
        FaultPlan::new(0xAD5E ^ 0xF417)
            .pages(plan.pages.iter().map(|&i| pool_page(i)), plan.spec())
            .build(),
    );

    // Chaos idiom: EInject stays inert, the injector is the only fault
    // source.
    let mut quiet = workload.clone();
    quiet.einject_pages.clear();
    let mut sys = System::with_fault_sources(
        sys_cfg,
        &quiet,
        vec![injector.clone() as Rc<dyn FaultResolver>],
    )
    .with_fsb_capacity(plan.fsb_capacity)
    .with_contract_monitor();

    let budget = match ise_engine::cell_budget() {
        Some(cap) => cfg.max_cycles.min(cap),
        None => cfg.max_cycles,
    };
    let skip = ise_engine::cycle_skip_override().unwrap_or(!sys_cfg.reference_clock);
    let (stats, timed_out) = sys.run_bounded(budget, skip);

    // A timed-out run is reported, not audited — mid-flight state
    // legitimately violates end-of-run conservation.
    let (violations, corruption) = if timed_out {
        (Vec::new(), Vec::new())
    } else {
        let mut v = invariants::standard_violations(&sys, &workload, &stats);
        v.extend(invariants::containment_violations(&sys, &stats));
        (v, invariants::applied_visibility_violations(&sys))
    };

    let os = sys.os_kernel();
    EvalOutcome {
        key: plan.key(),
        timed_out,
        violations,
        corruption,
        killed: stats.killed,
        retry_exhausted: os.retry_exhausted(),
        backoff_cycles: os.backoff_cycles(),
        continuation_invocations: os.continuation_invocations(),
        continuation_dispatch_cycles: os.continuation_dispatch_cycles(),
        early_drain_interrupts: stats.early_drain_interrupts,
        fsb_high_water_mark: stats.fsb_high_water_mark,
        discarded: sys.discarded_per_core().iter().sum(),
        denied: injector.denied_count(),
        stores_applied: stats.stores_applied,
        cycles: stats.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::{ExceptionKind, FaultKind};

    fn plan(kind: FaultKind, pages: Vec<u8>, fsb: usize) -> AdvPlan {
        AdvPlan {
            pages,
            kind,
            exception: ExceptionKind::BusError,
            fsb_capacity: fsb,
        }
    }

    #[test]
    fn a_clean_ish_plan_holds_every_invariant_under_both_configs() {
        // A single transient page that heals at the drain denial: the
        // recovery path runs but nothing is damaged.
        let p = plan(FaultKind::Transient { clears_after: 1 }, vec![0], 32);
        for cfg in [EvalConfig::hardened(), EvalConfig::unhardened()] {
            let o = evaluate(&p, &cfg);
            assert!(!o.timed_out);
            assert!(o.violations.is_empty(), "{:?}", o.violations);
            assert!(o.corruption.is_empty(), "{:?}", o.corruption);
            assert_eq!(o.killed, 0);
            assert!(o.denied > 0, "the plan must actually deny something");
            assert!(Objective::ALL.iter().all(|obj| !obj.win(&o)));
        }
    }

    #[test]
    fn stubborn_transients_silently_corrupt_the_unhardened_kernel_only() {
        let p = plan(FaultKind::Transient { clears_after: 128 }, vec![0, 1], 32);
        let weak = evaluate(&p, &EvalConfig::unhardened());
        assert!(!weak.timed_out);
        assert_eq!(weak.killed, 0, "the unhardened kernel never kills");
        assert!(
            Objective::Corrupt.win(&weak),
            "violations {:?} corruption {:?}",
            weak.violations,
            weak.corruption
        );
        let hard = evaluate(&p, &EvalConfig::hardened());
        assert!(
            !Objective::Corrupt.win(&hard),
            "hardened kernels must not corrupt: {:?}",
            hard.corruption
        );
        assert!(hard.killed >= 1, "hardened exhaustion kills instead");
    }

    #[test]
    fn permanent_pool_wide_faults_stall_only_the_unhardened_kernel() {
        let p = plan(FaultKind::Permanent, (0..8).collect(), 4);
        let weak = evaluate(&p, &EvalConfig::unhardened());
        let hard = evaluate(&p, &EvalConfig::hardened());
        assert!(!weak.timed_out && !hard.timed_out);
        assert!(
            weak.continuation_invocations >= STALL_MIN_CHUNKS,
            "only {} chunks",
            weak.continuation_invocations
        );
        assert!(
            Objective::Stall.win(&weak),
            "continuations {} cycles {}",
            weak.continuation_invocations,
            weak.continuation_dispatch_cycles
        );
        assert!(
            !Objective::Stall.win(&hard),
            "hardened chunking must stay under the stall bar: {} cycles",
            hard.continuation_dispatch_cycles
        );
        // Same chunk count either way — hardening changes the charge,
        // not the drain schedule.
        assert_eq!(weak.continuation_invocations, hard.continuation_invocations);
    }

    #[test]
    fn outcomes_are_identical_across_clock_pins() {
        let p = plan(FaultKind::Transient { clears_after: 128 }, vec![0, 2], 8);
        for cfg in [EvalConfig::hardened(), EvalConfig::unhardened()] {
            let skip = evaluate(&p, &cfg);
            let mut reference = cfg;
            reference.reference_clock = true;
            let r = evaluate(&p, &reference);
            assert_eq!(skip.cycles, r.cycles);
            assert_eq!(skip.violations, r.violations);
            assert_eq!(skip.corruption, r.corruption);
            assert_eq!(skip.backoff_cycles, r.backoff_cycles);
            assert_eq!(skip.discarded, r.discarded);
        }
    }
}
