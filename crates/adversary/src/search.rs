//! The adversarial search loop and its resilience scorecard.
//!
//! Hill-climbing with random restarts over a per-objective beam: each of
//! the four damage objectives keeps its own beam of the best plans seen,
//! breeds `mutations_per_parent` children per beam slot per round, and
//! re-seeds itself with fresh random plans after `restart_after` rounds
//! without improvement. All randomness is drawn on the coordinator from
//! per-objective seeded streams, and evaluations are pure functions of
//! (plan, config) cached by plan key — so the campaign fans out over
//! [`ise_par::par_map`] and still renders a byte-identical scorecard at
//! any worker count.

use crate::eval::{evaluate, EvalConfig, EvalOutcome, Objective};
use crate::plan::AdvPlan;
use ise_engine::SimRng;
use ise_telemetry::Registry;
use ise_types::{Json, ToJson};
use std::collections::HashMap;

/// Search shape.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Master seed; each objective derives its own stream from it.
    pub seed: u64,
    /// Search rounds.
    pub rounds: usize,
    /// Plans each objective's beam retains.
    pub beam_width: usize,
    /// Children bred per beam slot per round.
    pub mutations_per_parent: usize,
    /// Rounds without improvement before a beam re-seeds itself with
    /// fresh random plans.
    pub restart_after: usize,
    /// How every candidate is evaluated.
    pub eval: EvalConfig,
}

impl SearchConfig {
    /// The CI smoke shape: small enough for a PR gate, large enough that
    /// the seeded-weakness self-check reliably finds its wins.
    pub fn smoke(seed: u64, eval: EvalConfig) -> Self {
        SearchConfig {
            seed,
            rounds: 6,
            beam_width: 3,
            mutations_per_parent: 4,
            restart_after: 2,
            eval,
        }
    }
}

/// One objective's line in the scorecard.
#[derive(Debug, Clone)]
pub struct ObjectiveResult {
    /// [`Objective::name`].
    pub objective: &'static str,
    /// Whether any evaluated plan cleared the win threshold.
    pub win: bool,
    /// Best score reached.
    pub score: u64,
    /// Key of the best plan ([`AdvPlan::key`]).
    pub plan: String,
    /// The best plan itself when one scored (or won) at all — the input
    /// to [`crate::regress::shrink_corruption`]. Not rendered into the
    /// scorecard; the key above is its canonical string form.
    pub genome: Option<AdvPlan>,
}

/// The campaign's resilience scorecard.
#[derive(Debug, Clone)]
pub struct AdversaryReport {
    /// Master seed.
    pub seed: u64,
    /// Whether the defending kernel ran fully hardened.
    pub hardened: bool,
    /// Rounds searched.
    pub rounds: usize,
    /// Beam width per objective.
    pub beam_width: usize,
    /// Unique plans evaluated.
    pub evaluations: u64,
    /// Evaluations that exhausted their cycle budget.
    pub timeouts: u64,
    /// One line per objective, in [`Objective::ALL`] order.
    pub objectives: Vec<ObjectiveResult>,
    /// Processes killed, summed over unique evaluations.
    pub kills: u64,
    /// Retry budgets exhausted, summed over unique evaluations.
    pub retry_exhausted: u64,
    /// Early-drain continuation chunks, summed over unique evaluations.
    pub continuation_invocations: u64,
    /// Early-drain interrupts, summed over unique evaluations.
    pub early_drain_interrupts: u64,
    /// Plans whose run corrupted architectural state.
    pub corrupting_plans: u64,
    /// Plans whose run breached a standard/containment invariant.
    pub breaching_plans: u64,
}

impl AdversaryReport {
    /// Whether `objective` was won by any evaluated plan.
    pub fn win(&self, objective: Objective) -> bool {
        self.objectives
            .iter()
            .find(|o| o.objective == objective.name())
            .map(|o| o.win)
            .unwrap_or(false)
    }

    /// The best plan key for `objective`, when one scored at all.
    pub fn best_plan(&self, objective: Objective) -> Option<&str> {
        self.objectives
            .iter()
            .find(|o| o.objective == objective.name())
            .map(|o| o.plan.as_str())
            .filter(|p| !p.is_empty())
    }

    /// The plan that *won* `objective`, when one did.
    pub fn winning_genome(&self, objective: Objective) -> Option<&AdvPlan> {
        self.objectives
            .iter()
            .find(|o| o.objective == objective.name() && o.win)
            .and_then(|o| o.genome.as_ref())
    }

    /// The scorecard as a telemetry [`Registry`]: identity, then one
    /// win/score/plan triple per objective in fixed order, then the
    /// coverage aggregates. The key set never depends on what was found,
    /// so the rendering is byte-stable across worker counts and clocks.
    pub fn to_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.add("seed", self.seed);
        reg.put("hardened", Json::from(self.hardened));
        reg.add("rounds", self.rounds as u64);
        reg.add("beam_width", self.beam_width as u64);
        reg.add("evaluations", self.evaluations);
        reg.add("timeouts", self.timeouts);
        for o in &self.objectives {
            reg.put(format!("objective.{}.win", o.objective), Json::from(o.win));
            reg.add(&format!("objective.{}.best_score", o.objective), o.score);
            reg.put(
                format!("objective.{}.best_plan", o.objective),
                Json::str(o.plan.clone()),
            );
        }
        reg.add("coverage.kills", self.kills);
        reg.add("coverage.retry_exhausted", self.retry_exhausted);
        reg.add(
            "coverage.continuation_invocations",
            self.continuation_invocations,
        );
        reg.add(
            "coverage.early_drain_interrupts",
            self.early_drain_interrupts,
        );
        reg.add("coverage.corrupting_plans", self.corrupting_plans);
        reg.add("coverage.breaching_plans", self.breaching_plans);
        reg.add(
            "wins",
            self.objectives.iter().filter(|o| o.win).count() as u64,
        );
        reg
    }
}

impl ToJson for AdversaryReport {
    fn to_json(&self) -> Json {
        self.to_registry().to_json()
    }
}

/// Runs the search with the default worker count
/// ([`ise_par::worker_count`]).
pub fn run_search(cfg: &SearchConfig) -> AdversaryReport {
    run_search_with_workers(cfg, ise_par::worker_count())
}

/// [`run_search`] with an explicit worker count. All mutation draws
/// happen sequentially on the coordinator; only the (pure, cached)
/// evaluations fan out — so the report is byte-identical for every
/// `workers` value.
pub fn run_search_with_workers(cfg: &SearchConfig, workers: usize) -> AdversaryReport {
    let n_obj = Objective::ALL.len();
    let mut rngs: Vec<SimRng> = (0..n_obj)
        .map(|i| SimRng::seed_from(cfg.seed ^ ((i as u64 + 1) << 32)))
        .collect();
    let mut cache: HashMap<String, EvalOutcome> = HashMap::new();
    // First-seen evaluation order: the aggregate counters sum over this,
    // keeping them independent of scheduling.
    let mut seen_order: Vec<String> = Vec::new();
    let mut timeouts = 0u64;

    let mut beams: Vec<Vec<AdvPlan>> = (0..n_obj)
        .map(|i| {
            (0..cfg.beam_width)
                .map(|_| AdvPlan::random(&mut rngs[i], &cfg.eval.os))
                .collect()
        })
        .collect();
    // Per-objective best (win, score) and the plan that reached it.
    let mut best: Vec<(bool, u64, String, Option<AdvPlan>)> =
        vec![(false, 0, String::new(), None); n_obj];
    let mut stalled: Vec<usize> = vec![0; n_obj];

    for _round in 0..cfg.rounds {
        // 1. Breed candidates per objective (coordinator-side RNG only).
        let mut candidates: Vec<Vec<AdvPlan>> = Vec::with_capacity(n_obj);
        for oi in 0..n_obj {
            let mut kids = Vec::new();
            for parent in &beams[oi] {
                for _ in 0..cfg.mutations_per_parent {
                    kids.push(parent.mutate(&mut rngs[oi], &cfg.eval.os));
                }
            }
            if stalled[oi] >= cfg.restart_after {
                // Random restart: re-seed this beam's frontier.
                for _ in 0..cfg.beam_width {
                    kids.push(AdvPlan::random(&mut rngs[oi], &cfg.eval.os));
                }
                stalled[oi] = 0;
            }
            candidates.push(kids);
        }

        // 2. Evaluate every not-yet-seen plan, fanned out but collected
        //    in first-seen order.
        let mut fresh: Vec<AdvPlan> = Vec::new();
        {
            let mut queued: std::collections::HashSet<String> = std::collections::HashSet::new();
            for plans in beams.iter().chain(candidates.iter()) {
                for p in plans {
                    let key = p.key();
                    if !cache.contains_key(&key) && queued.insert(key) {
                        fresh.push(p.clone());
                    }
                }
            }
        }
        let outcomes = ise_par::par_map(&fresh, workers, |_, p| evaluate(p, &cfg.eval));
        for o in outcomes {
            if o.timed_out {
                timeouts += 1;
            }
            seen_order.push(o.key.clone());
            cache.insert(o.key.clone(), o);
        }

        // 3. Rank each objective's pool and keep the beam.
        for (oi, obj) in Objective::ALL.into_iter().enumerate() {
            let mut pool: Vec<AdvPlan> = Vec::new();
            {
                let mut keys: std::collections::HashSet<String> = std::collections::HashSet::new();
                for p in beams[oi].iter().chain(candidates[oi].iter()) {
                    if keys.insert(p.key()) {
                        pool.push(p.clone());
                    }
                }
            }
            pool.sort_by(|a, b| {
                let oa = &cache[&a.key()];
                let ob = &cache[&b.key()];
                (obj.win(ob), obj.score(ob))
                    .cmp(&(obj.win(oa), obj.score(oa)))
                    .then_with(|| a.key().cmp(&b.key()))
            });
            pool.truncate(cfg.beam_width.max(1));
            let head = &cache[&pool[0].key()];
            let reached = (obj.win(head), obj.score(head));
            if reached > (best[oi].0, best[oi].1) {
                best[oi] = (reached.0, reached.1, pool[0].key(), Some(pool[0].clone()));
                stalled[oi] = 0;
            } else {
                stalled[oi] += 1;
            }
            beams[oi] = pool;
        }
    }

    // 4. Aggregate coverage over unique evaluations, first-seen order.
    let mut report = AdversaryReport {
        seed: cfg.seed,
        hardened: cfg.eval.is_hardened(),
        rounds: cfg.rounds,
        beam_width: cfg.beam_width,
        evaluations: seen_order.len() as u64,
        timeouts,
        objectives: Objective::ALL
            .into_iter()
            .zip(&best)
            .map(|(obj, (win, score, key, genome))| ObjectiveResult {
                objective: obj.name(),
                win: *win,
                score: *score,
                plan: key.clone(),
                genome: genome.clone(),
            })
            .collect(),
        kills: 0,
        retry_exhausted: 0,
        continuation_invocations: 0,
        early_drain_interrupts: 0,
        corrupting_plans: 0,
        breaching_plans: 0,
    };
    for key in &seen_order {
        let o = &cache[key];
        report.kills += o.killed;
        report.retry_exhausted += o.retry_exhausted;
        report.continuation_invocations += o.continuation_invocations;
        report.early_drain_interrupts += o.early_drain_interrupts;
        report.corrupting_plans += u64::from(!o.corruption.is_empty());
        report.breaching_plans += u64::from(!o.violations.is_empty());
    }
    report
}

/// Both halves of the seeded-weakness self-check.
#[derive(Debug, Clone)]
pub struct SelfCheck {
    /// The smoke search against the unhardened kernel.
    pub unhardened: AdversaryReport,
    /// The same search (same seed) against the hardened kernel.
    pub hardened: AdversaryReport,
}

impl SelfCheck {
    /// The check passes when the search proves both directions: the
    /// unhardened kernel loses on silent corruption *and* continuation
    /// stalls, and the hardened kernel loses on neither.
    pub fn passed(&self) -> bool {
        self.unhardened.win(Objective::Corrupt)
            && self.unhardened.win(Objective::Stall)
            && !self.hardened.win(Objective::Corrupt)
            && !self.hardened.win(Objective::Stall)
    }
}

/// Runs the smoke search against the unhardened and hardened recovery
/// configurations with the same seed — the CI gate that proves the
/// search has teeth and the hardening has effect.
pub fn self_check(seed: u64) -> SelfCheck {
    SelfCheck {
        unhardened: run_search(&SearchConfig::smoke(seed, EvalConfig::unhardened())),
        hardened: run_search(&SearchConfig::smoke(seed, EvalConfig::hardened())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_search_is_byte_identical_across_worker_counts() {
        let cfg = SearchConfig {
            rounds: 2,
            ..SearchConfig::smoke(7, EvalConfig::hardened())
        };
        let a = run_search_with_workers(&cfg, 1).to_registry().render();
        let b = run_search_with_workers(&cfg, 4).to_registry().render();
        assert_eq!(a, b);
    }

    #[test]
    fn scorecard_has_a_fixed_key_set() {
        let cfg = SearchConfig {
            rounds: 1,
            beam_width: 2,
            mutations_per_parent: 1,
            ..SearchConfig::smoke(3, EvalConfig::hardened())
        };
        let reg = run_search(&cfg).to_registry();
        for obj in Objective::ALL {
            assert!(reg.get(&format!("objective.{}.win", obj.name())).is_some());
            assert!(reg
                .get(&format!("objective.{}.best_score", obj.name()))
                .is_some());
            assert!(reg
                .get(&format!("objective.{}.best_plan", obj.name()))
                .is_some());
        }
        assert!(reg.get("coverage.kills").is_some());
        assert!(reg.counter("evaluations") > 0);
    }
}
