//! The store buffer: retired-but-incomplete stores.
//!
//! Under PC the buffer drains strictly in FIFO order, one store at a time
//! (the order the architectural interface must preserve, Table 5). Under
//! WC any idle entry may issue, several drains proceed concurrently, and
//! stores to the same 8-byte word coalesce on insert — the paper's
//! "already coalesced" same-address case (§4.4).
//!
//! A drain whose response comes back denied is an **imprecise store
//! exception**: [`StoreBuffer::pump`] reports it as a [`DrainFault`] and
//! the core takes over (stop fetch, drain everything to the FSB, flush).
//!
//! Entries live in a struct-of-arrays ring (no per-entry allocation on
//! push or drain), and the buffer maintains incremental idle/in-flight
//! counts plus the exact earliest in-flight completion time, so a pump
//! on a cycle where nothing completes and nothing can issue is O(1) —
//! the dominant case under the per-cycle reference clock.

use ise_engine::Cycle;
use ise_mem::hierarchy::{Access, MemoryHierarchy};
use ise_types::addr::{Addr, ByteMask};
use ise_types::exception::ExceptionKind;
use ise_types::model::ConsistencyModel;
use ise_types::{CoreId, FaultingStoreEntry, SimError};

/// Drain status of one store-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainState {
    /// Not yet issued to the hierarchy.
    Idle,
    /// Issued; the response arrives at `complete_at`.
    InFlight {
        /// Completion time.
        complete_at: Cycle,
        /// Fault embedded in the response, if the transaction was denied.
        fault: Option<ExceptionKind>,
    },
}

/// One retired store awaiting completion (a by-value view; storage is
/// struct-of-arrays inside [`StoreBuffer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEntry {
    /// Store target address.
    pub addr: Addr,
    /// Store data.
    pub value: u64,
    /// Bytes written.
    pub mask: ByteMask,
}

/// A detected imprecise store exception: which entry faulted and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainFault {
    /// Index of the faulting entry in buffer (FIFO) order.
    pub index: usize,
    /// The embedded exception.
    pub kind: ExceptionKind,
}

/// The store buffer of one core.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    core: CoreId,
    capacity: usize,
    model: ConsistencyModel,
    addrs: Box<[Addr]>,
    values: Box<[u64]>,
    masks: Box<[ByteMask]>,
    states: Box<[DrainState]>,
    head: usize,
    len: usize,
    ring_mask: usize,
    /// Entries in [`DrainState::Idle`] (candidates for issue).
    idle: usize,
    /// Entries in [`DrainState::InFlight`].
    in_flight: usize,
    /// Exact minimum `complete_at` over in-flight entries
    /// (`Cycle::MAX` when none are in flight).
    earliest: Cycle,
    /// Per-cycle issue ports for WC drains.
    drain_width: usize,
    /// Cap on concurrently in-flight drains (ASO checkpoint budget).
    max_in_flight: usize,
    coalesced: u64,
    drained: u64,
    retired: u64,
}

impl StoreBuffer {
    /// Creates a store buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (SC cores simply never push).
    pub fn new(core: CoreId, capacity: usize, model: ConsistencyModel) -> Self {
        assert!(capacity > 0, "store buffer needs capacity");
        // Large "effectively unbounded" capacities start at a modest ring
        // and grow by doubling if occupancy ever demands it.
        let ring = capacity.min(1024).next_power_of_two();
        StoreBuffer {
            core,
            capacity,
            model,
            addrs: vec![Addr::new(0); ring].into_boxed_slice(),
            values: vec![0; ring].into_boxed_slice(),
            masks: vec![ByteMask::FULL; ring].into_boxed_slice(),
            states: vec![DrainState::Idle; ring].into_boxed_slice(),
            head: 0,
            len: 0,
            ring_mask: ring - 1,
            idle: 0,
            in_flight: 0,
            earliest: Cycle::MAX,
            drain_width: 2,
            max_in_flight: usize::MAX,
            coalesced: 0,
            drained: 0,
            retired: 0,
        }
    }

    /// Caps the number of concurrently in-flight drains. The ASO baseline
    /// uses this to model a finite checkpoint budget (each outstanding
    /// store miss holds one checkpoint, paper §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_max_in_flight(&mut self, cap: usize) {
        assert!(cap > 0, "in-flight cap must be positive");
        self.max_in_flight = cap;
    }

    /// Whether another retired store fits.
    pub fn has_space(&self) -> bool {
        self.len < self.capacity
    }

    /// Whether the buffer is empty (fences and atomics wait for this).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Entries whose drain is currently in flight (the quantity ASO maps
    /// to checkpoints).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total stores coalesced away (WC only).
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Earliest completion time among in-flight drains, if any — the
    /// store buffer's next wake-up for the cycle-skipping clock.
    ///
    /// This is deliberately conservative for PC: a non-front in-flight
    /// entry completing is a non-event there (only the front may leave
    /// the buffer), so waking at it merely re-evaluates and charges the
    /// same stall the reference clock would have charged cycle by cycle.
    pub fn next_completion(&self) -> Option<Cycle> {
        (self.in_flight > 0).then_some(self.earliest)
    }

    /// Total stores drained to the hierarchy.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Total stores ever accepted by [`StoreBuffer::push`], whether they
    /// later drained, coalesced away, were handed to the FSB, or still
    /// sit in the buffer. The left-hand side of the store conservation
    /// invariant — on a killed core it must equal drained + coalesced +
    /// OS-applied + kill-discarded + still-buffered.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn slot(&self, i: usize) -> usize {
        (self.head + i) & self.ring_mask
    }

    /// The buffered entry at FIFO index `i` (for the drain paths).
    fn entry(&self, i: usize) -> SbEntry {
        let s = self.slot(i);
        SbEntry {
            addr: self.addrs[s],
            value: self.values[s],
            mask: self.masks[s],
        }
    }

    /// Re-derives `earliest` by scanning; called only when an in-flight
    /// entry left the buffer (completion, extraction), never on dead
    /// cycles.
    fn recompute_earliest(&mut self) {
        let mut min = Cycle::MAX;
        for i in 0..self.len {
            if let DrainState::InFlight { complete_at, .. } = self.states[self.slot(i)] {
                min = min.min(complete_at);
            }
        }
        self.earliest = min;
    }

    /// Removes the entry at FIFO index `i`, preserving the order of the
    /// rest (shifts the tail side of the ring down by one).
    fn remove_at(&mut self, i: usize) {
        match self.states[self.slot(i)] {
            DrainState::Idle => self.idle -= 1,
            DrainState::InFlight { .. } => self.in_flight -= 1,
        }
        if i == 0 {
            self.head = (self.head + 1) & self.ring_mask;
        } else {
            for j in i..self.len - 1 {
                let (dst, src) = (self.slot(j), self.slot(j + 1));
                self.addrs[dst] = self.addrs[src];
                self.values[dst] = self.values[src];
                self.masks[dst] = self.masks[src];
                self.states[dst] = self.states[src];
            }
        }
        self.len -= 1;
    }

    /// Doubles the ring (only reached when `capacity` exceeds the initial
    /// ring size and occupancy demands it; never on the steady-state
    /// path for the paper's 32-entry buffers).
    fn grow_ring(&mut self) {
        let new = (self.ring_mask + 1) * 2;
        let mut addrs = vec![Addr::new(0); new].into_boxed_slice();
        let mut values = vec![0u64; new].into_boxed_slice();
        let mut masks = vec![ByteMask::FULL; new].into_boxed_slice();
        let mut states = vec![DrainState::Idle; new].into_boxed_slice();
        for i in 0..self.len {
            let s = self.slot(i);
            addrs[i] = self.addrs[s];
            values[i] = self.values[s];
            masks[i] = self.masks[s];
            states[i] = self.states[s];
        }
        self.addrs = addrs;
        self.values = values;
        self.masks = masks;
        self.states = states;
        self.head = 0;
        self.ring_mask = new - 1;
    }

    /// Accepts a retired store.
    ///
    /// Under WC a store to a word already buffered (and not yet issued)
    /// coalesces into the existing entry, preserving the same-address
    /// ordering WC requires without a new slot.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — callers must check
    /// [`StoreBuffer::has_space`] first.
    pub fn push(&mut self, addr: Addr, value: u64, mask: ByteMask) {
        self.retired += 1;
        if self.model == ConsistencyModel::Wc {
            let word = addr.raw() >> 3;
            for i in (0..self.len).rev() {
                let s = self.slot(i);
                if self.addrs[s].raw() >> 3 == word && self.states[s] == DrainState::Idle {
                    self.values[s] = mask.merge(self.values[s], value);
                    self.masks[s] = self.masks[s] | mask;
                    self.coalesced += 1;
                    return;
                }
            }
        }
        assert!(self.has_space(), "store buffer overflow");
        if self.len > self.ring_mask {
            self.grow_ring();
        }
        let s = self.slot(self.len);
        self.addrs[s] = addr;
        self.values[s] = value;
        self.masks[s] = mask;
        self.states[s] = DrainState::Idle;
        self.len += 1;
        self.idle += 1;
    }

    /// Whether a load to `addr`'s word can forward from the buffer.
    pub fn forwards(&self, addr: Addr) -> bool {
        let word = addr.raw() >> 3;
        (0..self.len).any(|i| self.addrs[self.slot(i)].raw() >> 3 == word)
    }

    /// Advances drains by one cycle: completes finished drains, reports a
    /// fault if one came back denied, and issues new drains according to
    /// the model's ordering rules.
    pub fn pump(&mut self, now: Cycle, hier: &mut MemoryHierarchy) -> Option<DrainFault> {
        // Complete finished drains. `earliest` gates the scan: on cycles
        // where no in-flight drain has matured there is nothing to do.
        if self.earliest <= now {
            match self.model {
                ConsistencyModel::Sc => {}
                ConsistencyModel::Pc => {
                    // Ownership requests pipeline, but stores become
                    // globally visible strictly in FIFO order: only the
                    // front entry may leave the buffer.
                    let mut removed = false;
                    while self.len > 0 {
                        match self.states[self.head] {
                            DrainState::InFlight { complete_at, fault } if complete_at <= now => {
                                if let Some(kind) = fault {
                                    return Some(DrainFault { index: 0, kind });
                                }
                                self.remove_at(0);
                                self.drained += 1;
                                removed = true;
                            }
                            _ => break,
                        }
                    }
                    if removed {
                        self.recompute_earliest();
                    }
                }
                ConsistencyModel::Wc => {
                    let mut removed = false;
                    'outer: loop {
                        for i in 0..self.len {
                            if let DrainState::InFlight { complete_at, fault } =
                                self.states[self.slot(i)]
                            {
                                if complete_at <= now {
                                    if let Some(kind) = fault {
                                        if removed {
                                            self.recompute_earliest();
                                        }
                                        return Some(DrainFault { index: i, kind });
                                    }
                                    self.remove_at(i);
                                    self.drained += 1;
                                    removed = true;
                                    continue 'outer;
                                }
                            }
                        }
                        break;
                    }
                    if removed {
                        self.recompute_earliest();
                    }
                }
            }
        }

        // Issue new drains; skipped outright when nothing is idle or the
        // in-flight cap is already met.
        if self.model != ConsistencyModel::Sc
            && self.idle > 0
            && self.in_flight < self.max_in_flight
        {
            let mut issued = 0;
            for i in 0..self.len {
                if issued >= self.drain_width || self.in_flight >= self.max_in_flight {
                    break;
                }
                let s = self.slot(i);
                if self.states[s] == DrainState::Idle {
                    let acc = Access::store(self.core, self.addrs[s]);
                    let r = hier.access(acc, now);
                    let complete_at = now + r.latency;
                    self.states[s] = DrainState::InFlight {
                        complete_at,
                        fault: r.fault,
                    };
                    self.idle -= 1;
                    self.in_flight += 1;
                    self.earliest = self.earliest.min(complete_at);
                    issued += 1;
                }
            }
        }
        None
    }

    /// Drains the entire buffer into FSB records in buffer (FIFO) order —
    /// the same-stream policy of §4.6. The entry at `fault_index` carries
    /// the fault's error code; every other entry (drained without its own
    /// memory access, or still in flight) carries code 0.
    ///
    /// The buffer is left empty.
    pub fn drain_to_fsb(&mut self, fault: DrainFault) -> Vec<FaultingStoreEntry> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let e = self.entry(i);
            if i == fault.index {
                out.push(FaultingStoreEntry::new(
                    e.addr,
                    e.value,
                    e.mask,
                    fault.kind.error_code(),
                ));
            } else {
                out.push(FaultingStoreEntry::non_faulting(e.addr, e.value, e.mask));
            }
        }
        self.clear();
        out
    }

    /// Split-stream drain (§4.5 ablation): removes and returns *only* the
    /// faulting entry as an FSB record; younger non-faulting stores stay
    /// in the buffer and keep draining to memory. The paper shows this
    /// policy needs an extra HW/SW barrier to be PC-correct — the timing
    /// pipeline supports it so the ablation can measure its cost, while
    /// the operational machine demonstrates its race (Fig. 2a).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StoreBufferIndex`] if `fault.index` no longer
    /// names a buffered entry (a stale fault report).
    pub fn extract_faulting(
        &mut self,
        fault: DrainFault,
    ) -> Result<Vec<FaultingStoreEntry>, SimError> {
        if fault.index >= self.len {
            return Err(SimError::StoreBufferIndex {
                core: self.core,
                index: fault.index,
                len: self.len,
            });
        }
        let e = self.entry(fault.index);
        let was_in_flight = matches!(
            self.states[self.slot(fault.index)],
            DrainState::InFlight { .. }
        );
        self.remove_at(fault.index);
        if was_in_flight {
            self.recompute_earliest();
        }
        Ok(vec![FaultingStoreEntry::new(
            e.addr,
            e.value,
            e.mask,
            fault.kind.error_code(),
        )])
    }

    /// Abandons all buffered stores (process teardown in tests).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.idle = 0;
        self.in_flight = 0;
        self.earliest = Cycle::MAX;
    }

    /// Saves the buffer's dynamic state: identity fields for validation,
    /// then the logical FIFO contents (entry fields plus per-entry drain
    /// state, oldest → youngest) and the lifetime counters. The ring
    /// layout and the derived `idle`/`in_flight`/`earliest` counts are
    /// recomputed on restore and are not part of the audited contract.
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        use ise_types::persist::Persist;
        w.section(*b"SBUF", |w| {
            w.usize(self.capacity);
            self.model.save(w);
            w.usize(self.drain_width);
            w.usize(self.max_in_flight);
            w.usize(self.len);
            for i in 0..self.len {
                let s = self.slot(i);
                self.addrs[s].save(w);
                w.u64(self.values[s]);
                self.masks[s].save(w);
                match self.states[s] {
                    DrainState::Idle => w.u8(0),
                    DrainState::InFlight { complete_at, fault } => {
                        w.u8(1);
                        w.u64(complete_at);
                        fault.save(w);
                    }
                }
            }
            w.u64(self.coalesced);
            w.u64(self.drained);
            w.u64(self.retired);
        });
    }

    /// Restores the buffer in place. `core`, `capacity` and `model` come
    /// from construction; the saved identity fields must match.
    pub fn restore_state(
        &mut self,
        r: &mut ise_types::persist::Reader,
    ) -> Result<(), ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"SBUF", |r| {
            let capacity = r.usize()?;
            let model: ConsistencyModel = Persist::restore(r)?;
            if capacity != self.capacity || model != self.model {
                return Err(PersistError::Corrupt("store buffer identity mismatch"));
            }
            self.drain_width = r.usize()?;
            self.max_in_flight = r.usize()?;
            let len = r.usize()?;
            if len > capacity {
                return Err(PersistError::Corrupt(
                    "store buffer occupancy beyond capacity",
                ));
            }
            // Size the ring the way construction + growth would have.
            let mut ring = self.capacity.min(1024).next_power_of_two();
            while ring < len {
                ring *= 2;
            }
            let mut addrs = vec![Addr::new(0); ring].into_boxed_slice();
            let mut values = vec![0u64; ring].into_boxed_slice();
            let mut masks = vec![ByteMask::FULL; ring].into_boxed_slice();
            let mut states = vec![DrainState::Idle; ring].into_boxed_slice();
            let mut idle = 0;
            let mut in_flight = 0;
            let mut earliest = Cycle::MAX;
            for (i, state_slot) in states.iter_mut().enumerate().take(len) {
                addrs[i] = Persist::restore(r)?;
                values[i] = r.u64()?;
                masks[i] = Persist::restore(r)?;
                *state_slot = match r.u8()? {
                    0 => {
                        idle += 1;
                        DrainState::Idle
                    }
                    1 => {
                        let complete_at = r.u64()?;
                        let fault = Persist::restore(r)?;
                        in_flight += 1;
                        earliest = earliest.min(complete_at);
                        DrainState::InFlight { complete_at, fault }
                    }
                    _ => return Err(PersistError::Corrupt("DrainState discriminant")),
                };
            }
            self.addrs = addrs;
            self.values = values;
            self.masks = masks;
            self.states = states;
            self.head = 0;
            self.len = len;
            self.ring_mask = ring - 1;
            self.idle = idle;
            self.in_flight = in_flight;
            self.earliest = earliest;
            self.coalesced = r.u64()?;
            self.drained = r.u64()?;
            self.retired = r.u64()?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::config::SystemConfig;

    fn hier() -> MemoryHierarchy {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 1;
        MemoryHierarchy::new(cfg)
    }

    fn sb(model: ConsistencyModel) -> StoreBuffer {
        StoreBuffer::new(CoreId(0), 4, model)
    }

    #[test]
    fn push_and_space_accounting() {
        let mut b = sb(ConsistencyModel::Pc);
        for i in 0..4 {
            assert!(b.has_space());
            b.push(Addr::new(i * 64), i, ByteMask::FULL);
        }
        assert!(!b.has_space());
        assert_eq!(b.len(), 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = sb(ConsistencyModel::Pc);
        for i in 0..5 {
            b.push(Addr::new(i * 64), i, ByteMask::FULL);
        }
    }

    #[test]
    fn pc_pipelines_drains_but_completes_in_order() {
        let mut b = sb(ConsistencyModel::Pc);
        let mut h = hier();
        b.push(Addr::new(0), 1, ByteMask::FULL);
        b.push(Addr::new(64), 2, ByteMask::FULL);
        b.pump(0, &mut h);
        assert_eq!(b.in_flight(), 2, "PC pipelines ownership requests");
        // Run forward until both drained; the front must always leave
        // first (FIFO order), which `pump` enforces structurally.
        let mut t = 0;
        while !b.is_empty() && t < 10_000 {
            t += 1;
            assert!(b.pump(t, &mut h).is_none());
        }
        assert!(b.is_empty());
        assert_eq!(b.drained(), 2);
    }

    #[test]
    fn wc_drains_concurrently() {
        let mut b = sb(ConsistencyModel::Wc);
        let mut h = hier();
        b.push(Addr::new(0), 1, ByteMask::FULL);
        b.push(Addr::new(64), 2, ByteMask::FULL);
        b.pump(0, &mut h);
        assert_eq!(b.in_flight(), 2, "WC issues multiple drains");
    }

    #[test]
    fn wc_coalesces_same_word() {
        let mut b = sb(ConsistencyModel::Wc);
        b.push(Addr::new(8), 0xff, ByteMask::span(0, 1));
        b.push(Addr::new(8), 0xaa00, ByteMask::span(1, 1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.coalesced(), 1);
        let mut h = hier();
        let entries = b.drain_to_fsb(DrainFault {
            index: 0,
            kind: ExceptionKind::BusError,
        });
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].mask.bits(), 0b11);
        assert_eq!(entries[0].data & 0xffff, 0xaaff);
        let _ = &mut h;
    }

    #[test]
    fn pc_does_not_coalesce() {
        let mut b = sb(ConsistencyModel::Pc);
        b.push(Addr::new(8), 1, ByteMask::FULL);
        b.push(Addr::new(8), 2, ByteMask::FULL);
        assert_eq!(b.len(), 2);
        assert_eq!(b.coalesced(), 0);
    }

    #[test]
    fn next_completion_tracks_earliest_in_flight() {
        let mut b = sb(ConsistencyModel::Wc);
        let mut h = hier();
        assert_eq!(b.next_completion(), None, "empty buffer has no wake-up");
        b.push(Addr::new(0), 1, ByteMask::FULL);
        assert_eq!(b.next_completion(), None, "idle entries are not in flight");
        b.pump(0, &mut h);
        let wake = b.next_completion().expect("issued drain is in flight");
        assert!(wake > 0, "completion is in the future");
        // Pumping exactly at the wake-up completes the drain.
        let mut t = wake;
        while !b.is_empty() && t < 10_000 {
            assert!(b.pump(t, &mut h).is_none());
            t += 1;
        }
        assert!(b.is_empty());
        assert_eq!(b.next_completion(), None);
    }

    #[test]
    fn forwarding_sees_buffered_words() {
        let mut b = sb(ConsistencyModel::Wc);
        b.push(Addr::new(0x100), 7, ByteMask::FULL);
        assert!(b.forwards(Addr::new(0x100)));
        assert!(b.forwards(Addr::new(0x104))); // same word
        assert!(!b.forwards(Addr::new(0x108)));
    }

    #[test]
    fn drain_to_fsb_preserves_order_and_marks_fault() {
        let mut b = sb(ConsistencyModel::Pc);
        b.push(Addr::new(0), 1, ByteMask::FULL);
        b.push(Addr::new(64), 2, ByteMask::FULL);
        b.push(Addr::new(128), 3, ByteMask::FULL);
        let entries = b.drain_to_fsb(DrainFault {
            index: 1,
            kind: ExceptionKind::BusError,
        });
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.addr.raw()).collect::<Vec<_>>(),
            vec![0, 64, 128]
        );
        assert!(!entries[0].is_faulting());
        assert!(entries[1].is_faulting());
        assert!(!entries[2].is_faulting());
        assert!(b.is_empty());
    }

    #[test]
    fn large_capacity_ring_grows_on_demand() {
        // Capacity above the initial ring size: pushes past the ring must
        // grow it (the "effectively unbounded buffer" configurations).
        let mut b = StoreBuffer::new(CoreId(0), 5000, ConsistencyModel::Pc);
        for i in 0..2000u64 {
            assert!(b.has_space());
            b.push(Addr::new(i * 64), i, ByteMask::FULL);
        }
        assert_eq!(b.len(), 2000);
        for i in 0..2000u64 {
            let e = b.entry(i as usize);
            assert_eq!(e.addr.raw(), i * 64, "order preserved across growth");
        }
    }

    #[test]
    fn persist_round_trip_mid_drain_continues_identically() {
        use ise_types::persist::{Reader, Writer};
        for model in [ConsistencyModel::Pc, ConsistencyModel::Wc] {
            let mut orig = StoreBuffer::new(CoreId(0), 8, model);
            let mut h_orig = hier();
            for i in 0..6u64 {
                orig.push(Addr::new(i * 64), i, ByteMask::FULL);
            }
            // Issue drains so the snapshot catches entries in flight.
            assert!(orig.pump(0, &mut h_orig).is_none());
            assert!(orig.in_flight() > 0, "snapshot must be mid-drain");
            let mut w = Writer::container();
            orig.save_state(&mut w);
            // The hierarchy rides along so the restored buffer sees the
            // same latencies the original will.
            h_orig.save_state(&mut w);
            let bytes = w.finish();
            let mut back = StoreBuffer::new(CoreId(0), 8, model);
            let mut h_back = hier();
            let mut r = Reader::container(&bytes).unwrap();
            back.restore_state(&mut r).unwrap();
            h_back.restore_state(&mut r).unwrap();
            // Logical contents are the canonical form: re-save is
            // byte-identical even though the restored ring is compacted.
            let mut w2 = Writer::container();
            back.save_state(&mut w2);
            h_back.save_state(&mut w2);
            assert_eq!(w2.finish(), bytes, "model {model:?}");
            assert_eq!(back.in_flight(), orig.in_flight());
            assert_eq!(back.next_completion(), orig.next_completion());
            // Lockstep continuation: every completion, issue, and counter
            // must agree cycle by cycle until both buffers drain dry.
            for now in 1..4000u64 {
                assert!(orig.pump(now, &mut h_orig).is_none());
                assert!(back.pump(now, &mut h_back).is_none());
                assert_eq!(back.len(), orig.len(), "len at {now} ({model:?})");
                assert_eq!(back.in_flight(), orig.in_flight());
                assert_eq!(back.drained(), orig.drained());
                assert_eq!(back.next_completion(), orig.next_completion());
                if orig.is_empty() {
                    break;
                }
            }
            assert!(orig.is_empty(), "original drains to empty");
            assert!(back.is_empty(), "restored buffer drains to empty");
            assert_eq!(back.retired(), orig.retired());
        }
    }

    #[test]
    fn persist_restore_rejects_identity_mismatch() {
        use ise_types::persist::{PersistError, Reader, Writer};
        let mut orig = StoreBuffer::new(CoreId(0), 8, ConsistencyModel::Wc);
        orig.push(Addr::new(0), 1, ByteMask::FULL);
        let mut w = Writer::container();
        orig.save_state(&mut w);
        let bytes = w.finish();
        let mut wrong_cap = StoreBuffer::new(CoreId(0), 4, ConsistencyModel::Wc);
        let mut r = Reader::container(&bytes).unwrap();
        assert!(matches!(
            wrong_cap.restore_state(&mut r),
            Err(PersistError::Corrupt("store buffer identity mismatch"))
        ));
        let mut wrong_model = StoreBuffer::new(CoreId(0), 8, ConsistencyModel::Pc);
        let mut r = Reader::container(&bytes).unwrap();
        assert!(matches!(
            wrong_model.restore_state(&mut r),
            Err(PersistError::Corrupt("store buffer identity mismatch"))
        ));
    }

    /// The pre-rework layout, verbatim: a `VecDeque` of entries with all
    /// derived quantities recomputed by scanning. The differential below
    /// drives it and the SoA ring through the same op sequence.
    mod naive {
        use super::*;
        use std::collections::VecDeque;

        pub struct NaiveBuffer {
            pub entries: VecDeque<(Addr, u64, ByteMask, DrainState)>,
            capacity: usize,
            model: ConsistencyModel,
            pub drained: u64,
            pub coalesced: u64,
        }

        impl NaiveBuffer {
            pub fn new(capacity: usize, model: ConsistencyModel) -> Self {
                NaiveBuffer {
                    entries: VecDeque::new(),
                    capacity,
                    model,
                    drained: 0,
                    coalesced: 0,
                }
            }

            pub fn has_space(&self) -> bool {
                self.entries.len() < self.capacity
            }

            pub fn in_flight(&self) -> usize {
                self.entries
                    .iter()
                    .filter(|e| matches!(e.3, DrainState::InFlight { .. }))
                    .count()
            }

            pub fn next_completion(&self) -> Option<Cycle> {
                self.entries
                    .iter()
                    .filter_map(|e| match e.3 {
                        DrainState::InFlight { complete_at, .. } => Some(complete_at),
                        DrainState::Idle => None,
                    })
                    .min()
            }

            pub fn push(&mut self, addr: Addr, value: u64, mask: ByteMask) {
                if self.model == ConsistencyModel::Wc {
                    let word = addr.raw() >> 3;
                    if let Some(e) = self
                        .entries
                        .iter_mut()
                        .rev()
                        .find(|e| e.0.raw() >> 3 == word && e.3 == DrainState::Idle)
                    {
                        e.1 = mask.merge(e.1, value);
                        e.2 = e.2 | mask;
                        self.coalesced += 1;
                        return;
                    }
                }
                self.entries
                    .push_back((addr, value, mask, DrainState::Idle));
            }

            pub fn forwards(&self, addr: Addr) -> bool {
                let word = addr.raw() >> 3;
                self.entries.iter().any(|e| e.0.raw() >> 3 == word)
            }

            /// `pump` against a scripted latency/fault function instead
            /// of a live hierarchy, mirroring the original loop shape.
            pub fn pump(
                &mut self,
                now: Cycle,
                drain_width: usize,
                mut issue: impl FnMut(Addr) -> (Cycle, Option<ExceptionKind>),
            ) -> Option<DrainFault> {
                match self.model {
                    ConsistencyModel::Sc => {}
                    ConsistencyModel::Pc => {
                        while let Some(front) = self.entries.front() {
                            match front.3 {
                                DrainState::InFlight { complete_at, fault }
                                    if complete_at <= now =>
                                {
                                    if let Some(kind) = fault {
                                        return Some(DrainFault { index: 0, kind });
                                    }
                                    self.entries.pop_front();
                                    self.drained += 1;
                                }
                                _ => break,
                            }
                        }
                    }
                    ConsistencyModel::Wc => loop {
                        let mut acted = false;
                        for i in 0..self.entries.len() {
                            if let DrainState::InFlight { complete_at, fault } = self.entries[i].3 {
                                if complete_at <= now {
                                    if let Some(kind) = fault {
                                        return Some(DrainFault { index: i, kind });
                                    }
                                    self.entries.remove(i);
                                    self.drained += 1;
                                    acted = true;
                                    break;
                                }
                            }
                        }
                        if !acted {
                            break;
                        }
                    },
                }
                if self.model != ConsistencyModel::Sc {
                    let mut issued = 0;
                    for i in 0..self.entries.len() {
                        if issued >= drain_width {
                            break;
                        }
                        if self.entries[i].3 == DrainState::Idle {
                            let (latency, fault) = issue(self.entries[i].0);
                            self.entries[i].3 = DrainState::InFlight {
                                complete_at: now + latency,
                                fault,
                            };
                            issued += 1;
                        }
                    }
                }
                None
            }
        }
    }

    #[test]
    fn soa_ring_matches_naive_deque_buffer() {
        // Differential against the pre-rework layout: both buffers see
        // the same op stream, each issuing into its own (identical,
        // deterministic) hierarchy, so as long as they issue the same
        // addresses in the same order they receive the same latencies —
        // and every derived quantity must agree each step.
        for model in [ConsistencyModel::Pc, ConsistencyModel::Wc] {
            let mut real = StoreBuffer::new(CoreId(0), 8, model);
            let mut naive = naive::NaiveBuffer::new(8, model);
            let mut h_real = hier();
            let mut h_naive = hier();
            let mut x = 0x00d1_5ea5_ed0d_dba1u64;
            let mut lcg = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 33
            };
            for now in 0..4000u64 {
                if lcg() % 3 == 0 && real.has_space() {
                    let addr = Addr::new((lcg() % 64) * 64);
                    let value = lcg();
                    real.push(addr, value, ByteMask::FULL);
                    naive.push(addr, value, ByteMask::FULL);
                }
                assert!(real.pump(now, &mut h_real).is_none(), "fault-free run");
                let nf = naive.pump(now, 2, |addr| {
                    let r = h_naive.access(Access::store(CoreId(0), addr), now);
                    (r.latency, r.fault)
                });
                assert!(nf.is_none());
                // Cross-check every derived quantity.
                assert_eq!(real.len(), naive.entries.len(), "len at {now} ({model:?})");
                assert_eq!(real.drained(), naive.drained, "drained at {now}");
                assert_eq!(real.coalesced(), naive.coalesced, "coalesced at {now}");
                assert_eq!(real.in_flight(), naive.in_flight(), "in_flight at {now}");
                assert_eq!(real.has_space(), naive.has_space());
                assert_eq!(real.next_completion(), naive.next_completion());
                for i in 0..real.len() {
                    assert_eq!(real.entry(i).addr, naive.entries[i].0, "order at {now}");
                }
                let probe = Addr::new((now % 64) * 64);
                assert_eq!(real.forwards(probe), naive.forwards(probe));
            }
        }
    }
}
