//! The store buffer: retired-but-incomplete stores.
//!
//! Under PC the buffer drains strictly in FIFO order, one store at a time
//! (the order the architectural interface must preserve, Table 5). Under
//! WC any idle entry may issue, several drains proceed concurrently, and
//! stores to the same 8-byte word coalesce on insert — the paper's
//! "already coalesced" same-address case (§4.4).
//!
//! A drain whose response comes back denied is an **imprecise store
//! exception**: [`StoreBuffer::pump`] reports it as a [`DrainFault`] and
//! the core takes over (stop fetch, drain everything to the FSB, flush).

use ise_engine::Cycle;
use ise_mem::hierarchy::{Access, MemoryHierarchy};
use ise_types::addr::{Addr, ByteMask};
use ise_types::exception::ExceptionKind;
use ise_types::model::ConsistencyModel;
use ise_types::{CoreId, FaultingStoreEntry, SimError};
use std::collections::VecDeque;

/// Drain status of one store-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainState {
    /// Not yet issued to the hierarchy.
    Idle,
    /// Issued; the response arrives at `complete_at`.
    InFlight {
        /// Completion time.
        complete_at: Cycle,
        /// Fault embedded in the response, if the transaction was denied.
        fault: Option<ExceptionKind>,
    },
}

/// One retired store awaiting completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEntry {
    /// Store target address.
    pub addr: Addr,
    /// Store data.
    pub value: u64,
    /// Bytes written.
    pub mask: ByteMask,
    state: DrainState,
}

impl SbEntry {
    fn word(&self) -> u64 {
        self.addr.raw() >> 3
    }
}

/// A detected imprecise store exception: which entry faulted and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainFault {
    /// Index of the faulting entry in buffer (FIFO) order.
    pub index: usize,
    /// The embedded exception.
    pub kind: ExceptionKind,
}

/// The store buffer of one core.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    core: CoreId,
    capacity: usize,
    model: ConsistencyModel,
    entries: VecDeque<SbEntry>,
    /// Per-cycle issue ports for WC drains.
    drain_width: usize,
    /// Cap on concurrently in-flight drains (ASO checkpoint budget).
    max_in_flight: usize,
    coalesced: u64,
    drained: u64,
    retired: u64,
}

impl StoreBuffer {
    /// Creates a store buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (SC cores simply never push).
    pub fn new(core: CoreId, capacity: usize, model: ConsistencyModel) -> Self {
        assert!(capacity > 0, "store buffer needs capacity");
        StoreBuffer {
            core,
            capacity,
            model,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            drain_width: 2,
            max_in_flight: usize::MAX,
            coalesced: 0,
            drained: 0,
            retired: 0,
        }
    }

    /// Caps the number of concurrently in-flight drains. The ASO baseline
    /// uses this to model a finite checkpoint budget (each outstanding
    /// store miss holds one checkpoint, paper §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_max_in_flight(&mut self, cap: usize) {
        assert!(cap > 0, "in-flight cap must be positive");
        self.max_in_flight = cap;
    }

    /// Whether another retired store fits.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Whether the buffer is empty (fences and atomics wait for this).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries whose drain is currently in flight (the quantity ASO maps
    /// to checkpoints).
    pub fn in_flight(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.state, DrainState::InFlight { .. }))
            .count()
    }

    /// Total stores coalesced away (WC only).
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Earliest completion time among in-flight drains, if any — the
    /// store buffer's next wake-up for the cycle-skipping clock.
    ///
    /// This is deliberately conservative for PC: a non-front in-flight
    /// entry completing is a non-event there (only the front may leave
    /// the buffer), so waking at it merely re-evaluates and charges the
    /// same stall the reference clock would have charged cycle by cycle.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.entries
            .iter()
            .filter_map(|e| match e.state {
                DrainState::InFlight { complete_at, .. } => Some(complete_at),
                DrainState::Idle => None,
            })
            .min()
    }

    /// Total stores drained to the hierarchy.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Total stores ever accepted by [`StoreBuffer::push`], whether they
    /// later drained, coalesced away, were handed to the FSB, or still
    /// sit in the buffer. The left-hand side of the store conservation
    /// invariant — on a killed core it must equal drained + coalesced +
    /// OS-applied + kill-discarded + still-buffered.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Accepts a retired store.
    ///
    /// Under WC a store to a word already buffered (and not yet issued)
    /// coalesces into the existing entry, preserving the same-address
    /// ordering WC requires without a new slot.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — callers must check
    /// [`StoreBuffer::has_space`] first.
    pub fn push(&mut self, addr: Addr, value: u64, mask: ByteMask) {
        self.retired += 1;
        if self.model == ConsistencyModel::Wc {
            let word = addr.raw() >> 3;
            if let Some(e) = self
                .entries
                .iter_mut()
                .rev()
                .find(|e| e.word() == word && e.state == DrainState::Idle)
            {
                e.value = mask.merge(e.value, value);
                e.mask = e.mask | mask;
                self.coalesced += 1;
                return;
            }
        }
        assert!(self.has_space(), "store buffer overflow");
        self.entries.push_back(SbEntry {
            addr,
            value,
            mask,
            state: DrainState::Idle,
        });
    }

    /// Whether a load to `addr`'s word can forward from the buffer.
    pub fn forwards(&self, addr: Addr) -> bool {
        let word = addr.raw() >> 3;
        self.entries.iter().any(|e| e.word() == word)
    }

    /// Advances drains by one cycle: completes finished drains, reports a
    /// fault if one came back denied, and issues new drains according to
    /// the model's ordering rules.
    pub fn pump(&mut self, now: Cycle, hier: &mut MemoryHierarchy) -> Option<DrainFault> {
        // Complete finished drains.
        match self.model {
            ConsistencyModel::Sc => {}
            ConsistencyModel::Pc => {
                // Ownership requests pipeline, but stores become globally
                // visible strictly in FIFO order: only the front entry may
                // leave the buffer.
                while let Some(front) = self.entries.front() {
                    match front.state {
                        DrainState::InFlight { complete_at, fault } if complete_at <= now => {
                            if let Some(kind) = fault {
                                return Some(DrainFault { index: 0, kind });
                            }
                            self.entries.pop_front();
                            self.drained += 1;
                        }
                        _ => break,
                    }
                }
            }
            ConsistencyModel::Wc => loop {
                let mut acted = false;
                for i in 0..self.entries.len() {
                    if let DrainState::InFlight { complete_at, fault } = self.entries[i].state {
                        if complete_at <= now {
                            if let Some(kind) = fault {
                                return Some(DrainFault { index: i, kind });
                            }
                            self.entries.remove(i);
                            self.drained += 1;
                            acted = true;
                            break;
                        }
                    }
                }
                if !acted {
                    break;
                }
            },
        }

        // Issue new drains.
        match self.model {
            ConsistencyModel::Sc => {}
            ConsistencyModel::Pc | ConsistencyModel::Wc => {
                let mut issued = 0;
                let mut in_flight = self.in_flight();
                for i in 0..self.entries.len() {
                    if issued >= self.drain_width || in_flight >= self.max_in_flight {
                        break;
                    }
                    if self.entries[i].state == DrainState::Idle {
                        let acc = Access::store(self.core, self.entries[i].addr);
                        let r = hier.access(acc, now);
                        self.entries[i].state = DrainState::InFlight {
                            complete_at: now + r.latency,
                            fault: r.fault,
                        };
                        issued += 1;
                        in_flight += 1;
                    }
                }
            }
        }
        None
    }

    /// Drains the entire buffer into FSB records in buffer (FIFO) order —
    /// the same-stream policy of §4.6. The entry at `fault_index` carries
    /// the fault's error code; every other entry (drained without its own
    /// memory access, or still in flight) carries code 0.
    ///
    /// The buffer is left empty.
    pub fn drain_to_fsb(&mut self, fault: DrainFault) -> Vec<FaultingStoreEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            if i == fault.index {
                out.push(FaultingStoreEntry::new(
                    e.addr,
                    e.value,
                    e.mask,
                    fault.kind.error_code(),
                ));
            } else {
                out.push(FaultingStoreEntry::non_faulting(e.addr, e.value, e.mask));
            }
        }
        self.entries.clear();
        out
    }

    /// Split-stream drain (§4.5 ablation): removes and returns *only* the
    /// faulting entry as an FSB record; younger non-faulting stores stay
    /// in the buffer and keep draining to memory. The paper shows this
    /// policy needs an extra HW/SW barrier to be PC-correct — the timing
    /// pipeline supports it so the ablation can measure its cost, while
    /// the operational machine demonstrates its race (Fig. 2a).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StoreBufferIndex`] if `fault.index` no longer
    /// names a buffered entry (a stale fault report).
    pub fn extract_faulting(
        &mut self,
        fault: DrainFault,
    ) -> Result<Vec<FaultingStoreEntry>, SimError> {
        let len = self.entries.len();
        let e = self
            .entries
            .remove(fault.index)
            .ok_or(SimError::StoreBufferIndex {
                core: self.core,
                index: fault.index,
                len,
            })?;
        Ok(vec![FaultingStoreEntry::new(
            e.addr,
            e.value,
            e.mask,
            fault.kind.error_code(),
        )])
    }

    /// Abandons all buffered stores (process teardown in tests).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::config::SystemConfig;

    fn hier() -> MemoryHierarchy {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 1;
        MemoryHierarchy::new(cfg)
    }

    fn sb(model: ConsistencyModel) -> StoreBuffer {
        StoreBuffer::new(CoreId(0), 4, model)
    }

    #[test]
    fn push_and_space_accounting() {
        let mut b = sb(ConsistencyModel::Pc);
        for i in 0..4 {
            assert!(b.has_space());
            b.push(Addr::new(i * 64), i, ByteMask::FULL);
        }
        assert!(!b.has_space());
        assert_eq!(b.len(), 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = sb(ConsistencyModel::Pc);
        for i in 0..5 {
            b.push(Addr::new(i * 64), i, ByteMask::FULL);
        }
    }

    #[test]
    fn pc_pipelines_drains_but_completes_in_order() {
        let mut b = sb(ConsistencyModel::Pc);
        let mut h = hier();
        b.push(Addr::new(0), 1, ByteMask::FULL);
        b.push(Addr::new(64), 2, ByteMask::FULL);
        b.pump(0, &mut h);
        assert_eq!(b.in_flight(), 2, "PC pipelines ownership requests");
        // Run forward until both drained; the front must always leave
        // first (FIFO order), which `pump` enforces structurally.
        let mut t = 0;
        while !b.is_empty() && t < 10_000 {
            t += 1;
            assert!(b.pump(t, &mut h).is_none());
        }
        assert!(b.is_empty());
        assert_eq!(b.drained(), 2);
    }

    #[test]
    fn wc_drains_concurrently() {
        let mut b = sb(ConsistencyModel::Wc);
        let mut h = hier();
        b.push(Addr::new(0), 1, ByteMask::FULL);
        b.push(Addr::new(64), 2, ByteMask::FULL);
        b.pump(0, &mut h);
        assert_eq!(b.in_flight(), 2, "WC issues multiple drains");
    }

    #[test]
    fn wc_coalesces_same_word() {
        let mut b = sb(ConsistencyModel::Wc);
        b.push(Addr::new(8), 0xff, ByteMask::span(0, 1));
        b.push(Addr::new(8), 0xaa00, ByteMask::span(1, 1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.coalesced(), 1);
        let mut h = hier();
        let entries = b.drain_to_fsb(DrainFault {
            index: 0,
            kind: ExceptionKind::BusError,
        });
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].mask.bits(), 0b11);
        assert_eq!(entries[0].data & 0xffff, 0xaaff);
        let _ = &mut h;
    }

    #[test]
    fn pc_does_not_coalesce() {
        let mut b = sb(ConsistencyModel::Pc);
        b.push(Addr::new(8), 1, ByteMask::FULL);
        b.push(Addr::new(8), 2, ByteMask::FULL);
        assert_eq!(b.len(), 2);
        assert_eq!(b.coalesced(), 0);
    }

    #[test]
    fn next_completion_tracks_earliest_in_flight() {
        let mut b = sb(ConsistencyModel::Wc);
        let mut h = hier();
        assert_eq!(b.next_completion(), None, "empty buffer has no wake-up");
        b.push(Addr::new(0), 1, ByteMask::FULL);
        assert_eq!(b.next_completion(), None, "idle entries are not in flight");
        b.pump(0, &mut h);
        let wake = b.next_completion().expect("issued drain is in flight");
        assert!(wake > 0, "completion is in the future");
        // Pumping exactly at the wake-up completes the drain.
        let mut t = wake;
        while !b.is_empty() && t < 10_000 {
            assert!(b.pump(t, &mut h).is_none());
            t += 1;
        }
        assert!(b.is_empty());
        assert_eq!(b.next_completion(), None);
    }

    #[test]
    fn forwarding_sees_buffered_words() {
        let mut b = sb(ConsistencyModel::Wc);
        b.push(Addr::new(0x100), 7, ByteMask::FULL);
        assert!(b.forwards(Addr::new(0x100)));
        assert!(b.forwards(Addr::new(0x104))); // same word
        assert!(!b.forwards(Addr::new(0x108)));
    }

    #[test]
    fn drain_to_fsb_preserves_order_and_marks_fault() {
        let mut b = sb(ConsistencyModel::Pc);
        b.push(Addr::new(0), 1, ByteMask::FULL);
        b.push(Addr::new(64), 2, ByteMask::FULL);
        b.push(Addr::new(128), 3, ByteMask::FULL);
        let entries = b.drain_to_fsb(DrainFault {
            index: 1,
            kind: ExceptionKind::BusError,
        });
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.addr.raw()).collect::<Vec<_>>(),
            vec![0, 64, 128]
        );
        assert!(!entries[0].is_faulting());
        assert!(entries[1].is_faulting());
        assert!(!entries[2].is_faulting());
        assert!(b.is_empty());
    }
}
