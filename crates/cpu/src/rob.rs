//! Ring arenas for the reorder buffer and the replay queue.
//!
//! Both queues are bounded by `rob_entries` (flushed instructions move
//! ROB → replay one-for-one and the trace only feeds the ROB while the
//! replay queue is empty, so `rob.len + replay.len <= rob_entries` is an
//! invariant), which makes a fixed ring over struct-of-arrays storage
//! sufficient: no per-entry allocation on dispatch, retire, or flush.
//!
//! [`RobRing`] additionally maintains an open-addressed multiset of the
//! 8-byte words targeted by in-ROB stores, so the store-to-load
//! forwarding probe ([`RobRing::forwards_store`]) is a hash lookup
//! instead of a scan over every ROB entry per dispatched load.

use ise_engine::Cycle;
use ise_types::exception::ExceptionKind;
use ise_types::instr::InstrKind;
use ise_types::Instruction;

/// One in-flight instruction, as the retirement stage sees it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RobEntry {
    pub instr: Instruction,
    pub complete_at: Cycle,
    pub fault: Option<ExceptionKind>,
    /// For atomics and SC stores: whether the memory access has been
    /// issued (they access memory non-speculatively at the ROB head).
    pub issued: bool,
}

fn store_word(instr: &Instruction) -> Option<u64> {
    match instr.kind {
        InstrKind::Store { addr, .. } => Some(addr.raw() >> 3),
        _ => None,
    }
}

/// The reorder buffer: a fixed-capacity FIFO ring in SoA layout.
#[derive(Debug)]
pub(crate) struct RobRing {
    instrs: Box<[Instruction]>,
    complete_at: Box<[Cycle]>,
    faults: Box<[Option<ExceptionKind>]>,
    issued: Box<[bool]>,
    head: usize,
    len: usize,
    ring_mask: usize,
    /// Open-addressed word -> count multiset of in-ROB store targets
    /// (tagged keys: `word + 1`, 0 = empty slot).
    word_keys: Box<[u64]>,
    word_counts: Box<[u32]>,
    word_mask: usize,
}

impl RobRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs capacity");
        let ring = capacity.next_power_of_two();
        // <= 50% load at full occupancy keeps probe chains short.
        let words = (capacity * 2).next_power_of_two();
        RobRing {
            instrs: vec![Instruction::other(); ring].into_boxed_slice(),
            complete_at: vec![0; ring].into_boxed_slice(),
            faults: vec![None; ring].into_boxed_slice(),
            issued: vec![false; ring].into_boxed_slice(),
            head: 0,
            len: 0,
            ring_mask: ring - 1,
            word_keys: vec![0; words].into_boxed_slice(),
            word_counts: vec![0; words].into_boxed_slice(),
            word_mask: words - 1,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot(&self, i: usize) -> usize {
        (self.head + i) & self.ring_mask
    }

    fn entry_at(&self, s: usize) -> RobEntry {
        RobEntry {
            instr: self.instrs[s],
            complete_at: self.complete_at[s],
            fault: self.faults[s],
            issued: self.issued[s],
        }
    }

    /// The oldest entry, by value.
    pub fn front(&self) -> Option<RobEntry> {
        (self.len > 0).then(|| self.entry_at(self.head))
    }

    /// Marks the head issued with its access outcome (atomics and SC
    /// stores issuing non-speculatively at the head).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn head_mark_issued(&mut self, complete_at: Cycle, fault: Option<ExceptionKind>) {
        assert!(self.len > 0, "no head to mark issued");
        self.issued[self.head] = true;
        self.complete_at[self.head] = complete_at;
        self.faults[self.head] = fault;
    }

    /// Appends a dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full (callers gate on `rob_entries`).
    pub fn push_back(&mut self, e: RobEntry) {
        assert!(self.len <= self.ring_mask, "ROB ring overflow");
        let s = self.slot(self.len);
        self.instrs[s] = e.instr;
        self.complete_at[s] = e.complete_at;
        self.faults[s] = e.fault;
        self.issued[s] = e.issued;
        self.len += 1;
        if let Some(w) = store_word(&e.instr) {
            self.word_insert(w);
        }
    }

    /// Retires the oldest entry.
    pub fn pop_front(&mut self) -> Option<Instruction> {
        if self.len == 0 {
            return None;
        }
        let instr = self.instrs[self.head];
        self.head = (self.head + 1) & self.ring_mask;
        self.len -= 1;
        if let Some(w) = store_word(&instr) {
            self.word_remove(w);
        }
        Some(instr)
    }

    /// Squashes the youngest entry (pipeline flush walks back to front).
    pub fn pop_back(&mut self) -> Option<Instruction> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let instr = self.instrs[self.slot(self.len)];
        if let Some(w) = store_word(&instr) {
            self.word_remove(w);
        }
        Some(instr)
    }

    /// Whether an in-ROB store targets the 8-byte word containing `word`
    /// (the `addr >> 3` key) — the store-to-load forwarding source.
    pub fn forwards_store(&self, word: u64) -> bool {
        let tagged = word + 1;
        let mut i = Self::hash(word) & self.word_mask;
        loop {
            let k = self.word_keys[i];
            if k == tagged {
                return true;
            }
            if k == 0 {
                return false;
            }
            i = (i + 1) & self.word_mask;
        }
    }

    fn hash(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    fn word_insert(&mut self, word: u64) {
        let tagged = word + 1;
        let mut i = Self::hash(word) & self.word_mask;
        loop {
            let k = self.word_keys[i];
            if k == tagged {
                self.word_counts[i] += 1;
                return;
            }
            if k == 0 {
                self.word_keys[i] = tagged;
                self.word_counts[i] = 1;
                return;
            }
            i = (i + 1) & self.word_mask;
        }
    }

    fn word_remove(&mut self, word: u64) {
        let tagged = word + 1;
        let mut i = Self::hash(word) & self.word_mask;
        while self.word_keys[i] != tagged {
            debug_assert_ne!(self.word_keys[i], 0, "removing an untracked store word");
            i = (i + 1) & self.word_mask;
        }
        self.word_counts[i] -= 1;
        if self.word_counts[i] == 0 {
            self.word_remove_at(i);
        }
    }

    /// Saves the logical FIFO contents: occupancy, then entries oldest →
    /// youngest. Ring slot positions and the store-word index layout are
    /// rebuild artifacts (the restore replays `push_back`, which
    /// re-derives both), so they are *not* part of the audited snapshot
    /// contract.
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        use ise_types::persist::Persist;
        w.section(*b"ROB0", |w| {
            w.usize(self.len);
            for i in 0..self.len {
                let e = self.entry_at(self.slot(i));
                e.instr.save(w);
                w.u64(e.complete_at);
                e.fault.save(w);
                w.bool(e.issued);
            }
        });
    }

    /// Rebuilds a ring of `capacity` entries by replaying the saved
    /// entries through [`RobRing::push_back`].
    pub fn restore_state(
        r: &mut ise_types::persist::Reader,
        capacity: usize,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"ROB0", |r| {
            let len = r.usize()?;
            if len > capacity {
                return Err(PersistError::Corrupt("ROB occupancy beyond capacity"));
            }
            let mut ring = RobRing::new(capacity);
            for _ in 0..len {
                let instr = Persist::restore(r)?;
                let complete_at = r.u64()?;
                let fault = Persist::restore(r)?;
                let issued = r.bool()?;
                ring.push_back(RobEntry {
                    instr,
                    complete_at,
                    fault,
                    issued,
                });
            }
            Ok(ring)
        })
    }

    /// Removes the index entry at `pos`, back-shifting displaced
    /// neighbours so linear probe chains stay intact without tombstones.
    fn word_remove_at(&mut self, mut pos: usize) {
        let mask = self.word_mask;
        self.word_keys[pos] = 0;
        let mut cur = (pos + 1) & mask;
        while self.word_keys[cur] != 0 {
            let ideal = Self::hash(self.word_keys[cur] - 1) & mask;
            // `cur` may fill the hole iff the hole lies on its probe path.
            let d_hole = pos.wrapping_sub(ideal) & mask;
            let d_cur = cur.wrapping_sub(ideal) & mask;
            if d_hole < d_cur {
                self.word_keys[pos] = self.word_keys[cur];
                self.word_counts[pos] = self.word_counts[cur];
                self.word_keys[cur] = 0;
                pos = cur;
            }
            cur = (cur + 1) & mask;
        }
    }
}

/// The replay queue: flushed instructions awaiting re-dispatch, oldest
/// first. A fixed ring sized like the ROB (see the module docs for why
/// that bound holds); flushes prepend, dispatch pops from the front.
#[derive(Debug)]
pub(crate) struct ReplayRing {
    instrs: Box<[Instruction]>,
    head: usize,
    len: usize,
    ring_mask: usize,
}

impl ReplayRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay queue needs capacity");
        let ring = capacity.next_power_of_two();
        ReplayRing {
            instrs: vec![Instruction::other(); ring].into_boxed_slice(),
            head: 0,
            len: 0,
            ring_mask: ring - 1,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Prepends a squashed instruction (it is older than everything
    /// already queued).
    ///
    /// # Panics
    ///
    /// Panics if the ring is full.
    pub fn push_front(&mut self, instr: Instruction) {
        assert!(self.len <= self.ring_mask, "replay ring overflow");
        self.head = self.head.wrapping_sub(1) & self.ring_mask;
        self.instrs[self.head] = instr;
        self.len += 1;
    }

    /// Pops the oldest queued instruction.
    pub fn pop_front(&mut self) -> Option<Instruction> {
        if self.len == 0 {
            return None;
        }
        let instr = self.instrs[self.head];
        self.head = (self.head + 1) & self.ring_mask;
        self.len -= 1;
        Some(instr)
    }

    /// Saves the queued instructions oldest → youngest.
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        use ise_types::persist::Persist;
        w.section(*b"RPLY", |w| {
            w.usize(self.len);
            for i in 0..self.len {
                self.instrs[(self.head + i) & self.ring_mask].save(w);
            }
        });
    }

    /// Rebuilds a ring of `capacity` entries. Replays `push_front` in
    /// reverse saved order (youngest first) so the oldest instruction
    /// ends up at the front, as it was.
    pub fn restore_state(
        r: &mut ise_types::persist::Reader,
        capacity: usize,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"RPLY", |r| {
            let len = r.usize()?;
            if len > capacity {
                return Err(PersistError::Corrupt("replay occupancy beyond capacity"));
            }
            let mut instrs = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                instrs.push(Instruction::restore(r)?);
            }
            let mut ring = ReplayRing::new(capacity);
            for instr in instrs.into_iter().rev() {
                ring.push_front(instr);
            }
            Ok(ring)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::addr::Addr;
    use ise_types::instr::Reg;
    use std::collections::VecDeque;

    fn lcg(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x >> 33
    }

    #[test]
    fn ring_matches_naive_deque_under_random_ops() {
        // Differential: the SoA ring plus its store-word index must agree
        // with a naive `VecDeque<RobEntry>` (the pre-rework layout, with
        // forwarding as a linear scan) under a random op mix.
        let cap = 16;
        let mut ring = RobRing::new(cap);
        let mut naive: VecDeque<RobEntry> = VecDeque::new();
        let mut x = 0x5eed_cafe_f00d_0001u64;
        for step in 0..20_000u64 {
            match lcg(&mut x) % 10 {
                // Push (bounded like dispatch is).
                0..=4 => {
                    if naive.len() < cap {
                        let instr = if lcg(&mut x).is_multiple_of(2) {
                            Instruction::store(Addr::new((lcg(&mut x) % 96) * 8), step)
                        } else {
                            Instruction::load(Addr::new((lcg(&mut x) % 96) * 8), Reg(0))
                        };
                        let e = RobEntry {
                            instr,
                            complete_at: lcg(&mut x) % 1000,
                            fault: None,
                            issued: false,
                        };
                        ring.push_back(e);
                        naive.push_back(e);
                    }
                }
                5..=6 => {
                    assert_eq!(
                        ring.pop_front().map(|i| i.kind),
                        naive.pop_front().map(|e| e.instr.kind)
                    );
                }
                7 => {
                    assert_eq!(
                        ring.pop_back().map(|i| i.kind),
                        naive.pop_back().map(|e| e.instr.kind)
                    );
                }
                8 => {
                    if !naive.is_empty() {
                        let c = lcg(&mut x) % 500;
                        ring.head_mark_issued(c, None);
                        let h = naive.front_mut().unwrap();
                        h.issued = true;
                        h.complete_at = c;
                    }
                }
                _ => {
                    let word = lcg(&mut x) % 96;
                    let scan = naive.iter().any(|e| {
                        matches!(e.instr.kind,
                            InstrKind::Store { addr, .. } if addr.raw() >> 3 == word)
                    });
                    assert_eq!(ring.forwards_store(word), scan, "word {word} at {step}");
                }
            }
            assert_eq!(ring.len(), naive.len());
            match (ring.front(), naive.front()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.instr.kind, b.instr.kind);
                    assert_eq!(a.complete_at, b.complete_at);
                    assert_eq!(a.issued, b.issued);
                }
                (a, b) => panic!("front diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn replay_ring_is_a_deque_front() {
        let mut r = ReplayRing::new(8);
        assert!(r.is_empty());
        r.push_front(Instruction::store(Addr::new(8), 1));
        r.push_front(Instruction::store(Addr::new(16), 2));
        // Last pushed is oldest, so it pops first.
        assert!(matches!(
            r.pop_front().unwrap().kind,
            InstrKind::Store { addr, .. } if addr.raw() == 16
        ));
        assert!(matches!(
            r.pop_front().unwrap().kind,
            InstrKind::Store { addr, .. } if addr.raw() == 8
        ));
        assert!(r.pop_front().is_none());
    }

    #[test]
    fn rob_persist_round_trip_rebuilds_word_index() {
        use ise_types::persist::{Reader, Writer};
        let mut ring = RobRing::new(8);
        // Wrap the head so saved logical order differs from slot order.
        for i in 0..5u64 {
            ring.push_back(RobEntry {
                instr: Instruction::store(Addr::new(i * 8), i),
                complete_at: 10 + i,
                fault: None,
                issued: false,
            });
        }
        ring.pop_front();
        ring.pop_front();
        ring.push_back(RobEntry {
            instr: Instruction::load(Addr::new(0x40), Reg(1)),
            complete_at: 99,
            fault: Some(ise_types::exception::ExceptionKind::BusError),
            issued: true,
        });
        let mut w = Writer::container();
        ring.save_state(&mut w);
        let bytes = w.finish();
        let mut r = Reader::container(&bytes).unwrap();
        let back = RobRing::restore_state(&mut r, 8).unwrap();
        // Re-save is byte-identical: logical order is the canonical form.
        let mut w2 = Writer::container();
        back.save_state(&mut w2);
        assert_eq!(w2.finish(), bytes);
        assert_eq!(back.len(), ring.len());
        let (a, b) = (back.front().unwrap(), ring.front().unwrap());
        assert_eq!(a.instr, b.instr);
        assert_eq!(a.complete_at, b.complete_at);
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.issued, b.issued);
        // The store-word multiset was rebuilt by the push_back replay.
        for word in 0..8u64 {
            assert_eq!(back.forwards_store(word), ring.forwards_store(word));
        }
    }

    #[test]
    fn rob_restore_rejects_occupancy_beyond_capacity() {
        use ise_types::persist::{PersistError, Reader, Writer};
        let mut ring = RobRing::new(8);
        for i in 0..6u64 {
            ring.push_back(RobEntry {
                instr: Instruction::store(Addr::new(i * 8), i),
                complete_at: 0,
                fault: None,
                issued: false,
            });
        }
        let mut w = Writer::container();
        ring.save_state(&mut w);
        let bytes = w.finish();
        let mut r = Reader::container(&bytes).unwrap();
        assert!(matches!(
            RobRing::restore_state(&mut r, 4),
            Err(PersistError::Corrupt("ROB occupancy beyond capacity"))
        ));
    }

    #[test]
    fn replay_persist_round_trip_preserves_pop_order() {
        use ise_types::persist::{Reader, Writer};
        let mut ring = ReplayRing::new(8);
        for i in 0..4u64 {
            ring.push_front(Instruction::store(Addr::new(i * 8), i));
        }
        let mut w = Writer::container();
        ring.save_state(&mut w);
        let bytes = w.finish();
        let mut r = Reader::container(&bytes).unwrap();
        let mut back = ReplayRing::restore_state(&mut r, 8).unwrap();
        let mut w2 = Writer::container();
        back.save_state(&mut w2);
        assert_eq!(w2.finish(), bytes);
        loop {
            let (a, b) = (ring.pop_front(), back.pop_front());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn word_index_survives_wraparound_churn() {
        // Push/pop far past the ring size so head wraps many times; the
        // word index must stay exact throughout.
        let mut ring = RobRing::new(4);
        for i in 0..1000u64 {
            ring.push_back(RobEntry {
                instr: Instruction::store(Addr::new((i % 7) * 8), i),
                complete_at: 0,
                fault: None,
                issued: false,
            });
            assert!(ring.forwards_store(i % 7));
            if i % 3 == 0 {
                ring.pop_back();
            } else {
                ring.pop_front();
            }
            assert_eq!(ring.len(), 0, "every iteration drains what it pushed");
        }
        for w in 0..7 {
            assert!(!ring.forwards_store(w), "empty ROB forwards nothing");
        }
    }
}
