//! The out-of-order core pipeline.
//!
//! One [`Core`] is stepped one cycle at a time against a shared
//! [`MemoryHierarchy`]. Each step: (1) pump store-buffer drains and detect
//! imprecise store exceptions, (2) retire completed instructions in order
//! up to the core width, (3) fetch/dispatch new instructions into the ROB.
//!
//! Exceptions surface as [`StepOutcome`] values; the embedding system
//! (ise-sim) routes them through the FSBC/FSB and the OS model and then
//! calls [`Core::resume_at`]. The core itself never blocks on software.

use crate::rob::{ReplayRing, RobEntry, RobRing};
use crate::store_buffer::{DrainFault, StoreBuffer};
use crate::trace::{PersistTrace, TraceSource};
use ise_engine::{cycle_skip_override, Cycle};
use ise_mem::hierarchy::{Access, MemoryHierarchy};
use ise_types::addr::{Addr, ByteMask};
use ise_types::config::CoreConfig;
use ise_types::exception::ExceptionKind;
use ise_types::instr::{FenceKind, InstrKind};
use ise_types::stats::CoreStats;
use ise_types::{CoreId, FaultingStoreEntry, Instruction};

/// What a single [`Core::step`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// Normal progress (possibly zero instructions retired this cycle).
    Progress,
    /// The core is waiting for a previously reported exception to be
    /// resolved (see [`Core::resume_at`]).
    Waiting,
    /// A store-buffer drain came back denied: the whole buffer has been
    /// drained (same-stream, §4.6) and the pipeline flushed. The entries
    /// must be written to this core's FSB and the OS handler invoked.
    Imprecise(Vec<FaultingStoreEntry>),
    /// A precise exception is pending on the oldest instruction (a load or
    /// atomic whose access was denied). The store buffer is already empty,
    /// as §5.3 requires. The OS must resolve it; the instruction then
    /// re-executes.
    Precise {
        /// Faulting address.
        addr: Addr,
        /// Exception kind.
        kind: ExceptionKind,
    },
    /// Trace exhausted, ROB and store buffer empty: the program finished.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    /// Stalled until the OS resumes us.
    WaitResume,
    Finished,
}

/// One simulated out-of-order core.
pub struct Core<T> {
    id: CoreId,
    cfg: CoreConfig,
    trace: T,
    trace_done: bool,
    rob: RobRing,
    /// Instructions squashed by a flush, awaiting re-dispatch (oldest
    /// first). Refilled before pulling from the trace.
    replay: ReplayRing,
    sb: StoreBuffer,
    state: CoreState,
    resume_at: Cycle,
    /// Whether the most recent [`Core::step`] changed any state beyond
    /// the per-cycle stall accounting. A "dead" step (no drain
    /// completion/issue, no retirement, no dispatch) lets the
    /// cycle-skipping clock jump ahead; see [`Core::next_event`].
    step_activity: bool,
    /// Set when a precise fault was reported and the OS has resolved it:
    /// the faulting instruction's next access must succeed-or-re-fault.
    stats: CoreStats,
}

/// Which stall counter one dead cycle charges (see
/// [`Core::charge_idle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdleCharge {
    /// No counter: the head is still computing or the ROB is empty.
    Nothing,
    /// `store_stall_cycles`: retire blocked by a store.
    StoreStall,
    /// `sync_stall_cycles`: retire blocked by a fence/atomic/precise
    /// drain.
    SyncStall,
}

impl<T> std::fmt::Debug for Core<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("rob", &self.rob.len())
            .field("sb", &self.sb.len())
            .finish_non_exhaustive()
    }
}

impl<T: TraceSource> Core<T> {
    /// Creates a core executing `trace` under `cfg`.
    pub fn new(id: CoreId, cfg: CoreConfig, trace: T) -> Self {
        Core {
            id,
            cfg,
            trace,
            trace_done: false,
            rob: RobRing::new(cfg.rob_entries),
            replay: ReplayRing::new(cfg.rob_entries),
            sb: StoreBuffer::new(id, cfg.sb_entries, cfg.model),
            state: CoreState::Running,
            resume_at: 0,
            step_activity: true,
            stats: CoreStats::default(),
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Statistics so far. `cycles` is maintained by [`Core::step`].
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Exports this core's pipeline and store-buffer counters into the
    /// shared telemetry registry, keyed `core<N>.<counter>` in a fixed
    /// order — the per-core shard of the system-wide metrics spine.
    pub fn export_telemetry(&self, reg: &mut ise_telemetry::Registry) {
        let n = self.id.index();
        reg.add(&format!("core{n}.retired"), self.stats.retired);
        reg.add(&format!("core{n}.cycles"), self.stats.cycles);
        reg.add(
            &format!("core{n}.store_stall_cycles"),
            self.stats.store_stall_cycles,
        );
        reg.add(
            &format!("core{n}.sync_stall_cycles"),
            self.stats.sync_stall_cycles,
        );
        reg.add(&format!("core{n}.l1d_misses"), self.stats.l1d_misses);
        reg.add(
            &format!("core{n}.imprecise_exceptions"),
            self.stats.imprecise_exceptions,
        );
        reg.add(
            &format!("core{n}.faulting_stores"),
            self.stats.faulting_stores,
        );
        reg.add(
            &format!("core{n}.precise_exceptions"),
            self.stats.precise_exceptions,
        );
        reg.add(&format!("core{n}.sb_drained"), self.sb.drained());
        reg.add(&format!("core{n}.sb_coalesced"), self.sb.coalesced());
    }

    /// Store-buffer occupancy (exposed for the ASO study).
    pub fn sb_len(&self) -> usize {
        self.sb.len()
    }

    /// Store-buffer drains currently in flight (ASO: checkpoints needed).
    pub fn sb_in_flight(&self) -> usize {
        self.sb.in_flight()
    }

    /// Stores this core's buffer drained to the hierarchy — one term of
    /// the chaos campaigns' store-conservation invariant.
    pub fn sb_drained(&self) -> u64 {
        self.sb.drained()
    }

    /// Stores coalesced away in the buffer (WC only) — the other
    /// non-OS-applied term of store conservation.
    pub fn sb_coalesced(&self) -> u64 {
        self.sb.coalesced()
    }

    /// Stores ever retired into this core's buffer — the left-hand side
    /// of the killed-core conservation check (see
    /// [`StoreBuffer::retired`]).
    pub fn sb_retired(&self) -> u64 {
        self.sb.retired()
    }

    /// Stores still sitting in the buffer (neither drained, coalesced,
    /// nor handed to the FSB) — the residual term of killed-core
    /// conservation.
    pub fn sb_pending(&self) -> usize {
        self.sb.len()
    }

    /// Caps concurrently in-flight store-buffer drains (the ASO
    /// checkpoint budget; see `ise-aso`).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_sb_max_in_flight(&mut self, cap: usize) {
        self.sb.set_max_in_flight(cap);
    }

    /// Whether the core has fully finished its trace.
    pub fn is_finished(&self) -> bool {
        self.state == CoreState::Finished
    }

    /// Stalls a running core until `cycle` (external interrupt delivery:
    /// the handler borrows the pipeline without flushing it — interrupts
    /// do not require draining the store buffer, paper §5.3).
    pub fn stall_until(&mut self, cycle: Cycle) {
        if self.state == CoreState::Running {
            self.resume_at = self.resume_at.max(cycle);
        }
    }

    /// Resumes the core at `cycle` after the OS finished handling the
    /// exception it reported.
    ///
    /// # Panics
    ///
    /// Panics if the core was not waiting on an exception.
    pub fn resume_at(&mut self, cycle: Cycle) {
        assert_eq!(
            self.state,
            CoreState::WaitResume,
            "resume_at without a pending exception"
        );
        self.state = CoreState::Running;
        self.resume_at = cycle;
    }

    fn flush_pipeline(&mut self) {
        // Move every uncommitted instruction back for re-dispatch, oldest
        // first, ahead of anything already queued for replay.
        while let Some(instr) = self.rob.pop_back() {
            self.replay.push_front(instr);
        }
    }

    fn next_instruction(&mut self) -> Option<Instruction> {
        if let Some(i) = self.replay.pop_front() {
            return Some(i);
        }
        if self.trace_done {
            return None;
        }
        match self.trace.next_instr() {
            Some(i) => Some(i),
            None => {
                self.trace_done = true;
                None
            }
        }
    }

    /// Handles a detected drain fault per the configured drain policy:
    /// same-stream (§4.6, the design) drains the whole store buffer to
    /// the FSB; split-stream (§4.5, the ablation) extracts only the
    /// faulting entry and leaves younger stores draining to memory.
    /// Either way the pipeline flushes and fetch stops (paper §5.3).
    fn take_imprecise(&mut self, fault: DrainFault) -> StepOutcome {
        let entries = match self.cfg.drain_policy {
            ise_types::DrainPolicy::SameStream => self.sb.drain_to_fsb(fault),
            ise_types::DrainPolicy::SplitStream => self
                .sb
                .extract_faulting(fault)
                // `pump` reported this index against the same buffer state
                // this cycle; it cannot be stale.
                .unwrap_or_else(|e| unreachable!("{e}")),
        };
        self.flush_pipeline();
        self.state = CoreState::WaitResume;
        self.stats.imprecise_exceptions += 1;
        self.stats.faulting_stores += entries.iter().filter(|e| e.is_faulting()).count() as u64;
        StepOutcome::Imprecise(entries)
    }

    /// Advances the core by one cycle.
    pub fn step(&mut self, now: Cycle, hier: &mut MemoryHierarchy) -> StepOutcome {
        match self.state {
            CoreState::Finished => return StepOutcome::Finished,
            CoreState::WaitResume => return StepOutcome::Waiting,
            CoreState::Running if now < self.resume_at => return StepOutcome::Waiting,
            CoreState::Running => {}
        }
        self.stats.cycles = self.stats.cycles.max(now + 1);
        // Assume activity until the normal exit proves otherwise, so the
        // exception paths (which return early) always count as active.
        self.step_activity = true;
        let sb_before = (self.sb.len(), self.sb.in_flight(), self.sb.drained());
        let mut issued_at_head = false;

        // 1. Store-buffer drains; a denied response triggers the
        //    imprecise path immediately.
        if let Some(fault) = self.sb.pump(now, hier) {
            return self.take_imprecise(fault);
        }

        // 2. In-order retirement.
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(head) = self.rob.front() else {
                break;
            };
            match head.instr.kind {
                InstrKind::Store { addr, value } if self.cfg.model.has_store_buffer() => {
                    if head.complete_at > now {
                        break; // address/data not ready
                    }
                    if !self.sb.has_space() {
                        self.stats.store_stall_cycles += 1;
                        break;
                    }
                    self.sb.push(addr, value, ByteMask::FULL);
                    self.rob.pop_front();
                    self.stats.retired += 1;
                    retired += 1;
                }
                InstrKind::Store { addr, .. } => {
                    // SC: the store accesses memory non-speculatively at
                    // the head of the ROB and must complete (fault-free)
                    // before retiring — the "disable the store buffer"
                    // baseline of §2.3 whose cost the paper quantifies.
                    if !head.issued {
                        let r = hier.access(Access::store(self.id, addr), now);
                        if r.latency > hier.config().l1d.latency {
                            self.stats.l1d_misses += 1;
                        }
                        self.rob.head_mark_issued(now + r.latency, r.fault);
                        issued_at_head = true;
                        self.stats.store_stall_cycles += 1;
                        break;
                    }
                    if head.complete_at > now {
                        self.stats.store_stall_cycles += 1;
                        break;
                    }
                    if let Some(kind) = head.fault {
                        return self.take_precise(head.instr, kind);
                    }
                    self.rob.pop_front();
                    self.stats.retired += 1;
                    retired += 1;
                }
                InstrKind::Load { .. } => {
                    if head.complete_at > now {
                        break;
                    }
                    if let Some(kind) = head.fault {
                        // Precise exception: drain the store buffer first
                        // (§5.3). If a drain faults meanwhile, the pump at
                        // the next step takes the imprecise path instead.
                        if !self.sb.is_empty() {
                            self.stats.sync_stall_cycles += 1;
                            break;
                        }
                        return self.take_precise(head.instr, kind);
                    }
                    self.rob.pop_front();
                    self.stats.retired += 1;
                    retired += 1;
                }
                InstrKind::Fence(kind) => {
                    let needs_empty = match kind {
                        FenceKind::Full | FenceKind::StoreStore => !self.sb.is_empty(),
                        // Loads already complete before retirement in this
                        // model, so load-load order is enforced for free.
                        FenceKind::LoadLoad => false,
                    };
                    if needs_empty {
                        self.stats.sync_stall_cycles += 1;
                        break;
                    }
                    self.rob.pop_front();
                    self.stats.retired += 1;
                    retired += 1;
                }
                InstrKind::Atomic { addr, .. } => {
                    // Atomics wait for the store buffer to drain, then
                    // perform their access non-speculatively at the head.
                    if !self.sb.is_empty() {
                        self.stats.sync_stall_cycles += 1;
                        break;
                    }
                    if !head.issued {
                        let r = hier.access(Access::store(self.id, addr), now);
                        self.rob.head_mark_issued(now + r.latency, r.fault);
                        issued_at_head = true;
                        break;
                    }
                    if head.complete_at > now {
                        self.stats.sync_stall_cycles += 1;
                        break;
                    }
                    if let Some(kind) = head.fault {
                        return self.take_precise(head.instr, kind);
                    }
                    self.rob.pop_front();
                    self.stats.retired += 1;
                    retired += 1;
                }
                InstrKind::Other { .. } => {
                    if head.complete_at > now {
                        break;
                    }
                    self.rob.pop_front();
                    self.stats.retired += 1;
                    retired += 1;
                }
            }
        }

        // 3. Fetch/dispatch.
        let mut dispatched = 0;
        while dispatched < self.cfg.width && self.rob.len() < self.cfg.rob_entries {
            let Some(instr) = self.next_instruction() else {
                break;
            };
            let entry = self.dispatch(instr, now, hier);
            self.rob.push_back(entry);
            dispatched += 1;
        }

        // A step is "dead" when it neither moved the store buffer
        // (completion or issue), retired, dispatched, nor issued a
        // head-of-ROB access: re-running it at a later cycle would make
        // the same decisions, so the clock may skip ahead (charging the
        // per-cycle stall counters in bulk — see `charge_idle`).
        self.step_activity = sb_before != (self.sb.len(), self.sb.in_flight(), self.sb.drained())
            || retired > 0
            || dispatched > 0
            || issued_at_head;

        if self.trace_done && self.replay.is_empty() && self.rob.is_empty() && self.sb.is_empty() {
            self.state = CoreState::Finished;
            return StepOutcome::Finished;
        }
        StepOutcome::Progress
    }

    /// The earliest future cycle at which stepping this core could do
    /// anything a dead step would not — the core's wake-up time for the
    /// cycle-skipping clock.
    ///
    /// Must be called after [`Core::step`] at `now`. The result is
    /// *conservative*: waking early is harmless (the step re-evaluates
    /// and charges exactly what the reference clock would have), waking
    /// late never happens because every state change is driven by one of
    /// the deadlines below:
    ///
    /// * a finished core never acts again (`Cycle::MAX`);
    /// * a core waiting on the OS acts only once `resume_at` is set
    ///   (`Cycle::MAX`; the embedding system resumes or kills it
    ///   synchronously within the same cycle it faulted);
    /// * a stalled-but-running core acts at `resume_at`;
    /// * after an *active* step, the very next cycle may differ
    ///   (`now + 1`);
    /// * after a dead step, only an in-flight drain completing or the
    ///   ROB head's `complete_at` arriving can change a decision.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        match self.state {
            CoreState::Finished => return Cycle::MAX,
            CoreState::WaitResume => return Cycle::MAX,
            CoreState::Running if now < self.resume_at => return self.resume_at,
            CoreState::Running => {}
        }
        if self.step_activity {
            return now + 1;
        }
        let mut next = Cycle::MAX;
        if let Some(c) = self.sb.next_completion() {
            // A PC drain that completed out of FIFO order can sit in the
            // past; clamp forward (the wake is a no-op re-evaluation).
            next = next.min(c.max(now + 1));
        }
        if let Some(head) = self.rob.front() {
            if head.complete_at > now {
                next = next.min(head.complete_at);
            }
        }
        if next == Cycle::MAX {
            // No deadline found — step every cycle (conservative; a dead
            // step with neither an in-flight drain nor a pending head
            // deadline resolves within one cycle anyway).
            next = now + 1;
        }
        next
    }

    /// Which stall counter one dead cycle at time `t` charges, given the
    /// decisions [`Core::step`] provably makes on a dead cycle. Mirrors
    /// the retirement stage's `break` arms exactly:
    ///
    /// * a buffered-model store whose data is ready but whose buffer is
    ///   full charges `store_stall_cycles`;
    /// * an issued SC store still awaiting its access charges
    ///   `store_stall_cycles`;
    /// * a completed-but-faulting load waiting for the store buffer to
    ///   drain charges `sync_stall_cycles`;
    /// * a full/store-store fence over a non-empty buffer charges
    ///   `sync_stall_cycles`;
    /// * an atomic waiting on the buffer, or issued and awaiting its
    ///   access, charges `sync_stall_cycles`;
    /// * everything else (head still computing, empty ROB) charges
    ///   nothing.
    fn idle_charge(&self, t: Cycle) -> IdleCharge {
        let Some(head) = self.rob.front() else {
            return IdleCharge::Nothing;
        };
        match head.instr.kind {
            InstrKind::Store { .. } if self.cfg.model.has_store_buffer() => {
                if head.complete_at <= t && !self.sb.has_space() {
                    IdleCharge::StoreStall
                } else {
                    IdleCharge::Nothing
                }
            }
            InstrKind::Store { .. } => {
                if head.issued && head.complete_at > t {
                    IdleCharge::StoreStall
                } else {
                    IdleCharge::Nothing
                }
            }
            InstrKind::Load { .. } => {
                if head.complete_at <= t && head.fault.is_some() && !self.sb.is_empty() {
                    IdleCharge::SyncStall
                } else {
                    IdleCharge::Nothing
                }
            }
            InstrKind::Fence(kind) => {
                let needs_empty = match kind {
                    FenceKind::Full | FenceKind::StoreStore => !self.sb.is_empty(),
                    FenceKind::LoadLoad => false,
                };
                if needs_empty {
                    IdleCharge::SyncStall
                } else {
                    IdleCharge::Nothing
                }
            }
            InstrKind::Atomic { .. } => {
                if !self.sb.is_empty() || (head.issued && head.complete_at > t) {
                    IdleCharge::SyncStall
                } else {
                    IdleCharge::Nothing
                }
            }
            InstrKind::Other { .. } => IdleCharge::Nothing,
        }
    }

    /// Bulk-charges the per-cycle stall accounting for `skipped` dead
    /// cycles following a step at `now` — cycles `now + 1` through
    /// `now + skipped` that the cycle-skipping clock did not execute.
    ///
    /// On every executed cycle the reference clock (a) advances
    /// `stats.cycles` and (b) charges at most one stall counter from the
    /// retirement stage's blocked arm. Because the skipped cycles are
    /// dead, no state changes across the window and the blocked arm's
    /// decision is constant (every deadline that could flip it bounds the
    /// window via [`Core::next_event`]), so charging `per-cycle × skipped`
    /// reproduces the reference counters exactly.
    pub fn charge_idle(&mut self, now: Cycle, skipped: u64) {
        if skipped == 0 || self.state != CoreState::Running || now < self.resume_at {
            // Finished/waiting cores never execute the charging path in
            // the reference loop either.
            return;
        }
        self.stats.cycles = self.stats.cycles.max(now + skipped + 1);
        match self.idle_charge(now + 1) {
            IdleCharge::Nothing => {}
            IdleCharge::StoreStall => self.stats.store_stall_cycles += skipped,
            IdleCharge::SyncStall => self.stats.sync_stall_cycles += skipped,
        }
    }

    fn take_precise(&mut self, instr: Instruction, kind: ExceptionKind) -> StepOutcome {
        let addr = instr
            .kind
            .addr()
            .expect("precise faults come from memory ops");
        self.flush_pipeline();
        self.state = CoreState::WaitResume;
        self.stats.precise_exceptions += 1;
        StepOutcome::Precise { addr, kind }
    }

    /// Whether an older, still-unretired store to the same 8-byte word
    /// sits in the ROB (store-to-load forwarding source).
    fn rob_forwards(&self, addr: Addr) -> bool {
        self.rob.forwards_store(addr.raw() >> 3)
    }

    fn dispatch(&mut self, instr: Instruction, now: Cycle, hier: &mut MemoryHierarchy) -> RobEntry {
        let mut fault = None;
        let mut issued = false;
        let complete_at = match instr.kind {
            InstrKind::Other { latency } => now + latency as u64,
            InstrKind::Fence(_) => now,
            InstrKind::Load { addr, .. } => {
                if self.sb.forwards(addr) || self.rob_forwards(addr) {
                    // Store-to-load forwarding from the store buffer or an
                    // older in-flight store: one-cycle bypass.
                    now + 1
                } else {
                    let r = hier.access(Access::load(self.id, addr), now);
                    fault = r.fault;
                    if r.latency > hier.config().l1d.latency {
                        self.stats.l1d_misses += 1;
                    }
                    now + r.latency
                }
            }
            InstrKind::Store { .. } => {
                // Address generation + data ready. PC/WC access memory
                // post-retirement via the store buffer; SC issues the
                // access non-speculatively once the store reaches the ROB
                // head (see the retirement stage).
                now + 1
            }
            InstrKind::Atomic { .. } => {
                issued = false;
                now + 1
            }
        };
        let _ = issued;
        RobEntry {
            instr,
            complete_at,
            fault,
            issued: false,
        }
    }
}

impl<T: PersistTrace> Core<T> {
    /// Saves the core's dynamic state under a `CORE` section: the trace
    /// cursor, pipeline rings, store buffer, stall/resume machine, and
    /// statistics. Static identity (`id`, `cfg`, the trace *contents*)
    /// is not serialized — the embedder rebuilds the core from
    /// configuration and then calls [`Core::restore_state`], which
    /// validates saved occupancies against that configuration.
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        use ise_types::persist::Persist;
        w.section(*b"CORE", |w| {
            self.trace.save_cursor(w);
            w.bool(self.trace_done);
            self.rob.save_state(w);
            self.replay.save_state(w);
            self.sb.save_state(w);
            w.u8(match self.state {
                CoreState::Running => 0,
                CoreState::WaitResume => 1,
                CoreState::Finished => 2,
            });
            w.u64(self.resume_at);
            w.bool(self.step_activity);
            self.stats.save(w);
        });
    }

    /// Restores the core in place from a [`Core::save_state`] stream.
    /// The core must have been built with the same configuration and
    /// trace contents the snapshot was taken against.
    pub fn restore_state(
        &mut self,
        r: &mut ise_types::persist::Reader,
    ) -> Result<(), ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"CORE", |r| {
            self.trace.restore_cursor(r)?;
            self.trace_done = r.bool()?;
            self.rob = RobRing::restore_state(r, self.cfg.rob_entries)?;
            self.replay = ReplayRing::restore_state(r, self.cfg.rob_entries)?;
            self.sb.restore_state(r)?;
            self.state = match r.u8()? {
                0 => CoreState::Running,
                1 => CoreState::WaitResume,
                2 => CoreState::Finished,
                _ => return Err(PersistError::Corrupt("CoreState discriminant")),
            };
            self.resume_at = r.u64()?;
            self.step_activity = r.bool()?;
            self.stats = Persist::restore(r)?;
            Ok(())
        })
    }
}

/// Runs a single core to completion against a hierarchy with no faults and
/// returns its stats — the building block of the Table 3 speedup study.
///
/// `max_cycles` bounds runaway executions. Uses the cycle-skipping clock
/// unless `ISE_CYCLE_SKIP=0` forces the reference per-cycle loop; the two
/// produce identical statistics (see [`run_to_completion_clocked`]).
///
/// # Panics
///
/// Panics if the core reports an exception (callers wanting exception
/// handling must embed the core in a system) or if `max_cycles` elapses.
pub fn run_to_completion<T: TraceSource>(
    core: &mut Core<T>,
    hier: &mut MemoryHierarchy,
    max_cycles: Cycle,
) -> CoreStats {
    run_to_completion_clocked(
        core,
        hier,
        max_cycles,
        cycle_skip_override().unwrap_or(true),
    )
}

/// [`run_to_completion`] with an explicit clock choice: `skip = false`
/// runs the reference `now += 1` loop, `skip = true` jumps the clock to
/// [`Core::next_event`] and bulk-charges the skipped window via
/// [`Core::charge_idle`]. Both produce identical [`CoreStats`]; the
/// differential tests pin that down.
///
/// # Panics
///
/// Same conditions as [`run_to_completion`]; the cycle budget trips at
/// the same cycle under either clock (jumps clamp to `max_cycles`).
pub fn run_to_completion_clocked<T: TraceSource>(
    core: &mut Core<T>,
    hier: &mut MemoryHierarchy,
    max_cycles: Cycle,
    skip: bool,
) -> CoreStats {
    let mut now = 0;
    loop {
        match core.step(now, hier) {
            StepOutcome::Finished => return core.stats(),
            StepOutcome::Progress | StepOutcome::Waiting => {}
            StepOutcome::Imprecise(_) | StepOutcome::Precise { .. } => {
                panic!("unexpected exception in run_to_completion")
            }
        }
        let next = if skip {
            core.next_event(now).clamp(now + 1, max_cycles)
        } else {
            now + 1
        };
        core.charge_idle(now, next - now - 1);
        now = next;
        assert!(now < max_cycles, "exceeded cycle budget");
    }
}

/// Steps a set of cores round-robin against a shared hierarchy until all
/// finish, returning per-core stats — the multicore building block of the
/// Table 3 study (exception-free runs only).
///
/// Uses the cycle-skipping clock unless `ISE_CYCLE_SKIP=0` forces the
/// reference loop (see [`run_multicore_clocked`]).
///
/// # Panics
///
/// Panics if any core reports an exception or `max_cycles` elapses.
pub fn run_multicore<T: TraceSource>(
    cores: &mut [Core<T>],
    hier: &mut MemoryHierarchy,
    max_cycles: Cycle,
) -> Vec<CoreStats> {
    run_multicore_clocked(
        cores,
        hier,
        max_cycles,
        cycle_skip_override().unwrap_or(true),
    )
}

/// [`run_multicore`] with an explicit clock choice. Under `skip = true`
/// the clock jumps to the minimum of every unfinished core's
/// [`Core::next_event`] — a global window in which *no* core acts, so no
/// core's view of the shared hierarchy can diverge from the reference
/// schedule — and each core is bulk-charged for the window.
///
/// # Panics
///
/// Same conditions as [`run_multicore`].
pub fn run_multicore_clocked<T: TraceSource>(
    cores: &mut [Core<T>],
    hier: &mut MemoryHierarchy,
    max_cycles: Cycle,
    skip: bool,
) -> Vec<CoreStats> {
    let mut now = 0;
    loop {
        let mut all_done = true;
        for core in cores.iter_mut() {
            match core.step(now, hier) {
                StepOutcome::Finished => {}
                StepOutcome::Progress | StepOutcome::Waiting => all_done = false,
                StepOutcome::Imprecise(_) | StepOutcome::Precise { .. } => {
                    panic!("unexpected exception in run_multicore")
                }
            }
        }
        if all_done {
            return cores.iter().map(|c| c.stats()).collect();
        }
        let next = if skip {
            cores
                .iter()
                .map(|c| c.next_event(now))
                .min()
                .unwrap_or(Cycle::MAX)
                .clamp(now + 1, max_cycles)
        } else {
            now + 1
        };
        for core in cores.iter_mut() {
            core.charge_idle(now, next - now - 1);
        }
        now = next;
        assert!(now < max_cycles, "exceeded cycle budget");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use ise_types::config::SystemConfig;
    use ise_types::instr::Reg;
    use ise_types::model::ConsistencyModel;

    fn hier() -> MemoryHierarchy {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 1;
        MemoryHierarchy::new(cfg)
    }

    fn core_with(model: ConsistencyModel, instrs: Vec<Instruction>) -> Core<VecTrace> {
        let cfg = CoreConfig::isca23().with_model(model);
        Core::new(CoreId(0), cfg, VecTrace::new(instrs))
    }

    fn store_heavy_trace(n: u64) -> Vec<Instruction> {
        // Stores to distinct lines, interleaved with ALU work: the WC-vs-SC
        // separation case.
        let mut v = Vec::new();
        for i in 0..n {
            v.push(Instruction::store(Addr::new(i * 64), i));
            for _ in 0..3 {
                v.push(Instruction::other());
            }
        }
        v
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut c = core_with(ConsistencyModel::Wc, vec![]);
        let mut h = hier();
        assert_eq!(c.step(0, &mut h), StepOutcome::Finished);
        assert!(c.is_finished());
    }

    #[test]
    fn alu_trace_retires_at_full_width() {
        let n = 400;
        let mut c = core_with(ConsistencyModel::Wc, vec![Instruction::other(); n]);
        let mut h = hier();
        let stats = run_to_completion(&mut c, &mut h, 10_000);
        assert_eq!(stats.retired, n as u64);
        // 4-wide: ~n/4 cycles plus small pipeline fill.
        assert!(
            stats.cycles <= (n as u64 / 4) + 16,
            "cycles {}",
            stats.cycles
        );
    }

    #[test]
    fn wc_outperforms_sc_on_store_misses() {
        let trace = store_heavy_trace(200);
        let mut h1 = hier();
        let mut sc = core_with(ConsistencyModel::Sc, trace.clone());
        let sc_stats = run_to_completion(&mut sc, &mut h1, 10_000_000);
        let mut h2 = hier();
        let mut wc = core_with(ConsistencyModel::Wc, trace);
        let wc_stats = run_to_completion(&mut wc, &mut h2, 10_000_000);
        let speedup = sc_stats.cycles as f64 / wc_stats.cycles as f64;
        assert!(
            speedup > 1.2,
            "WC should clearly beat SC on store misses, got {speedup:.2}x \
             (SC {} vs WC {})",
            sc_stats.cycles,
            wc_stats.cycles
        );
    }

    #[test]
    fn pc_between_sc_and_wc() {
        let trace = store_heavy_trace(200);
        let run = |m| {
            let mut h = hier();
            let mut c = core_with(m, trace.clone());
            run_to_completion(&mut c, &mut h, 10_000_000).cycles
        };
        let (sc, pc, wc) = (
            run(ConsistencyModel::Sc),
            run(ConsistencyModel::Pc),
            run(ConsistencyModel::Wc),
        );
        assert!(wc <= pc, "WC {wc} should be <= PC {pc}");
        assert!(pc <= sc, "PC {pc} should be <= SC {sc}");
    }

    #[test]
    fn fence_waits_for_store_buffer() {
        let trace = vec![
            Instruction::store(Addr::new(0x1000), 1),
            Instruction::fence(FenceKind::Full),
            Instruction::other(),
        ];
        let mut c = core_with(ConsistencyModel::Wc, trace);
        let mut h = hier();
        let stats = run_to_completion(&mut c, &mut h, 100_000);
        assert!(
            stats.sync_stall_cycles > 0,
            "fence must stall for the drain"
        );
        assert_eq!(stats.retired, 3);
    }

    #[test]
    fn atomic_drains_and_accesses() {
        let trace = vec![
            Instruction::store(Addr::new(0x2000), 1),
            Instruction::atomic(Addr::new(0x3000), 1, Reg(0)),
        ];
        let mut c = core_with(ConsistencyModel::Wc, trace);
        let mut h = hier();
        let stats = run_to_completion(&mut c, &mut h, 100_000);
        assert_eq!(stats.retired, 2);
        assert!(stats.sync_stall_cycles > 0);
    }

    #[test]
    fn store_to_load_forwarding_is_fast() {
        let a = Addr::new(0x4000);
        let trace = vec![Instruction::store(a, 7), Instruction::load(a, Reg(0))];
        let mut c = core_with(ConsistencyModel::Wc, trace);
        let mut h = hier();
        let stats = run_to_completion(&mut c, &mut h, 100_000);
        assert_eq!(stats.retired, 2);
        // The load must not have missed to memory.
        assert_eq!(stats.l1d_misses, 0);
    }

    struct DenyPage;
    impl ise_mem::FaultOracle for DenyPage {
        fn check(&self, addr: Addr, _s: bool) -> Option<ExceptionKind> {
            (addr.page().index() == 0x100).then_some(ExceptionKind::BusError)
        }
    }

    fn faulting_hier() -> MemoryHierarchy {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 1;
        MemoryHierarchy::with_oracle(cfg, std::rc::Rc::new(DenyPage))
    }

    #[test]
    fn store_fault_raises_imprecise_with_same_stream_drain() {
        let bad = Addr::new(0x100 * 4096);
        let trace = vec![
            Instruction::store(bad, 1),
            Instruction::store(Addr::new(0x9000), 2), // younger, non-faulting
            Instruction::other(),
        ];
        let mut c = core_with(ConsistencyModel::Pc, trace);
        let mut h = faulting_hier();
        let mut now = 0;
        loop {
            match c.step(now, &mut h) {
                StepOutcome::Imprecise(entries) => {
                    // Same-stream: both stores drained, in program order.
                    assert_eq!(entries.len(), 2);
                    assert_eq!(entries[0].addr, bad);
                    assert!(entries[0].is_faulting());
                    assert_eq!(entries[1].addr, Addr::new(0x9000));
                    assert!(!entries[1].is_faulting());
                    assert_eq!(c.stats().imprecise_exceptions, 1);
                    return;
                }
                StepOutcome::Precise { .. } => panic!("store fault must be imprecise"),
                StepOutcome::Finished => panic!("must fault before finishing"),
                _ => {}
            }
            now += 1;
            assert!(now < 100_000);
        }
    }

    #[test]
    fn split_stream_extracts_only_the_faulting_store() {
        let bad = Addr::new(0x100 * 4096);
        let trace = vec![
            Instruction::store(bad, 1),
            Instruction::store(Addr::new(0x9000), 2), // younger, clean
        ];
        let mut cfg = CoreConfig::isca23().with_model(ConsistencyModel::Pc);
        cfg.drain_policy = ise_types::DrainPolicy::SplitStream;
        let mut c = Core::new(CoreId(0), cfg, VecTrace::new(trace));
        let mut h = faulting_hier();
        let mut now = 0;
        loop {
            match c.step(now, &mut h) {
                StepOutcome::Imprecise(entries) => {
                    assert_eq!(
                        entries.len(),
                        1,
                        "split-stream sends only the faulting store"
                    );
                    assert_eq!(entries[0].addr, bad);
                    assert!(entries[0].is_faulting());
                    // The clean younger store stays in the SB.
                    assert_eq!(c.sb_len(), 1);
                    // Resume; the remaining store drains to memory and the
                    // core finishes.
                    c.resume_at(now + 100);
                    break;
                }
                StepOutcome::Finished => panic!("must fault first"),
                _ => {}
            }
            now += 1;
            assert!(now < 100_000);
        }
        let mut t = now + 100;
        loop {
            match c.step(t, &mut h) {
                StepOutcome::Finished => break,
                StepOutcome::Imprecise(_) | StepOutcome::Precise { .. } => {
                    panic!("remaining store is clean; no further exceptions")
                }
                _ => {}
            }
            t += 1;
            assert!(t < now + 100_000);
        }
        assert_eq!(c.stats().retired, 2);
    }

    #[test]
    fn load_fault_raises_precise_and_reexecutes() {
        let bad = Addr::new(0x100 * 4096);
        let trace = vec![Instruction::load(bad, Reg(0)), Instruction::other()];
        let mut c = core_with(ConsistencyModel::Wc, trace);
        let mut h = faulting_hier();
        let mut now = 0;
        let mut seen_precise = false;
        loop {
            match c.step(now, &mut h) {
                StepOutcome::Precise { addr, kind } => {
                    assert_eq!(addr, bad);
                    assert_eq!(kind, ExceptionKind::BusError);
                    seen_precise = true;
                    // "OS" resolves nothing (page still faults), but we
                    // can still resume; the load will fault again. To
                    // terminate the test, resume and expect a second
                    // precise fault.
                    c.resume_at(now + 10);
                    if c.stats().precise_exceptions >= 2 {
                        break;
                    }
                }
                StepOutcome::Finished => panic!("faulting load cannot finish"),
                _ => {}
            }
            now += 1;
            if now > 200_000 {
                break;
            }
        }
        assert!(seen_precise);
        assert!(
            c.stats().precise_exceptions >= 2,
            "load must re-execute and re-fault"
        );
    }

    #[test]
    fn sc_store_fault_is_precise() {
        let bad = Addr::new(0x100 * 4096);
        let trace = vec![Instruction::store(bad, 1)];
        let mut c = core_with(ConsistencyModel::Sc, trace);
        let mut h = faulting_hier();
        let mut now = 0;
        loop {
            match c.step(now, &mut h) {
                StepOutcome::Precise { addr, .. } => {
                    assert_eq!(addr, bad);
                    return;
                }
                StepOutcome::Imprecise(_) => panic!("SC has no store buffer: must be precise"),
                StepOutcome::Finished => panic!("must fault"),
                _ => {}
            }
            now += 1;
            assert!(now < 100_000);
        }
    }

    #[test]
    fn cycle_skip_matches_reference_per_model() {
        for model in [
            ConsistencyModel::Sc,
            ConsistencyModel::Pc,
            ConsistencyModel::Wc,
        ] {
            let trace = store_heavy_trace(120);
            let mut h_ref = hier();
            let mut c_ref = core_with(model, trace.clone());
            let reference = run_to_completion_clocked(&mut c_ref, &mut h_ref, 10_000_000, false);
            let mut h_skip = hier();
            let mut c_skip = core_with(model, trace);
            let skipped = run_to_completion_clocked(&mut c_skip, &mut h_skip, 10_000_000, true);
            assert_eq!(reference, skipped, "model {model:?}");
        }
    }

    #[test]
    fn cycle_skip_matches_reference_with_fences_and_atomics() {
        let mut trace = Vec::new();
        for i in 0..40u64 {
            trace.push(Instruction::store(Addr::new(i * 64), i));
            if i % 5 == 0 {
                trace.push(Instruction::fence(FenceKind::Full));
            }
            if i % 7 == 0 {
                trace.push(Instruction::atomic(Addr::new(0x5_0000 + i * 64), i, Reg(0)));
            }
            trace.push(Instruction::load(Addr::new(0x8_0000 + i * 64), Reg(1)));
        }
        for model in [ConsistencyModel::Pc, ConsistencyModel::Wc] {
            let mut h_ref = hier();
            let mut c_ref = core_with(model, trace.clone());
            let reference = run_to_completion_clocked(&mut c_ref, &mut h_ref, 10_000_000, false);
            let mut h_skip = hier();
            let mut c_skip = core_with(model, trace.clone());
            let skipped = run_to_completion_clocked(&mut c_skip, &mut h_skip, 10_000_000, true);
            assert_eq!(reference, skipped, "model {model:?}");
            assert!(
                reference.sync_stall_cycles > 0,
                "workload must exercise sync stalls for the comparison to bite"
            );
        }
    }

    #[test]
    fn cycle_skip_matches_reference_multicore() {
        let build = |model| {
            let cfg = CoreConfig::isca23().with_model(model);
            vec![
                Core::new(CoreId(0), cfg, VecTrace::new(store_heavy_trace(80))),
                Core::new(
                    CoreId(1),
                    cfg,
                    VecTrace::new(
                        (0..160)
                            .map(|i| Instruction::load(Addr::new(0x10_0000 + i * 64), Reg(0)))
                            .collect(),
                    ),
                ),
            ]
        };
        for model in [ConsistencyModel::Sc, ConsistencyModel::Wc] {
            let mut h_ref = hier();
            let mut ref_cores = build(model);
            let reference = run_multicore_clocked(&mut ref_cores, &mut h_ref, 10_000_000, false);
            let mut h_skip = hier();
            let mut skip_cores = build(model);
            let skipped = run_multicore_clocked(&mut skip_cores, &mut h_skip, 10_000_000, true);
            assert_eq!(reference, skipped, "model {model:?}");
        }
    }

    #[test]
    fn persist_round_trip_mid_run_continues_identically() {
        use ise_types::persist::{Reader, Writer};
        for model in [
            ConsistencyModel::Sc,
            ConsistencyModel::Pc,
            ConsistencyModel::Wc,
        ] {
            let trace = store_heavy_trace(60);
            let mut orig = core_with(model, trace.clone());
            let mut h_orig = hier();
            // Run partway so the snapshot catches a busy pipeline: a
            // part-full ROB, buffered stores, drains in flight.
            let mut now = 0;
            while orig.stats().retired < 100 {
                match orig.step(now, &mut h_orig) {
                    StepOutcome::Finished => panic!("trace too short for a mid-run snapshot"),
                    StepOutcome::Imprecise(_) | StepOutcome::Precise { .. } => {
                        panic!("fault-free workload")
                    }
                    _ => {}
                }
                now += 1;
                assert!(now < 1_000_000);
            }
            let mut w = Writer::container();
            orig.save_state(&mut w);
            h_orig.save_state(&mut w);
            let bytes = w.finish();
            let mut back = core_with(model, trace);
            let mut h_back = hier();
            let mut r = Reader::container(&bytes).unwrap();
            back.restore_state(&mut r).unwrap();
            h_back.restore_state(&mut r).unwrap();
            // Re-save is byte-identical: the logical pipeline contents
            // are the canonical form.
            let mut w2 = Writer::container();
            back.save_state(&mut w2);
            h_back.save_state(&mut w2);
            assert_eq!(w2.finish(), bytes, "model {model:?}");
            assert_eq!(back.stats(), orig.stats());
            // Lockstep continuation to completion: outcomes, wake-ups and
            // stats must agree every cycle.
            loop {
                let (a, b) = (orig.step(now, &mut h_orig), back.step(now, &mut h_back));
                assert_eq!(a, b, "outcome at {now} ({model:?})");
                assert_eq!(back.next_event(now), orig.next_event(now));
                assert_eq!(back.stats(), orig.stats(), "stats at {now}");
                if a == StepOutcome::Finished {
                    break;
                }
                now += 1;
                assert!(now < 10_000_000);
            }
        }
    }

    #[test]
    fn persist_round_trip_of_waiting_core_resumes_identically() {
        use ise_types::persist::{Reader, Writer};
        let bad = Addr::new(0x100 * 4096);
        let trace = vec![
            Instruction::store(bad, 1),
            Instruction::store(Addr::new(0x9000), 2),
            Instruction::other(),
        ];
        let mut orig = core_with(ConsistencyModel::Pc, trace.clone());
        let mut h_orig = faulting_hier();
        let mut now = 0;
        loop {
            if let StepOutcome::Imprecise(_) = orig.step(now, &mut h_orig) {
                break;
            }
            now += 1;
            assert!(now < 100_000);
        }
        // Snapshot while the core waits on the OS, between the fault
        // being detected and the resume — the mid-fault checkpoint case.
        let mut w = Writer::container();
        orig.save_state(&mut w);
        let bytes = w.finish();
        let mut back = core_with(ConsistencyModel::Pc, trace);
        let mut r = Reader::container(&bytes).unwrap();
        back.restore_state(&mut r).unwrap();
        assert_eq!(back.step(now + 1, &mut h_orig), StepOutcome::Waiting);
        assert_eq!(back.next_event(now), Cycle::MAX);
        assert_eq!(back.stats().imprecise_exceptions, 1);
        // Both resume and finish the same way (the faulting store went to
        // the FSB; the flushed ALU op re-dispatches from the replay ring).
        orig.resume_at(now + 50);
        back.resume_at(now + 50);
        let mut h_back = faulting_hier();
        let mut t = now + 50;
        loop {
            let (a, b) = (orig.step(t, &mut h_orig), back.step(t, &mut h_back));
            assert_eq!(a, b, "outcome at {t}");
            if a == StepOutcome::Finished {
                break;
            }
            t += 1;
            assert!(t < now + 100_000);
        }
        assert_eq!(back.stats(), orig.stats());
    }

    #[test]
    fn next_event_respects_resume_deadline() {
        let bad = Addr::new(0x100 * 4096);
        let mut c = core_with(ConsistencyModel::Wc, vec![Instruction::store(bad, 1)]);
        let mut h = faulting_hier();
        let mut now = 0;
        loop {
            if let StepOutcome::Imprecise(_) = c.step(now, &mut h) {
                break;
            }
            now += 1;
            assert!(now < 100_000);
        }
        assert_eq!(
            c.next_event(now),
            Cycle::MAX,
            "a core waiting on the OS has no self-wake"
        );
        c.resume_at(now + 500);
        assert_eq!(c.next_event(now), now + 500);
    }

    #[test]
    fn charge_idle_is_inert_for_waiting_and_finished_cores() {
        let mut c = core_with(ConsistencyModel::Wc, vec![]);
        let mut h = hier();
        assert_eq!(c.step(0, &mut h), StepOutcome::Finished);
        let before = c.stats();
        c.charge_idle(0, 1000);
        assert_eq!(c.stats(), before, "finished cores accrue nothing");
    }

    #[test]
    #[should_panic(expected = "without a pending exception")]
    fn resume_without_exception_panics() {
        let mut c = core_with(ConsistencyModel::Wc, vec![]);
        c.resume_at(5);
    }

    #[test]
    fn waiting_until_resumed() {
        let bad = Addr::new(0x100 * 4096);
        let trace = vec![Instruction::store(bad, 1), Instruction::other()];
        let mut c = core_with(ConsistencyModel::Wc, trace);
        let mut h = faulting_hier();
        let mut now = 0;
        loop {
            if let StepOutcome::Imprecise(_) = c.step(now, &mut h) {
                break;
            }
            now += 1;
            assert!(now < 100_000);
        }
        assert_eq!(c.step(now + 1, &mut h), StepOutcome::Waiting);
        c.resume_at(now + 50);
        assert_eq!(c.step(now + 2, &mut h), StepOutcome::Waiting);
        // After the resume point the flushed ALU instruction re-dispatches
        // and the core finishes.
        let mut t = now + 50;
        loop {
            match c.step(t, &mut h) {
                StepOutcome::Finished => break,
                StepOutcome::Imprecise(_) | StepOutcome::Precise { .. } => {
                    panic!("store was drained to the FSB; it must not re-execute")
                }
                _ => {}
            }
            t += 1;
            assert!(t < now + 100_000);
        }
        assert_eq!(c.stats().retired, 2);
    }
}
