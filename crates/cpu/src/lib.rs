//! Trace-driven out-of-order core model.
//!
//! A [`core::Core`] consumes a stream of [`ise_types::Instruction`]s and
//! models the pipeline phenomena the paper's argument rests on:
//!
//! * a reorder buffer with in-order retirement and a configurable width;
//! * a store buffer ([`store_buffer`]) into which stores retire *before*
//!   completion under PC and WC — the optimization that makes
//!   post-retirement store exceptions possible at all (§2.2);
//! * SC as the "store buffer disabled" baseline of §2.3, where every
//!   memory operation completes before retiring;
//! * precise exceptions on loads (resolved before retirement) and
//!   *imprecise* exceptions on retired stores, detected when a store-buffer
//!   drain comes back denied and surfaced to the embedding system as a
//!   drained batch of [`ise_types::FaultingStoreEntry`]s (§5.3's flow).
//!
//! The core deliberately knows nothing about the FSB, EInject or the OS —
//! those live in `ise-core`/`ise-os` and are wired together by `ise-sim` —
//! so the pipeline model stays reusable for the ASO baseline study.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod core;
mod rob;
pub mod store_buffer;
pub mod trace;

pub use crate::core::{run_multicore, run_to_completion, Core, StepOutcome};
pub use store_buffer::{DrainFault, SbEntry, StoreBuffer};
pub use trace::{PersistTrace, TraceSource, VecTrace};
