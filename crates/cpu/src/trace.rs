//! Instruction trace sources.

use ise_types::persist::{PersistError, Reader, Writer};
use ise_types::Instruction;
use std::sync::Arc;

/// A pull-based source of instructions for one core.
///
/// Implementations may synthesize instructions lazily; the core keeps
/// uncommitted instructions in its ROB, so sources never need to rewind.
pub trait TraceSource {
    /// The next instruction in program order, or `None` when the program
    /// has ended.
    fn next_instr(&mut self) -> Option<Instruction>;

    /// A hint of how many instructions remain, when cheaply known.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// A trace source whose read cursor can be checkpointed and restored.
///
/// Only the *position* within the trace is serialized — the instruction
/// contents are configuration the embedder rebuilds before restoring, so
/// a snapshot stays small no matter how long the trace is. [`FnTrace`]
/// deliberately does not implement this: closure state cannot be
/// captured, so cores fed by generators are not checkpointable.
pub trait PersistTrace: TraceSource {
    /// Writes the cursor state.
    fn save_cursor(&self, w: &mut Writer);
    /// Repositions the cursor from a saved stream. The trace contents
    /// must be the ones the cursor was saved against.
    fn restore_cursor(&mut self, r: &mut Reader) -> Result<(), PersistError>;
}

/// A trace backed by an immutable, shareable instruction sequence.
///
/// The backing storage is reference-counted so one synthesized trace can
/// feed many cores or many systems (baseline vs. injected runs) without
/// copying the instruction array per consumer.
#[derive(Debug, Clone)]
pub struct VecTrace {
    instrs: Arc<[Instruction]>,
    pos: usize,
}

impl VecTrace {
    /// Wraps a complete instruction sequence.
    pub fn new(instrs: Vec<Instruction>) -> Self {
        VecTrace {
            instrs: instrs.into(),
            pos: 0,
        }
    }

    /// Wraps an already-shared instruction sequence without copying it.
    pub fn shared(instrs: Arc<[Instruction]>) -> Self {
        VecTrace { instrs, pos: 0 }
    }

    /// Total instructions in the trace.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl TraceSource for VecTrace {
    fn next_instr(&mut self) -> Option<Instruction> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.instrs.len() - self.pos)
    }
}

impl PersistTrace for VecTrace {
    fn save_cursor(&self, w: &mut Writer) {
        w.usize(self.pos);
    }
    fn restore_cursor(&mut self, r: &mut Reader) -> Result<(), PersistError> {
        let pos = r.usize()?;
        if pos > self.instrs.len() {
            return Err(PersistError::Corrupt("trace cursor beyond end"));
        }
        self.pos = pos;
        Ok(())
    }
}

impl FromIterator<Instruction> for VecTrace {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        VecTrace::new(iter.into_iter().collect())
    }
}

/// A trace synthesized on demand from a closure, for generators too large
/// to materialize.
pub struct FnTrace<F> {
    f: F,
}

impl<F: FnMut() -> Option<Instruction>> FnTrace<F> {
    /// Wraps a generator closure.
    pub fn new(f: F) -> Self {
        FnTrace { f }
    }
}

impl<F: FnMut() -> Option<Instruction>> TraceSource for FnTrace<F> {
    fn next_instr(&mut self) -> Option<Instruction> {
        (self.f)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::addr::Addr;

    #[test]
    fn vec_trace_yields_in_order_then_ends() {
        let mut t = VecTrace::new(vec![
            Instruction::store(Addr::new(0), 1),
            Instruction::other(),
        ]);
        assert_eq!(t.remaining_hint(), Some(2));
        assert_eq!(t.next_instr(), Some(Instruction::store(Addr::new(0), 1)));
        assert_eq!(t.next_instr(), Some(Instruction::other()));
        assert_eq!(t.next_instr(), None);
        assert_eq!(t.next_instr(), None);
        assert_eq!(t.remaining_hint(), Some(0));
    }

    #[test]
    fn fn_trace_synthesizes() {
        let mut n = 0;
        let mut t = FnTrace::new(move || {
            n += 1;
            (n <= 3).then(Instruction::other)
        });
        let mut count = 0;
        while t.next_instr().is_some() {
            count += 1;
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn cursor_round_trip_resumes_mid_trace() {
        let instrs: Vec<Instruction> = (0..10)
            .map(|i| Instruction::store(Addr::new(i * 8), i))
            .collect();
        let mut t = VecTrace::new(instrs.clone());
        for _ in 0..4 {
            t.next_instr();
        }
        let mut w = Writer::container();
        t.save_cursor(&mut w);
        let bytes = w.finish();
        let mut back = VecTrace::new(instrs);
        let mut r = Reader::container(&bytes).unwrap();
        back.restore_cursor(&mut r).unwrap();
        assert_eq!(back.remaining_hint(), t.remaining_hint());
        loop {
            let (a, b) = (t.next_instr(), back.next_instr());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cursor_restore_rejects_out_of_range() {
        let mut t = VecTrace::new(vec![Instruction::other(); 3]);
        let mut w = Writer::container();
        w.usize(7); // beyond the 3-instruction trace
        let bytes = w.finish();
        let mut r = Reader::container(&bytes).unwrap();
        assert!(matches!(
            t.restore_cursor(&mut r),
            Err(PersistError::Corrupt("trace cursor beyond end"))
        ));
    }

    #[test]
    fn collect_into_vec_trace() {
        let t: VecTrace = (0..5).map(|_| Instruction::other()).collect();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }
}
