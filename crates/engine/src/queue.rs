//! A deterministic time-ordered event queue.

use crate::Cycle;
use ise_types::persist::{Persist, PersistError, Reader, Writer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(time, payload)` pairs with deterministic FIFO tie
/// breaking: two events scheduled for the same cycle pop in the order they
/// were scheduled, regardless of payload.
///
/// This is the backbone of the memory system: every in-flight request is an
/// event whose payload describes what completes when the clock reaches it.
///
/// Payloads live inline in the heap's backing array (no per-event box),
/// and popping never releases capacity, so once the queue has grown to
/// its high-water mark a steady-state schedule/pop cycle allocates
/// nothing. Size the high-water mark up front with
/// [`EventQueue::with_capacity`].
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: Reverse<(Cycle, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// An empty queue with room for `capacity` pending events before the
    /// backing array must grow — the allocation-free steady state for
    /// sources whose in-flight bound is known (MSHR counts, ring sizes).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute cycle `time`.
    pub fn schedule(&mut self, time: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((time, seq)),
            payload,
        });
    }

    /// The firing time of the earliest event, if any.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// The firing time of the earliest event, if any.
    ///
    /// Alias of [`next_time`](Self::next_time) under the conventional
    /// discrete-event name: the cycle-skipping clock polls every event
    /// source for its next wake-up via `peek_time()` and jumps straight
    /// to the minimum. Peeking never disturbs FIFO tie order — events
    /// scheduled for the same cycle still pop in insertion order.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.next_time()
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_at_or_before(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.heap.peek() {
            Some(e) if e.key.0 .0 <= now => {
                let e = self.heap.pop().expect("peeked entry must pop");
                Some((e.key.0 .0, e.payload))
            }
            _ => None,
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The queue serializes canonically: entries sorted by `(time, seq)`
/// plus the tie-break counter itself. The binary heap's internal array
/// order depends on push/pop history, so dumping it raw would make two
/// observationally identical queues serialize differently; sorting by
/// the total key (seq numbers are unique) makes the bytes a function of
/// the queue's *observable* state, and restoring preserves both pop
/// order and future tie-breaking exactly.
impl<T: Persist> Persist for EventQueue<T> {
    fn save(&self, w: &mut Writer) {
        w.u64(self.seq);
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by_key(|e| e.key.0);
        w.usize(entries.len());
        for e in entries {
            w.u64(e.key.0 .0);
            w.u64(e.key.0 .1);
            e.payload.save(w);
        }
    }

    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        let seq = r.u64()?;
        let n = r.usize()?;
        let mut heap = BinaryHeap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let time = r.u64()?;
            let entry_seq = r.u64()?;
            if entry_seq >= seq {
                return Err(PersistError::Corrupt("event seq beyond counter"));
            }
            heap.push(Entry {
                key: Reverse((time, entry_seq)),
                payload: T::restore(r)?,
            });
        }
        Ok(EventQueue { heap, seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn pop_at_or_before_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        assert_eq!(q.pop_at_or_before(9), None);
        assert_eq!(q.pop_at_or_before(10), Some((10, ())));
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(7, ());
        assert_eq!(q.next_time(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_matches_next_time_and_is_nondestructive() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
        q.schedule(12, "late");
        q.schedule(4, "early");
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.peek_time(), q.next_time());
        // Peeking must not consume or reorder anything.
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((4, "early")));
        assert_eq!(q.peek_time(), Some(12));
    }

    #[test]
    fn peek_time_preserves_fifo_ties_at_equal_cycles() {
        let mut q = EventQueue::new();
        q.schedule(9, "first");
        q.schedule(9, "second");
        q.schedule(9, "third");
        // Repeated peeks at a tied cycle are stable and non-consuming...
        for _ in 0..3 {
            assert_eq!(q.peek_time(), Some(9));
        }
        assert_eq!(q.len(), 3);
        // ...and the pop order afterwards is still insertion order.
        assert_eq!(q.pop(), Some((9, "first")));
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.pop(), Some((9, "second")));
        assert_eq!(q.pop(), Some((9, "third")));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo_across_interleaved_peeks_and_schedules() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        assert_eq!(q.peek_time(), Some(5));
        q.schedule(5, 2);
        assert_eq!(q.peek_time(), Some(5));
        q.schedule(3, 0);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, 0)));
        // A later-scheduled event at the same tied cycle still pops last.
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn with_capacity_never_grows_within_bound() {
        let mut q = EventQueue::with_capacity(64);
        // Churn far past the capacity while staying under it in
        // occupancy: the backing array must never need to grow, so the
        // steady-state loop is allocation-free.
        for round in 0..1000u64 {
            for i in 0..64 {
                q.schedule(round * 100 + i, i);
            }
            while q.pop().is_some() {}
        }
        assert!(q.is_empty());
    }

    #[test]
    fn persist_round_trip_preserves_order_ties_and_future_seq() {
        use ise_types::persist::{restore_container, save_container};
        let mut q = EventQueue::new();
        q.schedule(9, 100u64);
        q.schedule(5, 101);
        q.schedule(9, 102);
        assert_eq!(q.pop(), Some((5, 101)));
        let bytes = save_container(&q);
        let mut back: EventQueue<u64> = restore_container(&bytes).unwrap();
        // Serialization is canonical: re-saving the restored queue is
        // byte-identical even though heap internals may differ.
        assert_eq!(save_container(&back), bytes);
        // Ties scheduled *after* restore still break after the old ones.
        back.schedule(9, 103);
        q.schedule(9, 103);
        for expect in [(9, 100), (9, 102), (9, 103)] {
            assert_eq!(back.pop(), Some(expect));
            assert_eq!(q.pop(), Some(expect));
        }
        assert!(back.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10, "x");
        q.schedule(2, "y");
        assert_eq!(q.pop(), Some((2, "y")));
        q.schedule(5, "z");
        assert_eq!(q.pop(), Some((5, "z")));
        assert_eq!(q.pop(), Some((10, "x")));
    }
}
