//! A deterministic time-ordered event queue.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(time, payload)` pairs with deterministic FIFO tie
/// breaking: two events scheduled for the same cycle pop in the order they
/// were scheduled, regardless of payload.
///
/// This is the backbone of the memory system: every in-flight request is an
/// event whose payload describes what completes when the clock reaches it.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: Reverse<(Cycle, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute cycle `time`.
    pub fn schedule(&mut self, time: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((time, seq)),
            payload,
        });
    }

    /// The firing time of the earliest event, if any.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_at_or_before(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.heap.peek() {
            Some(e) if e.key.0 .0 <= now => {
                let e = self.heap.pop().expect("peeked entry must pop");
                Some((e.key.0 .0, e.payload))
            }
            _ => None,
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn pop_at_or_before_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        assert_eq!(q.pop_at_or_before(9), None);
        assert_eq!(q.pop_at_or_before(10), Some((10, ())));
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(7, ());
        assert_eq!(q.next_time(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10, "x");
        q.schedule(2, "y");
        assert_eq!(q.pop(), Some((2, "y")));
        q.schedule(5, "z");
        assert_eq!(q.pop(), Some((5, "z")));
        assert_eq!(q.pop(), Some((10, "x")));
    }
}
