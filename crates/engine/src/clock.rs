//! Clock-policy selection for the cycle-skipping simulator loops.
//!
//! Every per-cycle loop in the repo (the full-system loop in `ise-sim`,
//! the multicore harness in `ise-cpu`, the ASO sweep in `ise-aso`) has
//! two equivalent drivers: the *reference* clock that ticks `now += 1`
//! unconditionally, and the *cycle-skipping* clock that jumps `now`
//! straight to the earliest next wake-up. The skip clock is the default;
//! the reference clock is kept both as the differential-testing oracle
//! and as an escape hatch.
//!
//! The `ISE_CYCLE_SKIP` environment variable overrides whatever the
//! caller configured, mirroring the `ISE_WORKERS` convention from
//! `ise-par`: CI pins one differential leg to `ISE_CYCLE_SKIP=0`
//! (reference) and one to `ISE_CYCLE_SKIP=1` (skip) and asserts
//! byte-identical reports. The spellings are the shared ones from
//! [`ise_types::env`], and a malformed value aborts the run instead of
//! silently deferring to the configured default.

/// Parses a cycle-skip override string: `Some(false)` for
/// `0`/`off`/`false`/`no`, `Some(true)` for `1`/`on`/`true`/`yes`
/// (case-insensitively), `None` for anything else (the pure-`Option`
/// surface; [`cycle_skip_override`] is the loud env-reading one).
pub fn parse_cycle_skip(value: Option<&str>) -> Option<bool> {
    value.and_then(|v| ise_types::env::parse_flag(v).ok())
}

/// The `ISE_CYCLE_SKIP` environment override. `Some(false)` forces the
/// reference per-cycle clock, `Some(true)` forces cycle skipping,
/// `None` (unset) defers to the caller's configuration
/// (`SystemConfig::reference_clock` in `ise-sim`, on by default
/// elsewhere).
///
/// # Panics
///
/// Panics if `ISE_CYCLE_SKIP` is set to an unrecognised value — a typo
/// here would silently pick the wrong clock for a whole differential
/// leg.
pub fn cycle_skip_override() -> Option<bool> {
    ise_types::env::env_flag("ISE_CYCLE_SKIP")
}

/// Parses a watchdog cell-budget string: `Some(cycles)` for a positive
/// integer, `None` for unset (the pure-`Option` surface;
/// [`cell_budget`] is the loud env-reading one).
///
/// # Panics
///
/// Panics with the variable name on zero or non-numeric values.
pub fn parse_cell_budget(value: Option<&str>) -> Option<crate::Cycle> {
    ise_types::env::cycles_from("ISE_CELL_BUDGET", value)
}

/// The `ISE_CELL_BUDGET` environment override: a watchdog ceiling, in
/// cycles, on one fuzz/chaos/adversary cell evaluation. Campaign cell
/// runners clamp their own per-run budget to it, and a cell that would
/// exceed the clamped budget degrades to a reported `Timeout` outcome
/// instead of hanging (or panicking out of) a campaign worker — the
/// containment story for pathological searched fault plans.
///
/// `None` (unset) leaves each campaign's configured budget as-is.
///
/// # Panics
///
/// Panics if `ISE_CELL_BUDGET` is set to anything but a positive
/// integer — a typo would silently run without a watchdog.
pub fn cell_budget() -> Option<crate::Cycle> {
    parse_cell_budget(std::env::var("ISE_CELL_BUDGET").ok().as_deref())
}

/// Parses a checkpoint-cadence string: `Some(cycles)` for a positive
/// integer, `None` for unset (the pure-`Option` surface;
/// [`ckpt_every`] is the loud env-reading one).
///
/// # Panics
///
/// Panics with the variable name on zero or non-numeric values.
pub fn parse_ckpt_every(value: Option<&str>) -> Option<crate::Cycle> {
    ise_types::env::cycles_from("ISE_CKPT_EVERY", value)
}

/// The `ISE_CKPT_EVERY` environment override: the cadence, in cycles,
/// at which `System::run_clocked` emits periodic checkpoints (into the
/// directory named by `ISE_CKPT_DIR`, default `ise-ckpt/`). `None`
/// (unset) disables periodic emission.
///
/// # Panics
///
/// Panics if `ISE_CKPT_EVERY` is set to anything but a positive
/// integer — a typo would silently disable checkpointing.
pub fn ckpt_every() -> Option<crate::Cycle> {
    parse_ckpt_every(std::env::var("ISE_CKPT_EVERY").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_off_spellings() {
        for v in ["0", "off", "OFF", "false", "no", " 0 "] {
            assert_eq!(parse_cycle_skip(Some(v)), Some(false), "value {v:?}");
        }
    }

    #[test]
    fn parse_recognises_on_spellings() {
        for v in ["1", "on", "true", "YES", " 1 "] {
            assert_eq!(parse_cycle_skip(Some(v)), Some(true), "value {v:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_cycle_skip(Some("2")), None);
        assert_eq!(parse_cycle_skip(Some("maybe")), None);
        assert_eq!(parse_cycle_skip(Some("")), None);
        assert_eq!(parse_cycle_skip(None), None);
    }

    #[test]
    fn cell_budget_parses_positive_cycles() {
        assert_eq!(parse_cell_budget(None), None);
        assert_eq!(parse_cell_budget(Some("250000")), Some(250_000));
        assert_eq!(parse_cell_budget(Some(" 1 ")), Some(1));
    }

    #[test]
    #[should_panic(expected = "ISE_CELL_BUDGET: expected a positive cycle count")]
    fn cell_budget_rejects_zero_loudly() {
        parse_cell_budget(Some("0"));
    }

    #[test]
    fn ckpt_every_parses_positive_cycles() {
        assert_eq!(parse_ckpt_every(None), None);
        assert_eq!(parse_ckpt_every(Some("5000")), Some(5_000));
    }

    #[test]
    #[should_panic(expected = "ISE_CKPT_EVERY: expected a positive cycle count")]
    fn ckpt_every_rejects_zero_loudly() {
        parse_ckpt_every(Some("0"));
    }
}
