//! Clock-policy selection for the cycle-skipping simulator loops.
//!
//! Every per-cycle loop in the repo (the full-system loop in `ise-sim`,
//! the multicore harness in `ise-cpu`, the ASO sweep in `ise-aso`) has
//! two equivalent drivers: the *reference* clock that ticks `now += 1`
//! unconditionally, and the *cycle-skipping* clock that jumps `now`
//! straight to the earliest next wake-up. The skip clock is the default;
//! the reference clock is kept both as the differential-testing oracle
//! and as an escape hatch.
//!
//! The `ISE_CYCLE_SKIP` environment variable overrides whatever the
//! caller configured, mirroring the `ISE_WORKERS` convention from
//! `ise-par`: CI pins one differential leg to `ISE_CYCLE_SKIP=0`
//! (reference) and one to `ISE_CYCLE_SKIP=1` (skip) and asserts
//! byte-identical reports.

use std::env;

/// Parses a cycle-skip override string: `Some(false)` for
/// `0`/`off`/`false`/`no`, `Some(true)` for `1`/`on`/`true`/`yes`
/// (case-insensitively), `None` for anything else.
pub fn parse_cycle_skip(value: Option<&str>) -> Option<bool> {
    match value?.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "false" | "no" => Some(false),
        "1" | "on" | "true" | "yes" => Some(true),
        _ => None,
    }
}

/// The `ISE_CYCLE_SKIP` environment override, if set to a recognised
/// value. `Some(false)` forces the reference per-cycle clock,
/// `Some(true)` forces cycle skipping, `None` defers to the caller's
/// configuration (`SystemConfig::reference_clock` in `ise-sim`, on by
/// default elsewhere).
pub fn cycle_skip_override() -> Option<bool> {
    match env::var("ISE_CYCLE_SKIP") {
        Ok(v) => parse_cycle_skip(Some(&v)),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_off_spellings() {
        for v in ["0", "off", "OFF", "false", "no", " 0 "] {
            assert_eq!(parse_cycle_skip(Some(v)), Some(false), "value {v:?}");
        }
    }

    #[test]
    fn parse_recognises_on_spellings() {
        for v in ["1", "on", "true", "YES", " 1 "] {
            assert_eq!(parse_cycle_skip(Some(v)), Some(true), "value {v:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_cycle_skip(Some("2")), None);
        assert_eq!(parse_cycle_skip(Some("maybe")), None);
        assert_eq!(parse_cycle_skip(Some("")), None);
        assert_eq!(parse_cycle_skip(None), None);
    }
}
