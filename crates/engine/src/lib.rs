//! Deterministic discrete-event simulation kernel.
//!
//! The timing simulator is a hybrid: cores are cycle-stepped, while memory
//! responses, NoC deliveries and OS wakeups are scheduled as future events
//! on an [`EventQueue`]. Determinism is a hard requirement (the paper's
//! experiments must be reproducible), so:
//!
//! * the queue breaks time ties by insertion sequence number, and
//! * all randomness flows through [`SimRng`], a small, seedable PRNG.
//!
//! # Example
//!
//! ```
//! use ise_engine::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(10, "memory response");
//! q.schedule(5, "noc delivery");
//! assert_eq!(q.next_time(), Some(5));
//! assert_eq!(q.pop_at_or_before(7), Some((5, "noc delivery")));
//! assert_eq!(q.pop_at_or_before(7), None);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clock;
pub mod queue;
pub mod rng;

pub use clock::{
    cell_budget, ckpt_every, cycle_skip_override, parse_cell_budget, parse_ckpt_every,
    parse_cycle_skip,
};
pub use queue::EventQueue;
pub use rng::SimRng;

/// Simulation time, in core clock cycles.
pub type Cycle = u64;
