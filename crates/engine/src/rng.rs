//! Seedable simulation randomness.
//!
//! A self-contained xoshiro256++ generator (Blackman & Vigna) seeded
//! through SplitMix64. Keeping the implementation in-tree makes "one
//! seed, one run" the only way to get random numbers *and* removes any
//! dependency whose internals could change the stream between versions,
//! so experiment outputs are reproducible byte-for-byte forever.

use ise_types::persist::{Persist, PersistError, Reader, Writer};

/// The single source of randomness for every experiment.
///
/// ```
/// use ise_engine::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.range(0, 1000), b.range(0, 1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand the 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The generator's full stream position: the four raw xoshiro256++
    /// state words. This — not a draw counter — is the only observable
    /// that makes save/restore exact: [`range`](Self::range) uses
    /// Lemire rejection sampling, so the number of raw draws consumed
    /// per call is data-dependent and a "replay N calls" scheme would
    /// desynchronize on the first rejected draw.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Repositions the generator to a previously captured
    /// [`state`](Self::state); the subsequent stream is identical to
    /// the one the captured generator would have produced.
    pub fn seek(&mut self, state: [u64; 4]) {
        self.s = state;
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Lemire's multiply-shift with rejection: the bare multiply-shift
        // gives some outputs one more 64-bit preimage than others (for
        // span = 3·2^62 a third of the outputs were twice as likely),
        // so draws whose low product word falls under `2^64 mod span`
        // are rejected, making every output exactly equiprobable.
        let threshold = span.wrapping_neg() % span;
        loop {
            let wide = (self.next_u64() as u128) * (span as u128);
            if (wide as u64) >= threshold {
                return lo + (wide >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range(0, n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir style).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.range(0, i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

impl Persist for SimRng {
    fn save(&self, w: &mut Writer) {
        for word in self.s {
            w.u64(word);
        }
    }

    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        // The all-zero state is xoshiro's single absorbing fixed point;
        // no seeded generator can reach it, so it marks corruption.
        if s == [0; 4] {
            return Err(PersistError::Corrupt("all-zero rng state"));
        }
        Ok(SimRng { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::persist::{restore_container, save_container};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1 << 20), b.range(0, 1 << 20));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.range(0, 100) == b.range(0, 100))
            .count();
        assert!(same < 32, "streams should not be identical");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).range(5, 5);
    }

    #[test]
    fn huge_span_has_no_preimage_bias() {
        // span = 3·2^62 makes 2^64/span = 4/3: under the pre-rejection
        // multiply-shift every output v ≡ 0 (mod 3) had two 64-bit
        // preimages and the rest one, so that residue class soaked up
        // half of all draws instead of a third. With rejection sampling
        // the class is hit with probability exactly 1/3; 30 000 draws
        // put the biased count near 15 000 and the unbiased count
        // within ±500 (> 6σ) of 10 000.
        let mut r = SimRng::seed_from(42);
        let span = 3u64 << 62;
        let n = 30_000;
        let heavy = (0..n)
            .filter(|_| r.range(0, span).is_multiple_of(3))
            .count();
        assert!(
            (9_500..=10_500).contains(&heavy),
            "residue class 0 (mod 3) drawn {heavy}/{n} times; expected ~{}",
            n / 3
        );
    }

    #[test]
    fn prop_small_spans_are_uniform_within_binomial_bounds() {
        // Every bucket of a small span must land within ~6σ of the
        // binomial mean. The case → seed mapping is fixed, so this
        // either always passes or always fails — no flakes.
        quickprop::check(24, |g| {
            let span = g.range_u64(2, 13);
            let n = 2_000u64;
            let mut r = SimRng::seed_from(g.u64());
            let mut buckets = vec![0u64; span as usize];
            for _ in 0..n {
                buckets[r.range(0, span) as usize] += 1;
            }
            let mean = n as f64 / span as f64;
            let tolerance = 6.0 * mean.sqrt();
            for (v, &count) in buckets.iter().enumerate() {
                assert!(
                    (count as f64 - mean).abs() <= tolerance,
                    "span {span}: bucket {v} drawn {count} times (mean {mean:.0} ± {tolerance:.0})"
                );
            }
        });
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::seed_from(6);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        SimRng::seed_from(0).sample_indices(3, 4);
    }

    #[test]
    fn seek_repositions_the_stream() {
        let mut r = SimRng::seed_from(9);
        for _ in 0..17 {
            r.next_u64();
        }
        let pos = r.state();
        let ahead: Vec<u64> = (0..32).map(|_| r.next_u64()).collect();
        r.seek(pos);
        let replay: Vec<u64> = (0..32).map(|_| r.next_u64()).collect();
        assert_eq!(ahead, replay);
    }

    #[test]
    fn prop_restore_replays_identical_stream_tail() {
        // The property the snapshot layer leans on: save/restore at an
        // arbitrary mid-stream point replays the identical tail under a
        // mixed call pattern. The tail deliberately leans on `range`
        // with awkward spans (including span = 3·2^62, where Lemire
        // rejection consumes a variable number of raw draws per call):
        // any scheme that stored a draw *count* instead of the state
        // words would desynchronize here.
        quickprop::check(32, |g| {
            let mut rng = SimRng::seed_from(g.u64());
            let warmup = g.range_u64(0, 200);
            for _ in 0..warmup {
                match rng.next_u64() % 3 {
                    0 => {
                        rng.next_u64();
                    }
                    1 => {
                        rng.range(0, 3u64 << 62);
                    }
                    _ => {
                        rng.unit();
                    }
                }
            }
            let bytes = save_container(&rng);
            let mut twin: SimRng = restore_container(&bytes).expect("round-trip");
            assert_eq!(twin.state(), rng.state());
            for i in 0..256 {
                let (a, b) = match i % 4 {
                    0 => (rng.next_u64(), twin.next_u64()),
                    1 => (rng.range(0, 3u64 << 62), twin.range(0, 3u64 << 62)),
                    2 => (rng.range(5, 12), twin.range(5, 12)),
                    _ => (rng.unit().to_bits(), twin.unit().to_bits()),
                };
                assert_eq!(a, b, "stream tails diverged at call {i}");
            }
        });
    }

    #[test]
    fn corrupt_zero_state_is_rejected() {
        let mut w = ise_types::persist::Writer::container();
        for _ in 0..4 {
            w.u64(0);
        }
        let err = restore_container::<SimRng>(&w.finish()).expect_err("zero state");
        assert_eq!(
            err,
            ise_types::persist::PersistError::Corrupt("all-zero rng state")
        );
    }
}
