//! Seedable simulation randomness.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The single source of randomness for every experiment.
///
/// Wrapping [`SmallRng`] behind our own type keeps the dependency private
/// (C-STABLE) and makes "one seed, one run" the only way to get random
/// numbers, so experiment outputs are reproducible byte-for-byte.
///
/// ```
/// use ise_engine::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.range(0, 1000), b.range(0, 1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.inner.gen_range(0..n)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir style).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.inner.gen_range(0..=i);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1 << 20), b.range(0, 1 << 20));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.range(0, 100) == b.range(0, 100)).count();
        assert!(same < 32, "streams should not be identical");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).range(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::seed_from(6);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        SimRng::seed_from(0).sample_indices(3, 4);
    }
}
