//! Faulting-store records.
//!
//! When a store buffer detects an imprecise store exception it drains its
//! entries into the per-core Faulting Store Buffer (FSB). Each drained entry
//! carries exactly what §4.1 of the paper specifies: "their address, data,
//! byte mask, and the accelerator-specific exception code". This module
//! defines that record; the ring buffer itself lives in `ise-core`.

use crate::addr::{Addr, ByteMask};
use crate::exception::ErrorCode;
use std::fmt;

/// One entry of the Faulting Store Buffer.
///
/// The paper sizes scalable-store-buffer entries at 16 B (§3.3) and the FSB
/// entry carries the same payload: 8 B of data, ~6 B of address bits, a byte
/// mask and an error code. [`FaultingStoreEntry::WIRE_BYTES`] records the
/// modelled footprint used in silicon-cost accounting.
///
/// ```
/// use ise_types::faulting::FaultingStoreEntry;
/// use ise_types::addr::{Addr, ByteMask};
/// use ise_types::exception::ErrorCode;
///
/// let e = FaultingStoreEntry::new(Addr::new(0x1000), 0xdead, ByteMask::FULL, ErrorCode(2));
/// assert_eq!(e.apply_to(0), 0xdead);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultingStoreEntry {
    /// The store's target address.
    pub addr: Addr,
    /// The store's data (up to 8 bytes, selected by `mask`).
    pub data: u64,
    /// Which bytes of `data` the store writes.
    pub mask: ByteMask,
    /// The accelerator-specific error code from the faulting response.
    /// Entries for *non-faulting* younger stores drained in the same-stream
    /// design carry [`ErrorCode`]`(0)`.
    pub error: ErrorCode,
}

impl FaultingStoreEntry {
    /// Modelled wire/RAM footprint of one entry, in bytes.
    pub const WIRE_BYTES: usize = 16;

    /// Creates an entry.
    pub fn new(addr: Addr, data: u64, mask: ByteMask, error: ErrorCode) -> Self {
        FaultingStoreEntry {
            addr,
            data,
            mask,
            error,
        }
    }

    /// Creates an entry for a non-faulting store drained alongside a
    /// faulting one (same-stream design, paper §4.6).
    pub fn non_faulting(addr: Addr, data: u64, mask: ByteMask) -> Self {
        Self::new(addr, data, mask, ErrorCode(0))
    }

    /// Whether this entry recorded an actual exception.
    pub fn is_faulting(&self) -> bool {
        self.error != ErrorCode(0)
    }

    /// Applies this store over an existing 8-byte memory value, honouring
    /// the byte mask. This is the `S_OS(A)` operation of the formalism.
    pub fn apply_to(&self, old: u64) -> u64 {
        self.mask.merge(old, self.data)
    }
}

impl fmt::Display for FaultingStoreEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fsb{{[{}] <- {:#x} mask {} {}}}",
            self.addr, self.data, self.mask, self.error
        )
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for FaultingStoreEntry {
        fn save(&self, w: &mut Writer) {
            self.addr.save(w);
            w.u64(self.data);
            self.mask.save(w);
            self.error.save(w);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(FaultingStoreEntry {
                addr: Persist::restore(r)?,
                data: r.u64()?,
                mask: Persist::restore(r)?,
                error: Persist::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulting_flag_tracks_error_code() {
        let f = FaultingStoreEntry::new(Addr::new(0), 1, ByteMask::FULL, ErrorCode(5));
        assert!(f.is_faulting());
        let nf = FaultingStoreEntry::non_faulting(Addr::new(0), 1, ByteMask::FULL);
        assert!(!nf.is_faulting());
    }

    #[test]
    fn apply_honours_mask() {
        let e = FaultingStoreEntry::new(
            Addr::new(0),
            0x0000_0000_0000_00ff,
            ByteMask::span(0, 1),
            ErrorCode(1),
        );
        assert_eq!(e.apply_to(0x1111_1111_1111_1100), 0x1111_1111_1111_11ff);
    }

    #[test]
    fn wire_footprint_matches_paper_entry_size() {
        assert_eq!(FaultingStoreEntry::WIRE_BYTES, 16);
    }
}
