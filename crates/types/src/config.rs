//! System configuration, mirroring Table 2 of the paper.
//!
//! [`SystemConfig::isca23`] reproduces the QFlex simulation parameters used
//! for the speculation-state study (16 Cortex-A76-class cores, 4×4 mesh,
//! 80-cycle memory). Builders allow the two scaling studies of §3.3 —
//! doubled memory latency and 4× store-to-load latency skew — to be derived
//! from the baseline in one call.

use crate::json::{Json, ToJson};
use crate::model::{ConsistencyModel, DrainPolicy};

/// Out-of-order core parameters (Table 2, "Core" row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Superscalar width (fetch/issue/retire), 4-way for Cortex-A76.
    pub width: u32,
    /// Reorder buffer capacity.
    pub rob_entries: usize,
    /// Store buffer capacity.
    pub sb_entries: usize,
    /// Consistency model the core enforces.
    pub model: ConsistencyModel,
    /// How the store buffer drains when a faulting store is detected.
    pub drain_policy: DrainPolicy,
}

impl CoreConfig {
    /// The Table 2 core: 4-way OoO, WC, 128-entry ROB, 32-entry SB.
    pub fn isca23() -> Self {
        CoreConfig {
            width: 4,
            rob_entries: 128,
            sb_entries: 32,
            model: ConsistencyModel::Wc,
            drain_policy: DrainPolicy::SameStream,
        }
    }

    /// Same core with a different consistency model.
    pub fn with_model(mut self, model: ConsistencyModel) -> Self {
        self.model = model;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::isca23()
    }
}

/// One cache level's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles (tag + data).
    pub latency: u64,
    /// Miss status handling registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Table 2 L1D: 64 KB, 4-way, 2-cycle, 32 MSHRs.
    pub fn l1d_isca23() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 4,
            latency: 2,
            mshrs: 32,
        }
    }

    /// Table 2 L2 tile: 1 MB, 16-way, 6-cycle, non-inclusive.
    pub fn l2_isca23() -> Self {
        CacheConfig {
            capacity_bytes: 1024 * 1024,
            ways: 16,
            latency: 6,
            mshrs: 64,
        }
    }

    /// Number of sets given the block size.
    pub fn sets(&self, block_bytes: usize) -> usize {
        self.capacity_bytes / (self.ways * block_bytes)
    }
}

/// TLB parameters (Table 2, "TLB" row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbConfig {
    /// L1 (I and D each) entry count: 48.
    pub l1_entries: usize,
    /// L2 entry count: 1024.
    pub l2_entries: usize,
    /// L2 TLB access latency in cycles.
    pub l2_latency: u64,
    /// Page-table walk latency in cycles on full TLB miss.
    pub walk_latency: u64,
}

impl TlbConfig {
    /// Table 2 TLBs with conventional walk costs.
    pub fn isca23() -> Self {
        TlbConfig {
            l1_entries: 48,
            l2_entries: 1024,
            l2_latency: 4,
            walk_latency: 60,
        }
    }
}

/// Mesh interconnect parameters (Table 2, "Interconnect" row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Mesh width (4 for the 4×4 mesh).
    pub mesh_x: usize,
    /// Mesh height.
    pub mesh_y: usize,
    /// Link width in bytes per cycle.
    pub link_bytes: usize,
    /// Per-hop router + link traversal latency in cycles.
    pub hop_latency: u64,
}

impl NocConfig {
    /// Table 2: 4×4 2D mesh, 16 B links, 3 cycles/hop.
    pub fn isca23() -> Self {
        NocConfig {
            mesh_x: 4,
            mesh_y: 4,
            link_bytes: 16,
            hop_latency: 3,
        }
    }

    /// Number of mesh nodes.
    pub fn nodes(&self) -> usize {
        self.mesh_x * self.mesh_y
    }
}

/// Main-memory parameters (Table 2, "Memory" row) plus the §3.3 scaling
/// knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// DRAM access latency in cycles (80 by default).
    pub access_latency: u64,
    /// Extra multiplicative latency applied to *stores only*, modelling the
    /// store-to-load latency skew study (1 = no skew; Table 3's third
    /// column uses 4).
    pub store_latency_skew: u64,
}

impl MemoryConfig {
    /// Table 2 default: 80-cycle access, no skew.
    pub fn isca23() -> Self {
        MemoryConfig {
            access_latency: 80,
            store_latency_skew: 1,
        }
    }
}

/// Recovery-path hardening toggles for the OS model.
///
/// Each flag closes one weakness the adversarial fault-plan search
/// (`ise-adversary`, DESIGN.md §13) exposes in the naive handler. The
/// hardened configuration is the default everywhere; the unhardened one
/// exists as the search's seeded-weakness target — the CI self-check
/// proves the search finds a damaging plan against it and none against
/// the hardened kernel.
///
/// Like [`SystemConfig::reference_clock`], hardening is a recovery-
/// implementation knob, not a Table 2 architectural parameter, so it is
/// deliberately absent from the configuration's JSON rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryHardening {
    /// Add a deterministic per-(core, address, attempt) jitter on top of
    /// the exponential retry backoff. Without it, every store hitting
    /// the same transient cause retries on the identical ladder, so an
    /// adversarial fault window can align with — and defeat — the whole
    /// retry budget at once.
    pub jittered_backoff: bool,
    /// Kill the process when the retry budget is exhausted instead of
    /// dropping the store while reporting success. The unhardened
    /// behaviour models the classic buggy handler: it keeps the process
    /// alive but silently loses the store — the objective-(1) silent
    /// corruption the adversary searches for.
    pub kill_on_retry_exhaustion: bool,
    /// Charge early-drain continuation chunks a fraction of the dispatch
    /// overhead instead of a full exception dispatch. The handler is
    /// already resident for chunks after the first (no second context
    /// switch), so the unhardened full charge is pure victim stall — the
    /// objective-(2) FSB early-drain storm amplifier.
    pub chunk_continuation: bool,
}

impl RecoveryHardening {
    /// All mitigations on — the default for every built-in config.
    pub fn hardened() -> Self {
        RecoveryHardening {
            jittered_backoff: true,
            kill_on_retry_exhaustion: true,
            chunk_continuation: true,
        }
    }

    /// All mitigations off — the deliberately weak recovery config the
    /// adversary self-check searches against.
    pub fn unhardened() -> Self {
        RecoveryHardening {
            jittered_backoff: false,
            kill_on_retry_exhaustion: false,
            chunk_continuation: false,
        }
    }
}

impl Default for RecoveryHardening {
    fn default() -> Self {
        Self::hardened()
    }
}

/// Cost parameters for the OS model (used for the Fig. 5 breakdown).
///
/// The paper's minimal Linux handler spends ≈600 cycles per faulting store
/// unbatched, of which the microarchitectural part is "only a tiny
/// fraction"; the defaults below reproduce that split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsCostConfig {
    /// Cycles to drain one store-buffer entry into the FSB (FSBC write).
    pub fsb_drain_per_store: u64,
    /// Cycles for the ROB/pipeline flush when the imprecise exception is
    /// pinned on the oldest instruction.
    pub pipeline_flush: u64,
    /// Cycles for the OS to read one FSB entry and apply the store
    /// (`S_OS`).
    pub apply_per_store: u64,
    /// Fixed per-invocation OS cost: exception dispatch, context switch,
    /// and miscellaneous kernel entry/exit work.
    pub dispatch_overhead: u64,
    /// Cycles to resolve one exception cause (e.g. clear an EInject page or
    /// service a minor fault). Shared causes within a batch are resolved
    /// once per distinct page.
    pub resolve_per_page: u64,
    /// Latency of one demand-paging IO, in cycles (tens of ms in reality;
    /// scaled for simulation). Batched IOs overlap.
    pub io_latency: u64,
    /// Kernel retries of one store that still faults after its cause was
    /// resolved (a transient bus error), before the store is declared
    /// irrecoverable and the process terminated.
    pub retry_attempts: u32,
    /// Cycles of backoff before the first retry; doubles each attempt.
    pub retry_backoff_base: u64,
    /// Recovery-path mitigations (jittered backoff, kill on retry
    /// exhaustion, cheap early-drain continuations). Hardened by
    /// default; invisible in the config JSON (see [`RecoveryHardening`]).
    pub hardening: RecoveryHardening,
}

impl OsCostConfig {
    /// Defaults calibrated to the paper's ≈600-cycle unbatched per-store
    /// overhead with a small microarchitectural fraction (Fig. 5): one
    /// invocation handling one faulting store costs
    /// `dispatch + resolve + apply ≈ 566` cycles, dominated by the
    /// dispatch/context-switch slice.
    pub fn isca23() -> Self {
        OsCostConfig {
            fsb_drain_per_store: 2,
            pipeline_flush: 24,
            apply_per_store: 6,
            dispatch_overhead: 520,
            resolve_per_page: 40,
            io_latency: 20_000,
            retry_attempts: 4,
            retry_backoff_base: 64,
            hardening: RecoveryHardening::hardened(),
        }
    }

    /// The same costs with different recovery-hardening toggles.
    pub fn with_hardening(mut self, hardening: RecoveryHardening) -> Self {
        self.hardening = hardening;
        self
    }
}

/// The full simulated system (Table 2 plus OS costs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (16 in Table 2; the FPGA prototype used 2).
    pub cores: usize,
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L2 tile.
    pub l2: CacheConfig,
    /// TLBs.
    pub tlb: TlbConfig,
    /// Interconnect.
    pub noc: NocConfig,
    /// Main memory.
    pub memory: MemoryConfig,
    /// OS handler costs.
    pub os: OsCostConfig,
    /// When true, the simulator drives its clock with the reference
    /// per-cycle loop (`now += 1`) instead of the event-driven
    /// cycle-skipping loop. The two produce byte-identical statistics —
    /// the reference clock exists as the differential-testing oracle and
    /// as an escape hatch. The `ISE_CYCLE_SKIP` environment variable
    /// overrides this field at run time.
    ///
    /// This is a simulator-implementation knob, not an architectural
    /// parameter, so it is deliberately absent from the JSON rendering.
    pub reference_clock: bool,
}

impl SystemConfig {
    /// The Table 2 system.
    pub fn isca23() -> Self {
        SystemConfig {
            cores: 16,
            core: CoreConfig::isca23(),
            l1d: CacheConfig::l1d_isca23(),
            l2: CacheConfig::l2_isca23(),
            tlb: TlbConfig::isca23(),
            noc: NocConfig::isca23(),
            memory: MemoryConfig::isca23(),
            os: OsCostConfig::isca23(),
            reference_clock: false,
        }
    }

    /// A 2-core system mirroring the paper's FPGA prototype scale (§6.1:
    /// "our prototype currently only supports two minimal XiangShan
    /// cores").
    pub fn prototype2() -> Self {
        let mut cfg = Self::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 1;
        cfg
    }

    /// The §3.3 study system with 2× memory latency.
    pub fn with_double_memory_latency(mut self) -> Self {
        self.memory.access_latency *= 2;
        self
    }

    /// The §3.3 study system with `skew`× store-to-load latency skew.
    pub fn with_store_skew(mut self, skew: u64) -> Self {
        self.memory.store_latency_skew = skew;
        self
    }

    /// Same system under a different consistency model.
    pub fn with_model(mut self, model: ConsistencyModel) -> Self {
        self.core.model = model;
        self
    }

    /// Same system driven by the reference per-cycle clock (`true`) or
    /// the cycle-skipping clock (`false`, the default).
    pub fn with_reference_clock(mut self, reference: bool) -> Self {
        self.reference_clock = reference;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::isca23()
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cores", Json::from(self.cores)),
            (
                "core",
                Json::obj([
                    ("width", Json::from(self.core.width)),
                    ("rob_entries", Json::from(self.core.rob_entries)),
                    ("sb_entries", Json::from(self.core.sb_entries)),
                    ("model", Json::str(format!("{}", self.core.model))),
                ]),
            ),
            (
                "l1d",
                Json::obj([
                    ("capacity_bytes", Json::from(self.l1d.capacity_bytes)),
                    ("ways", Json::from(self.l1d.ways)),
                    ("latency", Json::from(self.l1d.latency)),
                    ("mshrs", Json::from(self.l1d.mshrs)),
                ]),
            ),
            (
                "l2",
                Json::obj([
                    ("capacity_bytes", Json::from(self.l2.capacity_bytes)),
                    ("ways", Json::from(self.l2.ways)),
                    ("latency", Json::from(self.l2.latency)),
                    ("mshrs", Json::from(self.l2.mshrs)),
                ]),
            ),
            (
                "tlb",
                Json::obj([
                    ("l1_entries", Json::from(self.tlb.l1_entries)),
                    ("l2_entries", Json::from(self.tlb.l2_entries)),
                    ("l2_latency", Json::from(self.tlb.l2_latency)),
                    ("walk_latency", Json::from(self.tlb.walk_latency)),
                ]),
            ),
            (
                "noc",
                Json::obj([
                    ("mesh_x", Json::from(self.noc.mesh_x)),
                    ("mesh_y", Json::from(self.noc.mesh_y)),
                    ("link_bytes", Json::from(self.noc.link_bytes)),
                    ("hop_latency", Json::from(self.noc.hop_latency)),
                ]),
            ),
            (
                "memory",
                Json::obj([
                    ("access_latency", Json::from(self.memory.access_latency)),
                    (
                        "store_latency_skew",
                        Json::from(self.memory.store_latency_skew),
                    ),
                ]),
            ),
            (
                "os",
                Json::obj([
                    (
                        "fsb_drain_per_store",
                        Json::from(self.os.fsb_drain_per_store),
                    ),
                    ("pipeline_flush", Json::from(self.os.pipeline_flush)),
                    ("apply_per_store", Json::from(self.os.apply_per_store)),
                    ("dispatch_overhead", Json::from(self.os.dispatch_overhead)),
                    ("resolve_per_page", Json::from(self.os.resolve_per_page)),
                    ("io_latency", Json::from(self.os.io_latency)),
                    ("retry_attempts", Json::from(self.os.retry_attempts)),
                    ("retry_backoff_base", Json::from(self.os.retry_backoff_base)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = SystemConfig::isca23();
        assert_eq!(c.cores, 16);
        assert_eq!(c.core.width, 4);
        assert_eq!(c.core.rob_entries, 128);
        assert_eq!(c.core.sb_entries, 32);
        assert_eq!(c.l1d.capacity_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l1d.latency, 2);
        assert_eq!(c.l1d.mshrs, 32);
        assert_eq!(c.l2.capacity_bytes, 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.latency, 6);
        assert_eq!(c.tlb.l1_entries, 48);
        assert_eq!(c.tlb.l2_entries, 1024);
        assert_eq!(c.noc.mesh_x, 4);
        assert_eq!(c.noc.nodes(), 16);
        assert_eq!(c.noc.link_bytes, 16);
        assert_eq!(c.noc.hop_latency, 3);
        assert_eq!(c.memory.access_latency, 80);
    }

    #[test]
    fn scaling_builders() {
        let base = SystemConfig::isca23();
        assert_eq!(base.with_double_memory_latency().memory.access_latency, 160);
        assert_eq!(base.with_store_skew(4).memory.store_latency_skew, 4);
        assert_eq!(
            base.with_model(ConsistencyModel::Sc).core.model,
            ConsistencyModel::Sc
        );
    }

    #[test]
    fn cache_set_math() {
        let l1 = CacheConfig::l1d_isca23();
        assert_eq!(l1.sets(64), 256);
        let l2 = CacheConfig::l2_isca23();
        assert_eq!(l2.sets(64), 1024);
    }

    #[test]
    fn prototype_is_two_cores() {
        let p = SystemConfig::prototype2();
        assert_eq!(p.cores, 2);
        assert_eq!(p.noc.nodes(), 2);
    }

    #[test]
    fn config_serializes() {
        let c = SystemConfig::isca23();
        let json = c.to_json().render();
        assert!(json.contains("\"cores\":16"));
        assert!(json.contains("\"rob_entries\":128"));
        assert!(json.contains("\"access_latency\":80"));
        assert_eq!(json, c.to_json().render(), "rendering is deterministic");
    }

    #[test]
    fn hardening_defaults_on_and_stays_out_of_json() {
        let c = SystemConfig::isca23();
        assert_eq!(c.os.hardening, RecoveryHardening::hardened());
        assert!(c.os.hardening.jittered_backoff);
        assert!(c.os.hardening.kill_on_retry_exhaustion);
        assert!(c.os.hardening.chunk_continuation);
        let weak = RecoveryHardening::unhardened();
        assert!(!weak.jittered_backoff);
        assert!(!weak.kill_on_retry_exhaustion);
        assert!(!weak.chunk_continuation);
        // Hardening is a recovery-implementation knob: golden reports
        // must not change when a study flips it.
        let mut unhardened_cfg = c;
        unhardened_cfg.os = unhardened_cfg.os.with_hardening(weak);
        assert_eq!(
            c.to_json().render(),
            unhardened_cfg.to_json().render(),
            "hardening toggles are invisible in config JSON"
        );
    }

    #[test]
    fn reference_clock_builder_and_default() {
        let base = SystemConfig::isca23();
        assert!(!base.reference_clock, "cycle skipping is the default");
        assert!(base.with_reference_clock(true).reference_clock);
        // The clock choice is a simulator-implementation detail: it must
        // not leak into the architectural JSON (golden reports are shared
        // between the two clocks).
        let a = base.to_json().render();
        let b = base.with_reference_clock(true).to_json().render();
        assert_eq!(a, b, "clock toggle is invisible in config JSON");
    }
}
