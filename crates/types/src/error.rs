//! The simulator-wide error type.
//!
//! Fallible paths that used to `unwrap()`/`expect()` mid-simulation —
//! FSB pushes, FSBC drains, store-buffer bookkeeping, OS handler steps —
//! propagate a [`SimError`] instead, so a mis-sized or chaos-stressed
//! configuration surfaces as a diagnosable error rather than a panic.
//! Construction-time invariants (zero capacities, unaligned regions)
//! remain asserts: they are programming errors, not simulated faults.

use crate::addr::{Addr, CoreId};
use std::fmt;

/// An error produced while advancing the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A Faulting Store Buffer had no room for a drained entry.
    FsbFull {
        /// Core whose FSB overflowed.
        core: CoreId,
        /// Ring capacity in entries.
        capacity: usize,
        /// Entries the failed operation needed to queue.
        needed: usize,
    },
    /// A store-buffer operation referenced an entry that does not exist.
    StoreBufferIndex {
        /// Core whose store buffer was addressed.
        core: CoreId,
        /// The out-of-range index.
        index: usize,
        /// Entries currently buffered.
        len: usize,
    },
    /// The store buffer had no room for a retired store.
    StoreBufferFull {
        /// Core whose store buffer overflowed.
        core: CoreId,
        /// Buffer capacity in entries.
        capacity: usize,
    },
    /// The OS handler exhausted its retry budget for a store that kept
    /// faulting (the recovery path of the chaos subsystem declares the
    /// store irrecoverable; the caller decides to kill the process).
    RetryExhausted {
        /// Core whose handler gave up.
        core: CoreId,
        /// Address of the unrecoverable store.
        addr: Addr,
        /// Retries attempted before giving up.
        attempts: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::FsbFull {
                core,
                capacity,
                needed,
            } => write!(
                f,
                "core {core:?}: FSB full (capacity {capacity}, needed {needed})"
            ),
            SimError::StoreBufferIndex { core, index, len } => write!(
                f,
                "core {core:?}: store-buffer index {index} out of range (len {len})"
            ),
            SimError::StoreBufferFull { core, capacity } => {
                write!(f, "core {core:?}: store buffer full (capacity {capacity})")
            }
            SimError::RetryExhausted {
                core,
                addr,
                attempts,
            } => write!(
                f,
                "core {core:?}: store to {addr:?} still faulting after {attempts} retries"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = SimError::FsbFull {
            core: CoreId(3),
            capacity: 32,
            needed: 40,
        };
        let s = e.to_string();
        assert!(s.contains("FSB full"));
        assert!(s.contains("32"));
        assert!(s.contains("40"));
    }

    #[test]
    fn errors_compare() {
        let a = SimError::StoreBufferFull {
            core: CoreId(0),
            capacity: 4,
        };
        assert_eq!(a, a);
        assert_ne!(
            a,
            SimError::StoreBufferFull {
                core: CoreId(1),
                capacity: 4
            }
        );
    }
}
