//! RISC-V machine-mode trap taxonomy and CSR numbers.
//!
//! The RV64 execution frontend (crate `ise-isa`) fetches and executes
//! real guest code; anything that goes architecturally wrong — a
//! misaligned store, an illegal encoding, an `ecall` — is a [`Trap`].
//! The taxonomy follows the RISC-V privileged specification (the same
//! subset `Assasans/mizu` models): each variant carries the address or
//! encoding that caused it, exposes its `mcause` code, and maps onto the
//! simulated system's [`ExceptionKind`] vocabulary so guest traps and
//! hierarchy-detected store exceptions share one reporting surface.

use crate::addr::{AccessSize, Addr};
use crate::exception::ExceptionKind;
use std::fmt;

/// Machine-mode CSR numbers the frontend implements (privileged spec
/// table 3.2; machine trap setup/handling plus identity and counters).
pub mod csr {
    /// Machine status (MIE/MPIE bits).
    pub const MSTATUS: u16 = 0x300;
    /// Machine ISA (read-only description; RV64IA here).
    pub const MISA: u16 = 0x301;
    /// Machine interrupt-enable (MSIE/MTIE bits).
    pub const MIE: u16 = 0x304;
    /// Machine trap vector base.
    pub const MTVEC: u16 = 0x305;
    /// Machine scratch.
    pub const MSCRATCH: u16 = 0x340;
    /// Machine exception program counter.
    pub const MEPC: u16 = 0x341;
    /// Machine trap cause.
    pub const MCAUSE: u16 = 0x342;
    /// Machine trap value (faulting address or encoding).
    pub const MTVAL: u16 = 0x343;
    /// Machine interrupt-pending (MSIP/MTIP bits).
    pub const MIP: u16 = 0x344;
    /// Hart id (read-only).
    pub const MHARTID: u16 = 0xf14;
    /// Cycle counter (read-only shadow).
    pub const CYCLE: u16 = 0xc00;
    /// Retired-instruction counter (read-only shadow).
    pub const INSTRET: u16 = 0xc02;
}

/// `mstatus` bit positions the frontend models.
pub mod mstatus {
    /// Machine interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Previous MIE (stacked on trap entry).
    pub const MPIE: u64 = 1 << 7;
    /// Previous privilege mode (always M here; bits 11:12).
    pub const MPP_M: u64 = 0b11 << 11;
}

/// `mie`/`mip` bit positions (machine software/timer interrupts).
pub mod mip {
    /// Machine software interrupt (CLINT `msip`).
    pub const MSIP: u64 = 1 << 3;
    /// Machine timer interrupt (CLINT `mtime >= mtimecmp`).
    pub const MTIP: u64 = 1 << 7;
}

/// A machine-mode trap: synchronous exceptions raised by the executing
/// instruction, plus the two CLINT-sourced interrupts.
///
/// Synchronous variants carry their `mtval` payload (faulting address,
/// or the offending encoding for [`Trap::IllegalInstruction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Fetch from a misaligned PC.
    InstructionAddrMisaligned(Addr),
    /// Fetch from unmapped/device memory.
    InstructionAccessFault(Addr),
    /// An encoding the decoder rejected (payload: the raw word).
    IllegalInstruction(u64),
    /// `ebreak`.
    Breakpoint(Addr),
    /// Load from an address not aligned to its access size.
    LoadAccessMisaligned(Addr),
    /// Load from unmapped memory.
    LoadAccessFault(Addr),
    /// Store or AMO to an address not aligned to its access size.
    StoreAMOAddrMisaligned(Addr),
    /// Store or AMO to unmapped memory.
    StoreAMOAccessFault(Addr),
    /// `ecall` from machine mode.
    EnvironmentCallFromMMode(Addr),
    /// Machine software interrupt (CLINT `msip`).
    MachineSoftwareInterrupt,
    /// Machine timer interrupt (CLINT timer).
    MachineTimerInterrupt,
}

/// Interrupt bit of `mcause` (bit 63 on RV64).
const INTERRUPT_BIT: u64 = 1 << 63;

impl Trap {
    /// Whether this is an (asynchronous) interrupt rather than a
    /// synchronous exception.
    pub fn is_interrupt(self) -> bool {
        matches!(
            self,
            Trap::MachineSoftwareInterrupt | Trap::MachineTimerInterrupt
        )
    }

    /// The `mcause` value written on trap entry (privileged spec
    /// table 3.6; interrupts have bit 63 set).
    pub fn mcause(self) -> u64 {
        match self {
            Trap::InstructionAddrMisaligned(_) => 0,
            Trap::InstructionAccessFault(_) => 1,
            Trap::IllegalInstruction(_) => 2,
            Trap::Breakpoint(_) => 3,
            Trap::LoadAccessMisaligned(_) => 4,
            Trap::LoadAccessFault(_) => 5,
            Trap::StoreAMOAddrMisaligned(_) => 6,
            Trap::StoreAMOAccessFault(_) => 7,
            Trap::EnvironmentCallFromMMode(_) => 11,
            Trap::MachineSoftwareInterrupt => INTERRUPT_BIT | 3,
            Trap::MachineTimerInterrupt => INTERRUPT_BIT | 7,
        }
    }

    /// The `mtval` value written on trap entry: the faulting address,
    /// the offending encoding for illegal instructions, zero for
    /// interrupts and environment calls.
    pub fn mtval(self) -> u64 {
        match self {
            Trap::InstructionAddrMisaligned(a)
            | Trap::InstructionAccessFault(a)
            | Trap::Breakpoint(a)
            | Trap::LoadAccessMisaligned(a)
            | Trap::LoadAccessFault(a)
            | Trap::StoreAMOAddrMisaligned(a)
            | Trap::StoreAMOAccessFault(a) => a.raw(),
            Trap::IllegalInstruction(word) => word,
            Trap::EnvironmentCallFromMMode(_)
            | Trap::MachineSoftwareInterrupt
            | Trap::MachineTimerInterrupt => 0,
        }
    }

    /// Maps this trap onto the simulated system's exception vocabulary
    /// (DESIGN.md §17's taxonomy table): access faults against device or
    /// unmapped space surface as bus errors, misalignment and illegal
    /// encodings are irrecoverable in a machine-mode-only guest, and the
    /// benign control-flow traps (ecall/ebreak/interrupts) carry no
    /// hierarchy-side exception at all.
    pub fn to_exception_kind(self) -> Option<ExceptionKind> {
        match self {
            Trap::InstructionAccessFault(_)
            | Trap::LoadAccessFault(_)
            | Trap::StoreAMOAccessFault(_) => Some(ExceptionKind::BusError),
            Trap::InstructionAddrMisaligned(_)
            | Trap::IllegalInstruction(_)
            | Trap::LoadAccessMisaligned(_)
            | Trap::StoreAMOAddrMisaligned(_) => Some(ExceptionKind::SegmentationFault),
            Trap::Breakpoint(_)
            | Trap::EnvironmentCallFromMMode(_)
            | Trap::MachineSoftwareInterrupt
            | Trap::MachineTimerInterrupt => None,
        }
    }

    /// The misaligned-access trap for a load of `size` at `addr`.
    pub fn misaligned_load(addr: Addr, _size: AccessSize) -> Trap {
        Trap::LoadAccessMisaligned(addr)
    }

    /// The misaligned-access trap for a store/AMO of `size` at `addr`.
    pub fn misaligned_store(addr: Addr, _size: AccessSize) -> Trap {
        Trap::StoreAMOAddrMisaligned(addr)
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::InstructionAddrMisaligned(a) => {
                write!(f, "instruction address misaligned {a}")
            }
            Trap::InstructionAccessFault(a) => write!(f, "instruction access fault {a}"),
            Trap::IllegalInstruction(w) => write!(f, "illegal instruction {w:#010x}"),
            Trap::Breakpoint(a) => write!(f, "breakpoint {a}"),
            Trap::LoadAccessMisaligned(a) => write!(f, "load address misaligned {a}"),
            Trap::LoadAccessFault(a) => write!(f, "load access fault {a}"),
            Trap::StoreAMOAddrMisaligned(a) => {
                write!(f, "store/AMO address misaligned {a}")
            }
            Trap::StoreAMOAccessFault(a) => write!(f, "store/AMO access fault {a}"),
            Trap::EnvironmentCallFromMMode(a) => {
                write!(f, "environment call from M-mode at {a}")
            }
            Trap::MachineSoftwareInterrupt => write!(f, "machine software interrupt"),
            Trap::MachineTimerInterrupt => write!(f, "machine timer interrupt"),
        }
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for Trap {
        fn save(&self, w: &mut Writer) {
            match self {
                Trap::InstructionAddrMisaligned(a) => {
                    w.u8(0);
                    a.save(w);
                }
                Trap::InstructionAccessFault(a) => {
                    w.u8(1);
                    a.save(w);
                }
                Trap::IllegalInstruction(word) => {
                    w.u8(2);
                    w.u64(*word);
                }
                Trap::Breakpoint(a) => {
                    w.u8(3);
                    a.save(w);
                }
                Trap::LoadAccessMisaligned(a) => {
                    w.u8(4);
                    a.save(w);
                }
                Trap::LoadAccessFault(a) => {
                    w.u8(5);
                    a.save(w);
                }
                Trap::StoreAMOAddrMisaligned(a) => {
                    w.u8(6);
                    a.save(w);
                }
                Trap::StoreAMOAccessFault(a) => {
                    w.u8(7);
                    a.save(w);
                }
                Trap::EnvironmentCallFromMMode(a) => {
                    w.u8(8);
                    a.save(w);
                }
                Trap::MachineSoftwareInterrupt => w.u8(9),
                Trap::MachineTimerInterrupt => w.u8(10),
            }
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => Trap::InstructionAddrMisaligned(Persist::restore(r)?),
                1 => Trap::InstructionAccessFault(Persist::restore(r)?),
                2 => Trap::IllegalInstruction(r.u64()?),
                3 => Trap::Breakpoint(Persist::restore(r)?),
                4 => Trap::LoadAccessMisaligned(Persist::restore(r)?),
                5 => Trap::LoadAccessFault(Persist::restore(r)?),
                6 => Trap::StoreAMOAddrMisaligned(Persist::restore(r)?),
                7 => Trap::StoreAMOAccessFault(Persist::restore(r)?),
                8 => Trap::EnvironmentCallFromMMode(Persist::restore(r)?),
                9 => Trap::MachineSoftwareInterrupt,
                10 => Trap::MachineTimerInterrupt,
                _ => return Err(PersistError::Corrupt("Trap discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcause_codes_match_privileged_spec() {
        assert_eq!(Trap::InstructionAddrMisaligned(Addr::new(0)).mcause(), 0);
        assert_eq!(Trap::IllegalInstruction(0xdead).mcause(), 2);
        assert_eq!(Trap::LoadAccessMisaligned(Addr::new(1)).mcause(), 4);
        assert_eq!(Trap::StoreAMOAddrMisaligned(Addr::new(2)).mcause(), 6);
        assert_eq!(Trap::EnvironmentCallFromMMode(Addr::new(0)).mcause(), 11);
        assert_eq!(Trap::MachineSoftwareInterrupt.mcause(), (1 << 63) | 3);
        assert_eq!(Trap::MachineTimerInterrupt.mcause(), (1 << 63) | 7);
    }

    #[test]
    fn interrupts_are_interrupts() {
        assert!(Trap::MachineTimerInterrupt.is_interrupt());
        assert!(Trap::MachineSoftwareInterrupt.is_interrupt());
        assert!(!Trap::IllegalInstruction(0).is_interrupt());
    }

    #[test]
    fn mtval_carries_address_or_encoding() {
        assert_eq!(Trap::LoadAccessFault(Addr::new(0x40)).mtval(), 0x40);
        assert_eq!(Trap::IllegalInstruction(0xffff_ffff).mtval(), 0xffff_ffff);
        assert_eq!(Trap::MachineTimerInterrupt.mtval(), 0);
    }

    #[test]
    fn exception_kind_mapping() {
        assert_eq!(
            Trap::StoreAMOAccessFault(Addr::new(0)).to_exception_kind(),
            Some(ExceptionKind::BusError)
        );
        assert_eq!(
            Trap::StoreAMOAddrMisaligned(Addr::new(0)).to_exception_kind(),
            Some(ExceptionKind::SegmentationFault)
        );
        assert_eq!(Trap::MachineTimerInterrupt.to_exception_kind(), None);
        assert_eq!(
            Trap::EnvironmentCallFromMMode(Addr::new(0)).to_exception_kind(),
            None
        );
    }

    #[test]
    fn persist_round_trip() {
        use crate::persist::{Reader, Writer};
        let traps = [
            Trap::InstructionAddrMisaligned(Addr::new(3)),
            Trap::InstructionAccessFault(Addr::new(0x999)),
            Trap::IllegalInstruction(0x1234_5678),
            Trap::Breakpoint(Addr::new(8)),
            Trap::LoadAccessMisaligned(Addr::new(5)),
            Trap::LoadAccessFault(Addr::new(6)),
            Trap::StoreAMOAddrMisaligned(Addr::new(7)),
            Trap::StoreAMOAccessFault(Addr::new(9)),
            Trap::EnvironmentCallFromMMode(Addr::new(0x100)),
            Trap::MachineSoftwareInterrupt,
            Trap::MachineTimerInterrupt,
        ];
        use crate::persist::Persist;
        let mut w = Writer::container();
        for t in traps {
            t.save(&mut w);
        }
        let bytes = w.finish();
        let mut r = Reader::container(&bytes).unwrap();
        for t in traps {
            assert_eq!(Trap::restore(&mut r).unwrap(), t);
        }
    }

    #[test]
    fn display_names_follow_the_taxonomy() {
        assert_eq!(
            Trap::StoreAMOAddrMisaligned(Addr::new(0x11)).to_string(),
            "store/AMO address misaligned 0x11"
        );
        assert_eq!(
            Trap::IllegalInstruction(0xbad).to_string(),
            "illegal instruction 0x00000bad"
        );
    }
}
