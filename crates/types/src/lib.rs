//! Common model types for the *Imprecise Store Exceptions* reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: memory addresses and pages ([`addr`]), the trace instruction
//! set executed by the timing cores ([`instr`]), the exception taxonomy —
//! including the x86 classification of Table 1 and the imprecise store
//! exception codes introduced by the paper ([`exception`]), faulting-store
//! records as drained into the Faulting Store Buffer ([`faulting`]),
//! memory-consistency model selectors ([`model`]), system configuration
//! mirroring Table 2 of the paper ([`config`]), statistics containers
//! ([`stats`]), and the shared parser for the repo's `ISE_*` environment
//! pins ([`env`]).
//!
//! # Example
//!
//! ```
//! use ise_types::config::SystemConfig;
//! use ise_types::model::ConsistencyModel;
//!
//! let cfg = SystemConfig::isca23();
//! assert_eq!(cfg.cores, 16);
//! assert_eq!(cfg.core.rob_entries, 128);
//! assert_eq!(cfg.core.model, ConsistencyModel::Wc);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod config;
pub mod env;
pub mod error;
pub mod exception;
pub mod faulting;
pub mod faults;
pub mod instr;
pub mod json;
pub mod model;
pub mod persist;
pub mod stats;
pub mod trap;

pub use addr::{AccessSize, Addr, ByteMask, CoreId, PageId};
pub use config::{RecoveryHardening, SystemConfig};
pub use error::SimError;
pub use exception::{ExceptionClass, ExceptionKind};
pub use faulting::FaultingStoreEntry;
pub use faults::{FaultKind, FaultSpec};
pub use instr::{InstrKind, Instruction};
pub use json::{Json, ToJson};
pub use model::{ConsistencyModel, DrainPolicy};
pub use trap::Trap;
