//! Memory-consistency model and drain-policy selectors.

use std::fmt;

/// The memory consistency model a core (and the checker) enforces.
///
/// The paper studies PC (used interchangeably with TSO, §4.2) and WC, with
/// SC as the degenerate "store buffer disabled" baseline of §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyModel {
    /// Sequential Consistency: no store buffer; every memory operation
    /// completes before the next retires.
    Sc,
    /// Processor Consistency / Total Store Order: stores retire into a FIFO
    /// store buffer; only the store→load ordering is relaxed.
    Pc,
    /// Weak Consistency (RVWMO-like fragment): all orderings relaxed except
    /// same-address, fences, and dependencies.
    Wc,
}

impl ConsistencyModel {
    /// Whether this model permits a store buffer at all.
    pub fn has_store_buffer(self) -> bool {
        !matches!(self, ConsistencyModel::Sc)
    }

    /// Whether the store buffer must drain (and the interface must be fed)
    /// in FIFO program order. True for PC; WC only orders same-address
    /// stores, which coalesce in the buffer (paper §4.4).
    pub fn requires_fifo_drain(self) -> bool {
        matches!(self, ConsistencyModel::Sc | ConsistencyModel::Pc)
    }

    /// All models, for exhaustive sweeps.
    pub const ALL: [ConsistencyModel; 3] = [
        ConsistencyModel::Sc,
        ConsistencyModel::Pc,
        ConsistencyModel::Wc,
    ];
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyModel::Sc => write!(f, "SC"),
            ConsistencyModel::Pc => write!(f, "PC/TSO"),
            ConsistencyModel::Wc => write!(f, "WC"),
        }
    }
}

/// How non-faulting stores that share the store buffer with a faulting
/// store are treated (paper §4.5 vs §4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DrainPolicy {
    /// Same-stream (§4.6, the paper's design): on detection, *all* store
    /// buffer entries — faulting and younger non-faulting — drain to the
    /// FSB in buffer order, and the OS applies them all in that order.
    #[default]
    SameStream,
    /// Split-stream (§4.5): non-faulting stores drain directly to memory
    /// while faulting stores go to the FSB. Correct for PC only with an
    /// additional HW/SW barrier; without one it admits the Fig. 2a race.
    /// Implemented as an ablation.
    SplitStream,
}

impl fmt::Display for DrainPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainPolicy::SameStream => write!(f, "same-stream"),
            DrainPolicy::SplitStream => write!(f, "split-stream"),
        }
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for ConsistencyModel {
        fn save(&self, w: &mut Writer) {
            w.u8(match self {
                ConsistencyModel::Sc => 0,
                ConsistencyModel::Pc => 1,
                ConsistencyModel::Wc => 2,
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => ConsistencyModel::Sc,
                1 => ConsistencyModel::Pc,
                2 => ConsistencyModel::Wc,
                _ => return Err(PersistError::Corrupt("ConsistencyModel discriminant")),
            })
        }
    }

    impl Persist for DrainPolicy {
        fn save(&self, w: &mut Writer) {
            w.u8(match self {
                DrainPolicy::SameStream => 0,
                DrainPolicy::SplitStream => 1,
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => DrainPolicy::SameStream,
                1 => DrainPolicy::SplitStream,
                _ => return Err(PersistError::Corrupt("DrainPolicy discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_has_no_store_buffer() {
        assert!(!ConsistencyModel::Sc.has_store_buffer());
        assert!(ConsistencyModel::Pc.has_store_buffer());
        assert!(ConsistencyModel::Wc.has_store_buffer());
    }

    #[test]
    fn fifo_drain_required_for_pc_not_wc() {
        assert!(ConsistencyModel::Pc.requires_fifo_drain());
        assert!(!ConsistencyModel::Wc.requires_fifo_drain());
    }

    #[test]
    fn default_drain_policy_is_same_stream() {
        assert_eq!(DrainPolicy::default(), DrainPolicy::SameStream);
    }

    #[test]
    fn all_covers_every_model() {
        assert_eq!(ConsistencyModel::ALL.len(), 3);
    }
}
