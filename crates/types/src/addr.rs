//! Addresses, pages, cache lines, byte masks, and core identifiers.
//!
//! All address arithmetic in the workspace funnels through the newtypes in
//! this module so that page/line granularity conversions are explicit and
//! cannot be confused with raw integers.

use std::fmt;

/// Size of a virtual-memory page in bytes (4 KiB, as assumed throughout the
/// paper: EInject's bitmap, FSB page pinning, and demand paging are all
/// 4 KiB-granular).
pub const PAGE_SIZE: u64 = 4096;

/// Size of a cache block in bytes (64 B, Table 2).
pub const LINE_SIZE: u64 = 64;

/// A physical memory address.
///
/// `Addr` is ordered and hashable so it can key directories, store buffers
/// and page bitmaps directly.
///
/// ```
/// use ise_types::addr::Addr;
/// let a = Addr::new(0x1_2345);
/// assert_eq!(a.page().index(), 0x12);
/// assert_eq!(a.line_offset(), 0x1_2345 % 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw 64-bit physical address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The 4 KiB page containing this address.
    pub const fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE)
    }

    /// The address of the first byte of the cache line containing this
    /// address.
    pub const fn line(self) -> Addr {
        Addr(self.0 & !(LINE_SIZE - 1))
    }

    /// Byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_SIZE - 1)
    }

    /// Byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on 64-bit overflow in debug builds (standard integer
    /// semantics).
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// Identifier of a 4 KiB physical page.
///
/// This is the granularity at which EInject marks memory as faulting
/// (paper §6.2) and at which the OS resolves demand-paging exceptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Wraps a raw page index (address divided by [`PAGE_SIZE`]).
    pub const fn new(index: u64) -> Self {
        PageId(index)
    }

    /// The raw page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The address of the first byte of this page.
    pub const fn base(self) -> Addr {
        Addr(self.0 * PAGE_SIZE)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

/// A byte-enable mask for a store of up to 8 bytes, as recorded in each
/// Faulting Store Buffer entry (paper §4.1: "address, data, byte mask, and
/// the accelerator-specific exception code").
///
/// Bit *i* set means byte *i* of the 8-byte datum is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteMask(u8);

impl ByteMask {
    /// All eight bytes enabled — a full 64-bit store.
    pub const FULL: ByteMask = ByteMask(0xff);

    /// Creates a mask from raw bits.
    pub const fn from_bits(bits: u8) -> Self {
        ByteMask(bits)
    }

    /// Mask enabling `len` bytes starting at byte offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > 8` or `len == 0`.
    pub fn span(offset: u8, len: u8) -> Self {
        assert!(len > 0 && offset + len <= 8, "byte span out of range");
        ByteMask((((1u16 << len) - 1) as u8) << offset)
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether byte `i` is enabled.
    pub const fn covers(self, i: u8) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Number of enabled bytes.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no byte is enabled.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Merges the bytes of `new` over `old` according to this mask:
    /// enabled bytes come from `new`, others from `old`. This is the
    /// coalescing rule used by store buffers and by the OS when applying
    /// faulting stores.
    pub fn merge(self, old: u64, new: u64) -> u64 {
        let mut out = old;
        for i in 0..8 {
            if self.covers(i) {
                let shift = i * 8;
                out = (out & !(0xffu64 << shift)) | (new & (0xffu64 << shift));
            }
        }
        out
    }
}

impl Default for ByteMask {
    fn default() -> Self {
        ByteMask::FULL
    }
}

impl std::ops::BitOr for ByteMask {
    type Output = ByteMask;
    fn bitor(self, rhs: ByteMask) -> ByteMask {
        ByteMask(self.0 | rhs.0)
    }
}

impl fmt::Display for ByteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010b}", self.0)
    }
}

/// Width of one guest memory access, as issued by the RV64 frontend's
/// load/store/AMO instructions. Sub-word granularities exist so byte-
/// and half-word guest accesses merge into their containing 8-byte word
/// instead of silently clobbering it (the FSB entry granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 1 byte (`lb`/`lbu`/`sb`).
    Byte,
    /// 2 bytes (`lh`/`lhu`/`sh`).
    Half,
    /// 4 bytes (`lw`/`lwu`/`sw`, `amoadd.w`).
    Word,
    /// 8 bytes (`ld`/`sd`, `amoadd.d`).
    Double,
}

impl AccessSize {
    /// The access width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
            AccessSize::Double => 8,
        }
    }

    /// The byte-enable mask of an access of this size landing at `addr`
    /// (which must be aligned; callers check with [`Addr::is_aligned`]).
    pub fn mask_at(self, addr: Addr) -> ByteMask {
        ByteMask::span((addr.raw() % 8) as u8, self.bytes() as u8)
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

impl Addr {
    /// Whether this address is naturally aligned for an access of
    /// `size` (the RV64 frontend traps misaligned accesses rather than
    /// splitting them).
    pub const fn is_aligned(self, size: AccessSize) -> bool {
        self.0.is_multiple_of(size.bytes())
    }
}

/// Identifier of a core in the simulated multicore (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(i: usize) -> Self {
        CoreId(i)
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for Addr {
        fn save(&self, w: &mut Writer) {
            w.u64(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(Addr(r.u64()?))
        }
    }

    impl Persist for PageId {
        fn save(&self, w: &mut Writer) {
            w.u64(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(PageId(r.u64()?))
        }
    }

    impl Persist for ByteMask {
        fn save(&self, w: &mut Writer) {
            w.u8(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(ByteMask(r.u8()?))
        }
    }

    impl Persist for CoreId {
        fn save(&self, w: &mut Writer) {
            w.usize(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(CoreId(r.usize()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_and_line_math() {
        let a = Addr::new(PAGE_SIZE * 3 + 70);
        assert_eq!(a.page(), PageId::new(3));
        assert_eq!(a.page_offset(), 70);
        assert_eq!(a.line(), Addr::new(PAGE_SIZE * 3 + 64));
        assert_eq!(a.line_offset(), 6);
        assert_eq!(a.offset(2).raw(), a.raw() + 2);
    }

    #[test]
    fn page_roundtrip() {
        let p = PageId::new(42);
        assert_eq!(p.base().page(), p);
        assert_eq!(p.base().page_offset(), 0);
    }

    #[test]
    fn mask_span_and_covers() {
        let m = ByteMask::span(2, 3);
        assert_eq!(m.len(), 3);
        assert!(!m.covers(1));
        assert!(m.covers(2));
        assert!(m.covers(4));
        assert!(!m.covers(5));
    }

    #[test]
    #[should_panic(expected = "byte span out of range")]
    fn mask_span_rejects_overflow() {
        let _ = ByteMask::span(6, 3);
    }

    #[test]
    fn mask_merge_selects_bytes() {
        let m = ByteMask::span(0, 4);
        let merged = m.merge(0xaaaa_bbbb_cccc_ddddu64, 0x1111_2222_3333_4444u64);
        assert_eq!(merged, 0xaaaa_bbbb_3333_4444u64);
    }

    #[test]
    fn mask_merge_full_replaces_all() {
        assert_eq!(ByteMask::FULL.merge(u64::MAX, 7), 7);
    }

    #[test]
    fn mask_or_unions() {
        let m = ByteMask::span(0, 2) | ByteMask::span(6, 2);
        assert_eq!(m.bits(), 0b1100_0011);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(PageId::new(1).to_string(), "page:0x1");
    }
}
