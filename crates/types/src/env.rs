//! Shared parsing for the repo's `ISE_*` environment pins.
//!
//! Every crate that reads an environment override (`ISE_CYCLE_SKIP` in
//! `ise-engine`, `ISE_WORKERS` in `ise-par`, `ISE_TRACE` /
//! `ISE_TRACE_CAP` in `ise-telemetry`) parses it through this module, so
//! the accepted spellings are identical everywhere and a malformed value
//! fails loudly instead of silently falling back to a default. A user
//! who sets `ISE_TRACE=true` wants tracing; treating that as "disabled"
//! (or treating `ISE_WORKERS=lots` as "1 worker") turns a typo into a
//! silently different run.
//!
//! Two layers:
//!
//! * [`parse_flag`] / [`parse_count`] — pure parsers returning
//!   `Result`, for callers that want to keep `Option` semantics (the
//!   legacy `parse_cycle_skip` / `parse_workers` surfaces).
//! * [`flag_from`] / [`count_from`] and the env-reading [`env_flag`] /
//!   [`env_count`] — the loud layer: unset means `None`, a recognised
//!   value parses, and anything else panics with the variable name and
//!   the accepted forms.

use std::num::NonZeroUsize;

/// Parses a boolean flag value: `0`/`off`/`false`/`no` and
/// `1`/`on`/`true`/`yes`, case-insensitively, surrounding whitespace
/// ignored.
///
/// # Errors
///
/// Returns a message describing the accepted forms for any other value.
pub fn parse_flag(value: &str) -> Result<bool, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "false" | "no" => Ok(false),
        "1" | "on" | "true" | "yes" => Ok(true),
        other => Err(format!(
            "expected 0/off/false/no or 1/on/true/yes, got `{other}`"
        )),
    }
}

/// Parses a positive integer count (whitespace-trimmed).
///
/// # Errors
///
/// Returns a message for zero, negative, or non-numeric values.
pub fn parse_count(value: &str) -> Result<NonZeroUsize, String> {
    value
        .trim()
        .parse::<NonZeroUsize>()
        .map_err(|_| format!("expected a positive integer, got `{}`", value.trim()))
}

/// [`parse_flag`] over an optional value, panicking loudly on garbage.
///
/// `None` (variable unset) stays `None`; a recognised value becomes
/// `Some(bool)`.
///
/// # Panics
///
/// Panics with `name` and the accepted forms on a malformed value.
pub fn flag_from(name: &str, value: Option<&str>) -> Option<bool> {
    value.map(|v| parse_flag(v).unwrap_or_else(|e| panic!("{name}: {e}")))
}

/// [`parse_count`] over an optional value, panicking loudly on garbage.
///
/// # Panics
///
/// Panics with `name` and the accepted forms on a malformed value.
pub fn count_from(name: &str, value: Option<&str>) -> Option<NonZeroUsize> {
    value.map(|v| parse_count(v).unwrap_or_else(|e| panic!("{name}: {e}")))
}

/// Reads the boolean environment variable `name` through [`flag_from`].
///
/// # Panics
///
/// Panics if the variable is set to something other than the recognised
/// flag spellings.
pub fn env_flag(name: &str) -> Option<bool> {
    flag_from(name, std::env::var(name).ok().as_deref())
}

/// Reads the positive-integer environment variable `name` through
/// [`count_from`].
///
/// # Panics
///
/// Panics if the variable is set to anything but a positive integer.
pub fn env_count(name: &str) -> Option<NonZeroUsize> {
    count_from(name, std::env::var(name).ok().as_deref())
}

/// Parses a positive cycle count (whitespace-trimmed). Distinct from
/// [`parse_count`] because cycle budgets are `u64` quantities that may
/// exceed what fits a collection index, and `0` would mean "no budget at
/// all" — reject it loudly rather than guess.
///
/// # Errors
///
/// Returns a message for zero, negative, or non-numeric values.
pub fn parse_cycles(value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(0) | Err(_) => Err(format!(
            "expected a positive cycle count, got `{}`",
            value.trim()
        )),
        Ok(n) => Ok(n),
    }
}

/// [`parse_cycles`] over an optional value, panicking loudly on garbage.
///
/// # Panics
///
/// Panics with `name` and the accepted forms on a malformed value.
pub fn cycles_from(name: &str, value: Option<&str>) -> Option<u64> {
    value.map(|v| parse_cycles(v).unwrap_or_else(|e| panic!("{name}: {e}")))
}

/// Reads the positive cycle-count environment variable `name` through
/// [`cycles_from`].
///
/// # Panics
///
/// Panics if the variable is set to anything but a positive integer.
pub fn env_cycles(name: &str) -> Option<u64> {
    cycles_from(name, std::env::var(name).ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_accepts_all_spellings() {
        for v in ["0", "off", "OFF", "false", "no", " 0 "] {
            assert_eq!(parse_flag(v), Ok(false), "value {v:?}");
        }
        for v in ["1", "on", "true", "YES", " 1 ", "True"] {
            assert_eq!(parse_flag(v), Ok(true), "value {v:?}");
        }
    }

    #[test]
    fn flag_rejects_garbage_with_accepted_forms() {
        for v in ["2", "maybe", "", "yess"] {
            let e = parse_flag(v).unwrap_err();
            assert!(e.contains("expected 0/off/false/no"), "got: {e}");
        }
    }

    #[test]
    fn count_accepts_positive_integers_only() {
        assert_eq!(parse_count("4").map(NonZeroUsize::get), Ok(4));
        assert_eq!(parse_count(" 2 ").map(NonZeroUsize::get), Ok(2));
        for v in ["0", "-1", "lots", "", "1.5"] {
            assert!(parse_count(v).is_err(), "value {v:?} must be rejected");
        }
    }

    #[test]
    fn optional_layer_passes_unset_through() {
        assert_eq!(flag_from("ISE_TEST_FLAG", None), None);
        assert_eq!(count_from("ISE_TEST_COUNT", None), None);
        assert_eq!(flag_from("ISE_TEST_FLAG", Some("true")), Some(true));
        assert_eq!(
            count_from("ISE_TEST_COUNT", Some("8")).map(NonZeroUsize::get),
            Some(8)
        );
    }

    #[test]
    #[should_panic(expected = "ISE_TEST_FLAG: expected 0/off/false/no")]
    fn malformed_flag_panics_with_variable_name() {
        flag_from("ISE_TEST_FLAG", Some("maybe"));
    }

    #[test]
    #[should_panic(expected = "ISE_TEST_COUNT: expected a positive integer")]
    fn malformed_count_panics_with_variable_name() {
        count_from("ISE_TEST_COUNT", Some("lots"));
    }

    #[test]
    fn cycles_accepts_positive_u64_only() {
        assert_eq!(parse_cycles("1"), Ok(1));
        assert_eq!(parse_cycles(" 5000000 "), Ok(5_000_000));
        assert_eq!(parse_cycles("18446744073709551615"), Ok(u64::MAX));
        for v in ["0", "-3", "soon", "", "2.5"] {
            assert!(parse_cycles(v).is_err(), "value {v:?} must be rejected");
        }
    }

    #[test]
    fn cycles_optional_layer_passes_unset_through() {
        assert_eq!(cycles_from("ISE_CELL_BUDGET", None), None);
        assert_eq!(
            cycles_from("ISE_CELL_BUDGET", Some("250000")),
            Some(250_000)
        );
    }

    #[test]
    #[should_panic(expected = "ISE_CELL_BUDGET: expected a positive cycle count")]
    fn malformed_cycles_panics_with_variable_name() {
        cycles_from("ISE_CELL_BUDGET", Some("0"));
    }
}
