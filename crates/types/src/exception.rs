//! Exception taxonomy.
//!
//! Two layers live here. [`X86Exception`] reproduces Table 1 of the paper —
//! the classification of x86 exceptions by pipeline stage of origin and by
//! fault/trap/abort class — used to make the point that, machine checks
//! aside, every modern exception originates *inside* the core. The second
//! layer, [`ExceptionKind`], is the exception vocabulary of our simulated
//! system, including the imprecise store exception codes that components in
//! the memory hierarchy (EInject, a täkō-style accelerator, Midgard-style
//! late translation) can attach to a store response.

use std::fmt;

/// Architectural classification of an exception (x86 terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionClass {
    /// Restartable: reported on the faulting instruction before it commits.
    Fault,
    /// Reported after the triggering instruction commits.
    Trap,
    /// Non-restartable; the process (or machine) cannot continue precisely.
    Abort,
}

impl fmt::Display for ExceptionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExceptionClass::Fault => write!(f, "Fault"),
            ExceptionClass::Trap => write!(f, "Trap"),
            ExceptionClass::Abort => write!(f, "Abort"),
        }
    }
}

/// Pipeline stage in which an exception is generated (Table 1's left
/// column). `Hierarchy` is the new point of origin the paper introduces:
/// compute units embedded in the cache/memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OriginStage {
    /// Instruction fetch.
    Fetch,
    /// Decode.
    Decode,
    /// Execute (ALU/FP).
    Execute,
    /// Memory stage (address translation in the core).
    Memory,
    /// Asynchronous / cross-cutting (machine checks).
    Machine,
    /// Generated in the cache/memory hierarchy, post-retirement — the
    /// paper's subject.
    Hierarchy,
}

impl fmt::Display for OriginStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OriginStage::Fetch => "Fetch",
            OriginStage::Decode => "Decode",
            OriginStage::Execute => "Execute",
            OriginStage::Memory => "Memory",
            OriginStage::Machine => "Machine",
            OriginStage::Hierarchy => "Hierarchy",
        };
        write!(f, "{s}")
    }
}

/// One row entry of Table 1: a named x86 exception with its class and the
/// stage that generates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct X86Exception {
    /// Human-readable exception name.
    pub name: &'static str,
    /// Fault / trap / abort.
    pub class: ExceptionClass,
    /// Stage of origin.
    pub origin: OriginStage,
}

/// The full Table 1 taxonomy, in paper order.
pub const X86_EXCEPTIONS: &[X86Exception] = &[
    x(
        "Control protection exception",
        ExceptionClass::Fault,
        OriginStage::Fetch,
    ),
    x("Code page fault", ExceptionClass::Fault, OriginStage::Fetch),
    x(
        "Code-segment limit violation",
        ExceptionClass::Fault,
        OriginStage::Fetch,
    ),
    x("Invalid opcode", ExceptionClass::Fault, OriginStage::Decode),
    x(
        "Device not available",
        ExceptionClass::Fault,
        OriginStage::Decode,
    ),
    x("Debug", ExceptionClass::Fault, OriginStage::Decode),
    x(
        "Divide by zero",
        ExceptionClass::Fault,
        OriginStage::Execute,
    ),
    x(
        "Bound range exceeded",
        ExceptionClass::Fault,
        OriginStage::Execute,
    ),
    x("FP error", ExceptionClass::Fault, OriginStage::Execute),
    x(
        "Alignment check",
        ExceptionClass::Fault,
        OriginStage::Execute,
    ),
    x(
        "SIMD FP exception",
        ExceptionClass::Fault,
        OriginStage::Execute,
    ),
    x("Invalid TSS", ExceptionClass::Fault, OriginStage::Execute),
    x(
        "Segment not present",
        ExceptionClass::Fault,
        OriginStage::Memory,
    ),
    x(
        "Stack-segment fault",
        ExceptionClass::Fault,
        OriginStage::Memory,
    ),
    x("Page fault", ExceptionClass::Fault, OriginStage::Memory),
    x(
        "General protection fault",
        ExceptionClass::Fault,
        OriginStage::Memory,
    ),
    x(
        "Virtualization exception",
        ExceptionClass::Fault,
        OriginStage::Memory,
    ),
    x("Debug (trap)", ExceptionClass::Trap, OriginStage::Execute),
    x("Breakpoint", ExceptionClass::Trap, OriginStage::Execute),
    x("Overflow", ExceptionClass::Trap, OriginStage::Execute),
    x("Double fault", ExceptionClass::Abort, OriginStage::Machine),
    x("Triple fault", ExceptionClass::Abort, OriginStage::Machine),
    x("Machine Check", ExceptionClass::Abort, OriginStage::Machine),
];

const fn x(name: &'static str, class: ExceptionClass, origin: OriginStage) -> X86Exception {
    X86Exception {
        name,
        class,
        origin,
    }
}

/// An accelerator-specific error code carried in a store response and in
/// each FSB entry (paper §5.1: "a response with an embedded error code").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ErrorCode(pub u16);

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "err:{:#06x}", self.0)
    }
}

/// The exceptions our simulated system can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// A recoverable page fault detected in the hierarchy (demand paging,
    /// lazy allocation, Midgard-style late translation miss).
    PageFault,
    /// An EInject-denied bus transaction (paper §6.2): the device set the
    /// `denied` bit on the TileLink-UL response.
    BusError,
    /// A fault raised by a täkō-style accelerator callback while
    /// transforming data for this access.
    AcceleratorFault(ErrorCode),
    /// An irrecoverable access violation; the OS terminates the process.
    SegmentationFault,
    /// A fatal ECC machine check (the one pre-existing imprecise exception;
    /// kept for completeness).
    MachineCheck,
}

impl ExceptionKind {
    /// Whether the OS can resolve this exception and let the program
    /// continue (paper §4.1: recoverable → apply faulting stores and
    /// resume; irrecoverable → discard and terminate).
    pub fn is_recoverable(self) -> bool {
        match self {
            ExceptionKind::PageFault
            | ExceptionKind::BusError
            | ExceptionKind::AcceleratorFault(_) => true,
            ExceptionKind::SegmentationFault | ExceptionKind::MachineCheck => false,
        }
    }

    /// The wire error code embedded in a faulting response.
    pub fn error_code(self) -> ErrorCode {
        match self {
            ExceptionKind::PageFault => ErrorCode(0x0001),
            ExceptionKind::BusError => ErrorCode(0x0002),
            ExceptionKind::AcceleratorFault(c) => c,
            ExceptionKind::SegmentationFault => ErrorCode(0x000e),
            ExceptionKind::MachineCheck => ErrorCode(0x00fe),
        }
    }
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExceptionKind::PageFault => write!(f, "page fault"),
            ExceptionKind::BusError => write!(f, "bus error"),
            ExceptionKind::AcceleratorFault(c) => write!(f, "accelerator fault ({c})"),
            ExceptionKind::SegmentationFault => write!(f, "segmentation fault"),
            ExceptionKind::MachineCheck => write!(f, "machine check"),
        }
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for ErrorCode {
        fn save(&self, w: &mut Writer) {
            w.u16(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(ErrorCode(r.u16()?))
        }
    }

    impl Persist for ExceptionKind {
        fn save(&self, w: &mut Writer) {
            match self {
                ExceptionKind::PageFault => w.u8(0),
                ExceptionKind::BusError => w.u8(1),
                ExceptionKind::AcceleratorFault(c) => {
                    w.u8(2);
                    c.save(w);
                }
                ExceptionKind::SegmentationFault => w.u8(3),
                ExceptionKind::MachineCheck => w.u8(4),
            }
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => ExceptionKind::PageFault,
                1 => ExceptionKind::BusError,
                2 => ExceptionKind::AcceleratorFault(Persist::restore(r)?),
                3 => ExceptionKind::SegmentationFault,
                4 => ExceptionKind::MachineCheck,
                _ => return Err(PersistError::Corrupt("ExceptionKind discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_rows() {
        assert_eq!(X86_EXCEPTIONS.len(), 23);
        let faults = X86_EXCEPTIONS
            .iter()
            .filter(|e| e.class == ExceptionClass::Fault)
            .count();
        let traps = X86_EXCEPTIONS
            .iter()
            .filter(|e| e.class == ExceptionClass::Trap)
            .count();
        let aborts = X86_EXCEPTIONS
            .iter()
            .filter(|e| e.class == ExceptionClass::Abort)
            .count();
        assert_eq!((faults, traps, aborts), (17, 3, 3));
    }

    #[test]
    fn only_machine_checks_originate_outside_core_in_table1() {
        for e in X86_EXCEPTIONS {
            if e.origin == OriginStage::Machine {
                assert_eq!(e.class, ExceptionClass::Abort);
            } else {
                assert_ne!(e.origin, OriginStage::Hierarchy);
            }
        }
    }

    #[test]
    fn recoverability_matches_paper() {
        assert!(ExceptionKind::PageFault.is_recoverable());
        assert!(ExceptionKind::BusError.is_recoverable());
        assert!(ExceptionKind::AcceleratorFault(ErrorCode(9)).is_recoverable());
        assert!(!ExceptionKind::SegmentationFault.is_recoverable());
        assert!(!ExceptionKind::MachineCheck.is_recoverable());
    }

    #[test]
    fn error_codes_are_distinct() {
        let codes = [
            ExceptionKind::PageFault.error_code(),
            ExceptionKind::BusError.error_code(),
            ExceptionKind::SegmentationFault.error_code(),
            ExceptionKind::MachineCheck.error_code(),
        ];
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                assert_ne!(codes[i], codes[j]);
            }
        }
    }

    #[test]
    fn accelerator_fault_carries_code() {
        assert_eq!(
            ExceptionKind::AcceleratorFault(ErrorCode(0x42)).error_code(),
            ErrorCode(0x42)
        );
    }
}
