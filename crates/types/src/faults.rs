//! Fault-injection plan configuration (the chaos layer).
//!
//! The paper's EInject device (§6.2) models exactly one failure shape: a
//! page is marked faulting and stays faulting until the OS clears it.
//! Real store failures are richer — a bus error can be transient
//! (retrying succeeds), intermittent (a flaky link denies a fraction of
//! transactions), or confined to a time window (a device resetting).
//! These types describe *what* a chaos campaign injects; the injector in
//! `ise-core` interprets them behind the same `FaultOracle` seam EInject
//! uses, so the hierarchy, FSBC, and OS consume them unchanged.

use crate::exception::ExceptionKind;
use std::fmt;

/// The temporal behaviour of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Denies every transaction until the OS resolves the page —
    /// EInject's behaviour, the degenerate plan.
    Permanent,
    /// Denies the first `clears_after` transactions, then heals itself.
    /// The OS cannot resolve it; only retrying (with backoff) gets
    /// through — the paper's "transient bus error" recovery case.
    Transient {
        /// Denials before the fault heals. Zero never denies.
        clears_after: u32,
    },
    /// Denies each transaction independently with probability
    /// `probability` (deterministic given the injector's seed).
    Intermittent {
        /// Per-transaction denial probability, clamped to `[0, 1]`.
        probability: f64,
    },
    /// Denies only while the injector's clock is in `[from, until)`.
    Windowed {
        /// First faulting cycle.
        from: u64,
        /// First cycle past the window.
        until: u64,
    },
}

impl FaultKind {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Permanent => "permanent",
            FaultKind::Transient { .. } => "transient",
            FaultKind::Intermittent { .. } => "intermittent",
            FaultKind::Windowed { .. } => "windowed",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Permanent => write!(f, "permanent"),
            FaultKind::Transient { clears_after } => {
                write!(f, "transient(clears_after={clears_after})")
            }
            FaultKind::Intermittent { probability } => {
                write!(f, "intermittent(p={probability})")
            }
            FaultKind::Windowed { from, until } => write!(f, "windowed({from}..{until})"),
        }
    }
}

/// What one page injects: a temporal behaviour plus the error embedded in
/// denied responses (per-page error codes — a machine check on one page,
/// a bus error on another).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// When the page denies.
    pub kind: FaultKind,
    /// The exception carried by denied transactions.
    pub exception: ExceptionKind,
}

impl FaultSpec {
    /// A spec denying with `kind` and responding with a bus error — the
    /// common case, matching EInject's wire behaviour.
    pub fn bus_error(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            exception: ExceptionKind::BusError,
        }
    }

    /// The same temporal behaviour with a different embedded exception.
    pub fn with_exception(mut self, exception: ExceptionKind) -> Self {
        self.exception = exception;
        self
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for FaultKind {
        fn save(&self, w: &mut Writer) {
            match self {
                FaultKind::Permanent => w.u8(0),
                FaultKind::Transient { clears_after } => {
                    w.u8(1);
                    w.u32(*clears_after);
                }
                FaultKind::Intermittent { probability } => {
                    w.u8(2);
                    w.f64(*probability);
                }
                FaultKind::Windowed { from, until } => {
                    w.u8(3);
                    w.u64(*from);
                    w.u64(*until);
                }
            }
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => FaultKind::Permanent,
                1 => FaultKind::Transient {
                    clears_after: r.u32()?,
                },
                2 => FaultKind::Intermittent {
                    probability: r.f64()?,
                },
                3 => FaultKind::Windowed {
                    from: r.u64()?,
                    until: r.u64()?,
                },
                _ => return Err(PersistError::Corrupt("FaultKind discriminant")),
            })
        }
    }

    impl Persist for FaultSpec {
        fn save(&self, w: &mut Writer) {
            self.kind.save(w);
            self.exception.save(w);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(FaultSpec {
                kind: Persist::restore(r)?,
                exception: Persist::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(FaultKind::Permanent.name(), "permanent");
        assert_eq!(FaultKind::Transient { clears_after: 3 }.name(), "transient");
        assert_eq!(
            FaultKind::Intermittent { probability: 0.5 }.name(),
            "intermittent"
        );
        assert_eq!(FaultKind::Windowed { from: 0, until: 9 }.name(), "windowed");
    }

    #[test]
    fn display_carries_parameters() {
        assert_eq!(
            FaultKind::Transient { clears_after: 2 }.to_string(),
            "transient(clears_after=2)"
        );
        assert_eq!(
            FaultKind::Windowed {
                from: 10,
                until: 20
            }
            .to_string(),
            "windowed(10..20)"
        );
    }

    #[test]
    fn bus_error_spec_defaults() {
        let s = FaultSpec::bus_error(FaultKind::Permanent);
        assert_eq!(s.exception, ExceptionKind::BusError);
        let m = s.with_exception(ExceptionKind::MachineCheck);
        assert_eq!(m.exception, ExceptionKind::MachineCheck);
        assert_eq!(m.kind, FaultKind::Permanent);
    }
}
