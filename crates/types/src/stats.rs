//! Statistics containers used by the simulator and the experiment harness.

use crate::json::{Json, ToJson};
use std::fmt;

/// A streaming mean/min/max accumulator for cycle counts and similar
/// quantities.
///
/// ```
/// use ise_types::stats::Summary;
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 6.0] { s.record(v); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ToJson for Summary {
    /// The JSON encoding. An empty summary's `min`/`max` are
    /// `±INFINITY` internally, which JSON cannot represent — they are
    /// emitted as `null` (never `inf`), matching the [`Summary::min`] /
    /// [`Summary::max`] accessors.
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("mean", Json::from(self.mean())),
            ("min", self.min().to_json()),
            ("max", self.max().to_json()),
        ])
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.2} min={:.2} max={:.2}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// A fixed-bucket histogram with power-of-two bucket boundaries, used for
/// latency distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram covering values up to `2^(buckets-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; buckets],
        }
    }

    /// Records a value; values beyond the last boundary land in the last
    /// bucket.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Raw bucket counts; bucket *i* covers `[2^(i-1), 2^i)` (bucket 0 is
    /// the value 0).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges another histogram into this one bucket-wise, growing to
    /// the larger bucket count when they differ.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "buckets",
                Json::arr(self.buckets.iter().map(|&b| Json::from(b))),
            ),
            ("total", Json::from(self.total())),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(24)
    }
}

/// Core-level timing statistics produced by one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles the retire stage was blocked by a store awaiting completion
    /// (SC) or a full store buffer (PC/WC).
    pub store_stall_cycles: u64,
    /// Cycles stalled on fences/atomics draining the store buffer.
    pub sync_stall_cycles: u64,
    /// L1D misses observed.
    pub l1d_misses: u64,
    /// Imprecise store exceptions taken.
    pub imprecise_exceptions: u64,
    /// Faulting stores drained to the FSB.
    pub faulting_stores: u64,
    /// Precise exceptions taken.
    pub precise_exceptions: u64,
}

impl CoreStats {
    /// Instructions per cycle (0.0 when no cycles elapsed).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Merges per-core stats into an aggregate.
    pub fn merge(&mut self, other: &CoreStats) {
        self.retired += other.retired;
        self.cycles = self.cycles.max(other.cycles);
        self.store_stall_cycles += other.store_stall_cycles;
        self.sync_stall_cycles += other.sync_stall_cycles;
        self.l1d_misses += other.l1d_misses;
        self.imprecise_exceptions += other.imprecise_exceptions;
        self.faulting_stores += other.faulting_stores;
        self.precise_exceptions += other.precise_exceptions;
    }
}

impl ToJson for CoreStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("retired", Json::from(self.retired)),
            ("cycles", Json::from(self.cycles)),
            ("store_stall_cycles", Json::from(self.store_stall_cycles)),
            ("sync_stall_cycles", Json::from(self.sync_stall_cycles)),
            ("l1d_misses", Json::from(self.l1d_misses)),
            (
                "imprecise_exceptions",
                Json::from(self.imprecise_exceptions),
            ),
            ("faulting_stores", Json::from(self.faulting_stores)),
            ("precise_exceptions", Json::from(self.precise_exceptions)),
        ])
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for Summary {
        fn save(&self, w: &mut Writer) {
            w.u64(self.count);
            w.f64(self.sum);
            w.f64(self.min);
            w.f64(self.max);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(Summary {
                count: r.u64()?,
                sum: r.f64()?,
                min: r.f64()?,
                max: r.f64()?,
            })
        }
    }

    impl Persist for Histogram {
        fn save(&self, w: &mut Writer) {
            self.buckets.save(w);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            let buckets = Vec::<u64>::restore(r)?;
            if buckets.is_empty() {
                return Err(PersistError::Corrupt("empty histogram"));
            }
            Ok(Histogram { buckets })
        }
    }

    impl Persist for CoreStats {
        fn save(&self, w: &mut Writer) {
            w.u64(self.retired);
            w.u64(self.cycles);
            w.u64(self.store_stall_cycles);
            w.u64(self.sync_stall_cycles);
            w.u64(self.l1d_misses);
            w.u64(self.imprecise_exceptions);
            w.u64(self.faulting_stores);
            w.u64(self.precise_exceptions);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(CoreStats {
                retired: r.u64()?,
                cycles: r.u64()?,
                store_stall_cycles: r.u64()?,
                sync_stall_cycles: r.u64()?,
                l1d_misses: r.u64()?,
                imprecise_exceptions: r.u64()?,
                faulting_stores: r.u64()?,
                precise_exceptions: r.u64()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.min(), None);
        s.record(5.0);
        s.record(1.0);
        s.record(9.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn summary_merge_is_concat() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn empty_summary_json_emits_null_extremes() {
        // Regression: min/max default to ±INFINITY, which JSON cannot
        // represent. The export must say null, not "inf" or a broken
        // token.
        let s = Summary::new();
        assert_eq!(
            s.to_json().render(),
            r#"{"count":0,"sum":0,"mean":0,"min":null,"max":null}"#
        );
    }

    #[test]
    fn populated_summary_json_round_trips_extremes() {
        let mut s = Summary::new();
        s.record(2.0);
        s.record(6.0);
        assert_eq!(
            s.to_json().render(),
            r#"{"count":2,"sum":8,"mean":4,"min":2,"max":6}"#
        );
    }

    #[test]
    fn histogram_json_and_merge() {
        let mut a = Histogram::new(4);
        a.record(1);
        let mut b = Histogram::new(8);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.buckets().len(), 8, "merge grows to the larger shape");
        assert_eq!(a.total(), 2);
        assert!(a.to_json().render().starts_with(r#"{"buckets":[0,1,"#));
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(8);
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1 << 20); // clamped to last bucket
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[7], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn ipc_math() {
        let s = CoreStats {
            retired: 100,
            cycles: 50,
            ..Default::default()
        };
        assert_eq!(s.ipc(), 2.0);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn core_stats_json_lists_every_counter() {
        let s = CoreStats {
            retired: 7,
            cycles: 11,
            store_stall_cycles: 3,
            sync_stall_cycles: 2,
            l1d_misses: 5,
            imprecise_exceptions: 1,
            faulting_stores: 4,
            precise_exceptions: 0,
        };
        let json = s.to_json().render();
        assert_eq!(
            json,
            "{\"retired\":7,\"cycles\":11,\"store_stall_cycles\":3,\
             \"sync_stall_cycles\":2,\"l1d_misses\":5,\
             \"imprecise_exceptions\":1,\"faulting_stores\":4,\
             \"precise_exceptions\":0}"
        );
    }

    #[test]
    fn core_stats_merge_takes_max_cycles() {
        let mut a = CoreStats {
            retired: 10,
            cycles: 100,
            ..Default::default()
        };
        let b = CoreStats {
            retired: 20,
            cycles: 80,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.retired, 30);
        assert_eq!(a.cycles, 100);
    }
}
