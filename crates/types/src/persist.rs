//! Versioned, endian-fixed binary persistence.
//!
//! Every stateful structure in the data plane implements [`Persist`]
//! (or the in-place `save_state`/`restore_state` convention for
//! config-owning aggregates), writing itself into a [`Writer`] and
//! reading itself back from a [`Reader`]. The wire format is fixed
//! little-endian, so snapshots are portable across hosts, and every
//! container is framed:
//!
//! ```text
//! "ISES"            4-byte magic
//! format version    u32 (currently 1)
//! payload           tagged sections, nested freely
//! content hash      u64 FNV-1a over everything before it
//! ```
//!
//! Sections are `tag (4 bytes) + length (u64) + body`; the length lets
//! a future reader skip sections it does not understand, which is the
//! whole migration policy: additive evolution within a version, a
//! version bump for anything else (see DESIGN.md §16). The trailing
//! hash makes corruption — truncation, bit flips, a stale partial
//! write — a hard [`PersistError`] instead of a silently wrong resume.
//!
//! Hidden state is deliberately in scope: RNG stream positions, cache
//! LRU ticks, TLB generation stamps and intrusive-LRU link order, and
//! event-queue FIFO tie-break counters are all part of a component's
//! serialized contract, because the resume-is-byte-identical guarantee
//! (see `ise-sim`) is only as strong as the weakest component's
//! round-trip.

use std::fmt;

/// 4-byte container magic: an ISE snapshot.
pub const MAGIC: [u8; 4] = *b"ISES";

/// Current snapshot format version. Bump on any non-additive change to
/// a component's serialized form.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a restore failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ended before the value it was supposed to hold.
    Truncated,
    /// The container does not start with [`MAGIC`].
    BadMagic,
    /// The container's format version is not one this build reads.
    UnsupportedVersion(u32),
    /// A section tag did not match what the reader expected.
    BadTag {
        /// The tag the reader expected.
        expected: [u8; 4],
        /// The tag found in the buffer.
        found: [u8; 4],
    },
    /// The trailing FNV-1a content hash did not match the payload.
    HashMismatch,
    /// A decoded value is structurally invalid for its type.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::BadMagic => write!(f, "not an ISE snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::BadTag { expected, found } => write!(
                f,
                "section tag mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            PersistError::HashMismatch => write!(f, "snapshot content hash mismatch (corrupt)"),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Restore result.
pub type Result<T> = std::result::Result<T, PersistError>;

/// A little-endian snapshot writer.
///
/// Create one with [`Writer::container`] for a full framed snapshot
/// (magic + version, sealed by [`Writer::finish`] with the content
/// hash), or [`Writer::new`] for a bare fragment (used when hashing a
/// value's content without framing, e.g. dedupe keys).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty, unframed writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// A writer primed with the container header (magic + version).
    pub fn container() -> Self {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(FORMAT_VERSION);
        w
    }

    /// Seals a container: appends the FNV-1a hash of everything written
    /// so far and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let h = fnv1a(&self.buf);
        self.buf.extend_from_slice(&h.to_le_bytes());
        self.buf
    }

    /// The bytes written so far, unframed and unsealed.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a raw byte slice (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (the format is 64-bit everywhere).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern — bit-exact, NaN
    /// payloads included, so restored floating state replays the same
    /// arithmetic.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.raw(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Opens a tagged section and runs `body` inside it; the section
    /// length is backpatched on return, so nesting is free.
    pub fn section(&mut self, tag: [u8; 4], body: impl FnOnce(&mut Writer)) {
        self.buf.extend_from_slice(&tag);
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        let start = self.buf.len();
        body(self);
        let len = (self.buf.len() - start) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
    }
}

/// A little-endian snapshot reader over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over a bare fragment (no container framing).
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Opens a sealed container: checks magic, version, and the
    /// trailing content hash, and returns a reader positioned at the
    /// start of the payload (the hash is excluded from its range).
    pub fn container(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(PersistError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(payload) != stored {
            return Err(PersistError::HashMismatch);
        }
        let mut r = Reader {
            buf: payload,
            pos: 4,
        };
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        Ok(r)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`; errors if it overflows the
    /// host's `usize`).
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::Corrupt("usize overflow"))
    }

    /// Reads a `bool` (rejecting anything but 0/1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt("bool")),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| PersistError::Corrupt("utf-8 string"))
    }

    /// Opens a tagged section, checks the tag, runs `body` over the
    /// section's contents, and errors if `body` did not consume the
    /// section exactly (a length mismatch means reader and writer
    /// disagree about the component's layout).
    pub fn section<T>(
        &mut self,
        tag: [u8; 4],
        body: impl FnOnce(&mut Reader<'a>) -> Result<T>,
    ) -> Result<T> {
        let found: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| PersistError::Truncated)?;
        if found != tag {
            return Err(PersistError::BadTag {
                expected: tag,
                found,
            });
        }
        let len = self.usize()?;
        if self.remaining() < len {
            return Err(PersistError::Truncated);
        }
        let end = self.pos + len;
        let v = body(self)?;
        if self.pos != end {
            return Err(PersistError::Corrupt("section length mismatch"));
        }
        Ok(v)
    }

    /// Skips the next section regardless of its tag, returning the tag
    /// (additive evolution: old readers step over sections they don't
    /// know).
    pub fn skip_section(&mut self) -> Result<[u8; 4]> {
        let tag: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| PersistError::Truncated)?;
        let len = self.usize()?;
        self.take(len)?;
        Ok(tag)
    }
}

/// A value with a deterministic binary round-trip.
///
/// The contract is byte-identity of behavior, not just of fields:
/// `restore(save(x))` must be observationally indistinguishable from
/// `x` for every operation the simulator performs on it, including
/// "hidden" state such as RNG positions, LRU orderings, and tie-break
/// counters.
pub trait Persist: Sized {
    /// Serializes `self` into `w`.
    fn save(&self, w: &mut Writer);
    /// Deserializes a value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] on truncation, tag/layout mismatch,
    /// or structurally invalid values.
    fn restore(r: &mut Reader) -> Result<Self>;
}

impl Persist for u8 {
    fn save(&self, w: &mut Writer) {
        w.u8(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.u8()
    }
}

impl Persist for u16 {
    fn save(&self, w: &mut Writer) {
        w.u16(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.u16()
    }
}

impl Persist for u32 {
    fn save(&self, w: &mut Writer) {
        w.u32(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.u32()
    }
}

impl Persist for u64 {
    fn save(&self, w: &mut Writer) {
        w.u64(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.u64()
    }
}

impl Persist for usize {
    fn save(&self, w: &mut Writer) {
        w.usize(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.usize()
    }
}

impl Persist for bool {
    fn save(&self, w: &mut Writer) {
        w.bool(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.bool()
    }
}

impl Persist for f64 {
    fn save(&self, w: &mut Writer) {
        w.f64(*self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.f64()
    }
}

impl Persist for String {
    fn save(&self, w: &mut Writer) {
        w.str(self);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        r.str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(PersistError::Corrupt("Option discriminant")),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        let n = r.usize()?;
        // Cap the pre-allocation: a corrupt length must not OOM before
        // the per-element reads hit Truncated.
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Box<[T]> {
    fn save(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self.iter() {
            v.save(w);
        }
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        Ok(Vec::<T>::restore(r)?.into_boxed_slice())
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn restore(r: &mut Reader) -> Result<Self> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

/// Saves a value into a sealed standalone container (magic + version +
/// one anonymous payload + hash). Convenience for component-level
/// snapshot files and content hashing.
pub fn save_container<T: Persist>(value: &T) -> Vec<u8> {
    let mut w = Writer::container();
    value.save(&mut w);
    w.finish()
}

/// Restores a value from a sealed standalone container.
///
/// # Errors
///
/// Returns a [`PersistError`] on framing, hash, or payload errors, and
/// [`PersistError::Corrupt`] if trailing payload bytes remain.
pub fn restore_container<T: Persist>(bytes: &[u8]) -> Result<T> {
    let mut r = Reader::container(bytes)?;
    let v = T::restore(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.bool(true);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn container_round_trip_and_hash_guard() {
        let v: Vec<u64> = vec![1, 2, 3, u64::MAX];
        let bytes = save_container(&v);
        assert_eq!(restore_container::<Vec<u64>>(&bytes).unwrap(), v);

        // Any single-bit flip anywhere must be detected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(
                restore_container::<Vec<u64>>(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
        // Truncation too.
        assert!(restore_container::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
        assert_eq!(
            restore_container::<Vec<u64>>(b"nope"),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let bytes = save_container(&42u64);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(restore_container::<u64>(&bad), Err(PersistError::BadMagic));

        // A future version is rejected, not misread — rebuild the hash
        // so the version check (not the hash check) fires.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        let n = future.len();
        let h = fnv1a(&future[..n - 8]);
        future[n - 8..].copy_from_slice(&h.to_le_bytes());
        assert_eq!(
            restore_container::<u64>(&future),
            Err(PersistError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn sections_nest_and_check_tags() {
        let mut w = Writer::container();
        w.section(*b"OUTR", |w| {
            w.u64(1);
            w.section(*b"INNR", |w| w.str("x"));
        });
        w.section(*b"NEXT", |w| w.u32(5));
        let bytes = w.finish();

        let mut r = Reader::container(&bytes).unwrap();
        r.section(*b"OUTR", |r| {
            assert_eq!(r.u64()?, 1);
            r.section(*b"INNR", |r| {
                assert_eq!(r.str()?, "x");
                Ok(())
            })
        })
        .unwrap();
        r.section(*b"NEXT", |r| {
            assert_eq!(r.u32()?, 5);
            Ok(())
        })
        .unwrap();
        assert_eq!(r.remaining(), 0);

        // Wrong expected tag errors, and unknown sections can be
        // skipped wholesale.
        let mut r = Reader::container(&bytes).unwrap();
        let err = r
            .section(*b"WHAT", |_| Ok(()))
            .expect_err("tag mismatch must error");
        assert!(matches!(err, PersistError::BadTag { .. }));
        let mut r = Reader::container(&bytes).unwrap();
        assert_eq!(r.skip_section().unwrap(), *b"OUTR");
        assert_eq!(r.skip_section().unwrap(), *b"NEXT");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn section_length_mismatch_is_detected() {
        let mut w = Writer::container();
        w.section(*b"BODY", |w| w.u64(9));
        let bytes = w.finish();
        let mut r = Reader::container(&bytes).unwrap();
        // Under-consuming the section body is a layout error.
        let err = r
            .section(*b"BODY", |r| {
                let _ = r.u32()?;
                Ok(())
            })
            .expect_err("must detect under-read");
        assert_eq!(err, PersistError::Corrupt("section length mismatch"));
    }

    #[test]
    fn compound_impls_round_trip() {
        let v: Option<Vec<(u64, String)>> = Some(vec![(1, "a".into()), (u64::MAX, "".into())]);
        let bytes = save_container(&v);
        assert_eq!(
            restore_container::<Option<Vec<(u64, String)>>>(&bytes).unwrap(),
            v
        );
        let n: Option<u32> = None;
        assert_eq!(
            restore_container::<Option<u32>>(&save_container(&n)).unwrap(),
            None
        );
    }
}
