//! A minimal, dependency-free JSON document model.
//!
//! The experiment binaries and the chaos-campaign runner emit
//! machine-readable appendices. Determinism is part of the contract —
//! same seed ⇒ byte-identical report — so the writer makes every choice
//! explicitly: object keys keep insertion order, floats print with
//! Rust's shortest-roundtrip formatting, and no whitespace is emitted.
//!
//! ```
//! use ise_types::json::Json;
//! let doc = Json::obj([
//!     ("name", Json::str("campaign")),
//!     ("runs", Json::arr(vec![Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(doc.render(), r#"{"name":"campaign","runs":[1,2]}"#);
//! ```

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the simulator's native counter type).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A double; non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved verbatim.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array value.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds an object, preserving the given key order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value; the seam `print_json` and the
/// chaos-campaign report use instead of a serialization framework.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::from(self.clone())
            }
        }
    )*};
}

to_json_via_from!(bool, u16, u32, u64, usize, i64, f64, String);

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &[T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    /// Structural encoding (not a re-parse of the rendered text), so
    /// the distinction between `UInt`/`Int`/`Float` and non-finite
    /// float payloads survive the round trip exactly.
    impl Persist for Json {
        fn save(&self, w: &mut Writer) {
            match self {
                Json::Null => w.u8(0),
                Json::Bool(b) => {
                    w.u8(1);
                    w.bool(*b);
                }
                Json::UInt(v) => {
                    w.u8(2);
                    w.u64(*v);
                }
                Json::Int(v) => {
                    w.u8(3);
                    w.i64(*v);
                }
                Json::Float(v) => {
                    w.u8(4);
                    w.f64(*v);
                }
                Json::Str(s) => {
                    w.u8(5);
                    w.str(s);
                }
                Json::Arr(items) => {
                    w.u8(6);
                    items.save(w);
                }
                Json::Obj(fields) => {
                    w.u8(7);
                    w.usize(fields.len());
                    for (k, v) in fields {
                        w.str(k);
                        v.save(w);
                    }
                }
            }
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => Json::Null,
                1 => Json::Bool(r.bool()?),
                2 => Json::UInt(r.u64()?),
                3 => Json::Int(r.i64()?),
                4 => Json::Float(r.f64()?),
                5 => Json::Str(r.str()?),
                6 => Json::Arr(Persist::restore(r)?),
                7 => {
                    let n = r.usize()?;
                    let mut fields = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let k = r.str()?;
                        fields.push((k, Json::restore(r)?));
                    }
                    Json::Obj(fields)
                }
                _ => return Err(PersistError::Corrupt("Json discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn nested_structures_preserve_order() {
        let doc = Json::obj([
            ("z", Json::from(1u64)),
            ("a", Json::arr([Json::Null, Json::from(false)])),
        ]);
        assert_eq!(doc.render(), r#"{"z":1,"a":[null,false]}"#);
    }

    #[test]
    fn to_json_blanket_impls() {
        assert_eq!(vec![1u64, 2].to_json().render(), "[1,2]");
        assert_eq!(("k".to_string(), 3u64).to_json().render(), "[\"k\",3]");
        assert_eq!(None::<u64>.to_json().render(), "null");
    }

    #[test]
    fn rendering_is_deterministic() {
        let doc = Json::obj([("pi", Json::Float(0.1 + 0.2))]);
        assert_eq!(doc.render(), doc.render());
    }
}
