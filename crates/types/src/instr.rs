//! The trace instruction set executed by the timing cores.
//!
//! Workload generators (crate `ise-workloads`) emit streams of
//! [`Instruction`]s; the out-of-order core model (crate `ise-cpu`) consumes
//! them. The set is deliberately small — loads, stores, atomics, fences and
//! non-memory "other" work — because that is the granularity at which the
//! paper's phenomena (store-buffer occupancy, retirement blocking,
//! post-retirement exceptions) manifest.

use crate::addr::Addr;
use std::fmt;

/// An architectural register name in the trace ISA.
///
/// Registers exist so that litmus tests and traces can express address,
/// data, and control dependencies — the "Dependencies" family of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Fence flavours, mirroring the strength hierarchy RVWMO offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// Full fence: orders every earlier memory operation before every later
    /// one (`fence rw,rw`). This is the `F` of the paper's formalism
    /// (Table 4) and drains the store buffer.
    Full,
    /// Store-store fence (`fence w,w`): orders earlier stores before later
    /// stores.
    StoreStore,
    /// Load-load fence (`fence r,r`): orders earlier loads before later
    /// loads.
    LoadLoad,
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceKind::Full => write!(f, "fence rw,rw"),
            FenceKind::StoreStore => write!(f, "fence w,w"),
            FenceKind::LoadLoad => write!(f, "fence r,r"),
        }
    }
}

/// The operation performed by one trace instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Load 8 bytes from `addr` into `dst`.
    Load {
        /// Target address.
        addr: Addr,
        /// Destination register receiving the loaded value.
        dst: Reg,
    },
    /// Store the 8-byte `value` to `addr`.
    Store {
        /// Target address.
        addr: Addr,
        /// Immediate value written (traces are value-resolved).
        value: u64,
    },
    /// An atomic read-modify-write (AMO-add flavour): loads the old value
    /// into `dst` and stores `old + add`. Atomics never retire before
    /// completion and act as an acquire+release point, matching the
    /// "Preserved program order" family of Table 6.
    Atomic {
        /// Target address.
        addr: Addr,
        /// Addend applied to the old value.
        add: u64,
        /// Destination register receiving the old value.
        dst: Reg,
    },
    /// A memory fence.
    Fence(FenceKind),
    /// Non-memory work occupying one issue slot with the given execution
    /// latency in cycles (ALU/branch/FP — the "Others" column of Table 3).
    Other {
        /// Execution latency in cycles (≥ 1).
        latency: u32,
    },
}

impl InstrKind {
    /// Whether this instruction reads or writes memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            InstrKind::Load { .. } | InstrKind::Store { .. } | InstrKind::Atomic { .. }
        )
    }

    /// The memory address accessed, if any.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            InstrKind::Load { addr, .. }
            | InstrKind::Store { addr, .. }
            | InstrKind::Atomic { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

/// One instruction of a trace: an operation plus its classification.
///
/// ```
/// use ise_types::instr::{Instruction, InstrKind};
/// use ise_types::addr::Addr;
///
/// let st = Instruction::store(Addr::new(0x100), 7);
/// assert!(st.kind.is_memory());
/// assert_eq!(st.kind.addr(), Some(Addr::new(0x100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub kind: InstrKind,
}

impl Instruction {
    /// Convenience constructor for a load.
    pub fn load(addr: Addr, dst: Reg) -> Self {
        Instruction {
            kind: InstrKind::Load { addr, dst },
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: Addr, value: u64) -> Self {
        Instruction {
            kind: InstrKind::Store { addr, value },
        }
    }

    /// Convenience constructor for an atomic add.
    pub fn atomic(addr: Addr, add: u64, dst: Reg) -> Self {
        Instruction {
            kind: InstrKind::Atomic { addr, add, dst },
        }
    }

    /// Convenience constructor for a fence.
    pub fn fence(kind: FenceKind) -> Self {
        Instruction {
            kind: InstrKind::Fence(kind),
        }
    }

    /// Convenience constructor for single-cycle non-memory work.
    pub fn other() -> Self {
        Instruction {
            kind: InstrKind::Other { latency: 1 },
        }
    }

    /// Convenience constructor for non-memory work with a latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn other_with_latency(latency: u32) -> Self {
        assert!(latency > 0, "instruction latency must be positive");
        Instruction {
            kind: InstrKind::Other { latency },
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InstrKind::Load { addr, dst } => write!(f, "ld {dst}, [{addr}]"),
            InstrKind::Store { addr, value } => write!(f, "st [{addr}], {value:#x}"),
            InstrKind::Atomic { addr, add, dst } => {
                write!(f, "amoadd {dst}, [{addr}], {add:#x}")
            }
            InstrKind::Fence(k) => write!(f, "{k}"),
            InstrKind::Other { latency } => write!(f, "alu(lat={latency})"),
        }
    }
}

/// Aggregate instruction-mix fractions, as reported in Table 3.
///
/// Fractions are in percent and need not sum exactly to 100 (the paper's
/// rows round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Percentage of stores.
    pub store_pct: f64,
    /// Percentage of loads.
    pub load_pct: f64,
    /// Percentage of synchronization instructions (atomics + fences).
    pub sync_pct: f64,
    /// Percentage of everything else.
    pub other_pct: f64,
}

impl InstructionMix {
    /// Computes the mix of a finished trace.
    pub fn measure<'a>(instrs: impl IntoIterator<Item = &'a Instruction>) -> Self {
        let (mut s, mut l, mut y, mut o, mut n) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for i in instrs {
            n += 1;
            match i.kind {
                InstrKind::Store { .. } => s += 1,
                InstrKind::Load { .. } => l += 1,
                InstrKind::Atomic { .. } | InstrKind::Fence(_) => y += 1,
                InstrKind::Other { .. } => o += 1,
            }
        }
        let pct = |c: u64| {
            if n == 0 {
                0.0
            } else {
                100.0 * c as f64 / n as f64
            }
        };
        InstructionMix {
            store_pct: pct(s),
            load_pct: pct(l),
            sync_pct: pct(y),
            other_pct: pct(o),
        }
    }
}

impl fmt::Display for InstructionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store {:.0}% load {:.0}% sync {:.1}% other {:.0}%",
            self.store_pct, self.load_pct, self.sync_pct, self.other_pct
        )
    }
}

mod persist_impls {
    use super::*;
    use crate::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for Reg {
        fn save(&self, w: &mut Writer) {
            w.u8(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(Reg(r.u8()?))
        }
    }

    impl Persist for FenceKind {
        fn save(&self, w: &mut Writer) {
            w.u8(match self {
                FenceKind::Full => 0,
                FenceKind::StoreStore => 1,
                FenceKind::LoadLoad => 2,
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            match r.u8()? {
                0 => Ok(FenceKind::Full),
                1 => Ok(FenceKind::StoreStore),
                2 => Ok(FenceKind::LoadLoad),
                _ => Err(PersistError::Corrupt("FenceKind discriminant")),
            }
        }
    }

    impl Persist for InstrKind {
        fn save(&self, w: &mut Writer) {
            match self {
                InstrKind::Load { addr, dst } => {
                    w.u8(0);
                    addr.save(w);
                    dst.save(w);
                }
                InstrKind::Store { addr, value } => {
                    w.u8(1);
                    addr.save(w);
                    w.u64(*value);
                }
                InstrKind::Atomic { addr, add, dst } => {
                    w.u8(2);
                    addr.save(w);
                    w.u64(*add);
                    dst.save(w);
                }
                InstrKind::Fence(k) => {
                    w.u8(3);
                    k.save(w);
                }
                InstrKind::Other { latency } => {
                    w.u8(4);
                    w.u32(*latency);
                }
            }
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => InstrKind::Load {
                    addr: Persist::restore(r)?,
                    dst: Persist::restore(r)?,
                },
                1 => InstrKind::Store {
                    addr: Persist::restore(r)?,
                    value: r.u64()?,
                },
                2 => InstrKind::Atomic {
                    addr: Persist::restore(r)?,
                    add: r.u64()?,
                    dst: Persist::restore(r)?,
                },
                3 => InstrKind::Fence(Persist::restore(r)?),
                4 => InstrKind::Other { latency: r.u32()? },
                _ => return Err(PersistError::Corrupt("InstrKind discriminant")),
            })
        }
    }

    impl Persist for Instruction {
        fn save(&self, w: &mut Writer) {
            self.kind.save(w);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(Instruction {
                kind: Persist::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify() {
        assert!(Instruction::load(Addr::new(0), Reg(1)).kind.is_memory());
        assert!(Instruction::store(Addr::new(0), 1).kind.is_memory());
        assert!(Instruction::atomic(Addr::new(0), 1, Reg(0))
            .kind
            .is_memory());
        assert!(!Instruction::fence(FenceKind::Full).kind.is_memory());
        assert!(!Instruction::other().kind.is_memory());
    }

    #[test]
    fn addr_extraction() {
        let a = Addr::new(0x80);
        assert_eq!(Instruction::load(a, Reg(0)).kind.addr(), Some(a));
        assert_eq!(Instruction::fence(FenceKind::Full).kind.addr(), None);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_rejected() {
        let _ = Instruction::other_with_latency(0);
    }

    #[test]
    fn mix_measures_percentages() {
        let trace = vec![
            Instruction::store(Addr::new(0), 1),
            Instruction::load(Addr::new(8), Reg(0)),
            Instruction::load(Addr::new(16), Reg(1)),
            Instruction::other(),
        ];
        let mix = InstructionMix::measure(&trace);
        assert_eq!(mix.store_pct, 25.0);
        assert_eq!(mix.load_pct, 50.0);
        assert_eq!(mix.sync_pct, 0.0);
        assert_eq!(mix.other_pct, 25.0);
    }

    #[test]
    fn mix_of_empty_trace_is_zero() {
        let mix = InstructionMix::measure(&[]);
        assert_eq!(mix.store_pct, 0.0);
        assert_eq!(mix.other_pct, 0.0);
    }

    #[test]
    fn display_is_assembly_like() {
        let s = Instruction::store(Addr::new(0x40), 0xff).to_string();
        assert_eq!(s, "st [0x40], 0xff");
        let l = Instruction::load(Addr::new(0x40), Reg(2)).to_string();
        assert_eq!(l, "ld r2, [0x40]");
    }
}
