//! ASO-style post-retirement speculation baseline (paper §3).
//!
//! The paper's first alternative to imprecise store exceptions keeps
//! exceptions precise by running an SC machine with Atomic Sequence
//! Ordering [Wenisch et al., ISCA '07]: when retirement would stall on an
//! ordering requirement (a store miss at the head of the ROB), the core
//! takes a checkpoint and retires the store *speculatively* into a
//! scalable store buffer; the checkpoint is merged away once the miss
//! resolves without an exception, or used to roll back to a precise state
//! when one is detected.
//!
//! What matters for the paper's argument is not ASO's mechanics but its
//! **cost**: the speculation state required to match WC performance —
//! checkpoints (map table + preserved physical registers), scalable
//! store-buffer entries, and the speculatively-read/-written bit overlays
//! on L1D and L2. [`account`] prices those structures; [`sweep`] finds the
//! minimum budget whose IPC reaches the WC core's, reproducing the
//! right-hand columns of Table 3.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod account;
pub mod sweep;

pub use account::SpeculationAccounting;
pub use sweep::{sweep_checkpoints, sweep_checkpoints_clocked, SweepPoint, SweepResult};
