//! The checkpoint-budget sweep behind Table 3's right-hand columns.
//!
//! For a given workload (one trace per core) we measure:
//!
//! 1. the SC machine (store buffer disabled — §2.3's forced-precise
//!    baseline);
//! 2. the WC machine (Table 2's configuration);
//! 3. an ASO machine for each checkpoint budget `C`: a WC-ordered pipeline
//!    whose store drains are capped at `C` concurrently outstanding
//!    (each outstanding store miss holds one checkpoint) backed by a
//!    scalable store buffer whose *peak occupancy* we record.
//!
//! The reported requirement is the cheapest budget whose IPC reaches the
//! WC machine's (within [`WC_TOLERANCE`]), priced by
//! [`crate::SpeculationAccounting`].

use crate::account::SpeculationAccounting;
use ise_cpu::{Core, StepOutcome, VecTrace};
use ise_engine::{cycle_skip_override, Cycle};
use ise_mem::MemoryHierarchy;
use ise_types::config::SystemConfig;
use ise_types::model::ConsistencyModel;
use ise_types::{CoreId, Instruction};

/// Fraction of WC IPC that counts as "achieving the full WC performance
/// benefits".
pub const WC_TOLERANCE: f64 = 0.995;

/// Scalable store-buffer capacity used while sweeping (generous: the
/// paper's point is that the *required* state is what we measure, so the
/// sweep must not clip it).
const SCALABLE_SB_CAP: usize = 8192;

/// Checkpoint budgets examined by the sweep.
pub const DEFAULT_BUDGETS: &[usize] = &[1, 2, 4, 8, 12, 16, 24, 32, 48, 64];

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Checkpoint budget.
    pub checkpoints: usize,
    /// Aggregate IPC achieved.
    pub ipc: f64,
    /// Peak scalable store-buffer occupancy observed (entries).
    pub peak_sb: usize,
    /// Priced speculation state in bytes for this budget.
    pub state_bytes: usize,
}

/// The result of one workload's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// SC (forced-precise) aggregate IPC.
    pub sc_ipc: f64,
    /// WC aggregate IPC.
    pub wc_ipc: f64,
    /// All sampled budgets.
    pub points: Vec<SweepPoint>,
    /// The cheapest point reaching [`WC_TOLERANCE`] × WC IPC, if any.
    pub required: Option<SweepPoint>,
}

impl SweepResult {
    /// WC speedup over SC (Table 3's "WC speedup" column).
    pub fn wc_speedup(&self) -> f64 {
        if self.sc_ipc == 0.0 {
            0.0
        } else {
            self.wc_ipc / self.sc_ipc
        }
    }

    /// Required speculation state in KB (Table 3's right-hand columns), if
    /// some budget achieved WC performance.
    pub fn required_kb(&self) -> Option<f64> {
        self.required.map(|p| p.state_bytes as f64 / 1024.0)
    }
}

fn make_cores(
    cfg: &SystemConfig,
    traces: &[std::sync::Arc<[Instruction]>],
    model: ConsistencyModel,
) -> Vec<Core<VecTrace>> {
    traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let core_cfg = cfg.core.with_model(model);
            Core::new(CoreId(i), core_cfg, VecTrace::shared(t.clone()))
        })
        .collect()
}

fn aggregate_ipc(cores: &[Core<VecTrace>]) -> f64 {
    let retired: u64 = cores.iter().map(|c| c.stats().retired).sum();
    let cycles: u64 = cores.iter().map(|c| c.stats().cycles).max().unwrap_or(0);
    if cycles == 0 {
        0.0
    } else {
        retired as f64 / cycles as f64
    }
}

/// Runs `cores` to completion on a fresh hierarchy, tracking the peak
/// store-buffer occupancy across all cores.
///
/// Store-buffer occupancy only changes inside [`Core::step`], and the
/// cycle-skip clock executes steps at exactly the cycles the reference
/// clock would, so skipping dead windows cannot miss a peak.
fn run_tracking_peak_clocked(
    cfg: &SystemConfig,
    cores: &mut [Core<VecTrace>],
    max_cycles: Cycle,
    skip: bool,
) -> usize {
    let mut hier = MemoryHierarchy::new(*cfg);
    let (peak, _, done) = run_span_clocked(cores, &mut hier, 0, 0, None, max_cycles, skip);
    debug_assert!(done);
    peak
}

/// The resumable inner loop behind [`run_tracking_peak_clocked`]: runs
/// `cores` against `hier` starting at cycle `start` with peak watermark
/// `peak`, pausing at the first visited cycle ≥ `stop` (when given).
/// Returns `(peak, now, done)`; re-entering with the returned `now` and
/// `peak` reproduces the uninterrupted trajectory exactly — the pause
/// happens between loop iterations, before any core steps at `now`.
fn run_span_clocked(
    cores: &mut [Core<VecTrace>],
    hier: &mut MemoryHierarchy,
    start: Cycle,
    peak: usize,
    stop: Option<Cycle>,
    max_cycles: Cycle,
    skip: bool,
) -> (usize, Cycle, bool) {
    let mut peak = peak;
    let mut now = start;
    loop {
        if stop.is_some_and(|t| now >= t) {
            return (peak, now, false);
        }
        let mut all_done = true;
        for core in cores.iter_mut() {
            match core.step(now, hier) {
                StepOutcome::Finished => {}
                StepOutcome::Progress | StepOutcome::Waiting => all_done = false,
                StepOutcome::Imprecise(_) | StepOutcome::Precise { .. } => {
                    panic!("the Table 3 study runs exception-free workloads")
                }
            }
            peak = peak.max(core.sb_len());
        }
        if all_done {
            return (peak, now, true);
        }
        let next = if skip {
            cores
                .iter()
                .map(|c| c.next_event(now))
                .min()
                .unwrap_or(Cycle::MAX)
                .clamp(now + 1, max_cycles)
        } else {
            now + 1
        };
        let skipped = next - now - 1;
        if skipped > 0 {
            for core in cores.iter_mut() {
                core.charge_idle(now, skipped);
            }
        }
        now = next;
        assert!(now < max_cycles, "exceeded cycle budget");
    }
}

/// Serializes one sweep machine mid-run: the clock, the peak-occupancy
/// watermark, the memory hierarchy, and every core (including trace
/// positions and store-buffer contents).
fn checkpoint_machine(
    now: Cycle,
    peak: usize,
    hier: &ise_mem::MemoryHierarchy,
    cores: &[Core<VecTrace>],
) -> Vec<u8> {
    let mut w = ise_types::persist::Writer::container();
    w.section(*b"ASOC", |w| {
        w.u64(now);
        w.usize(peak);
        hier.save_state(w);
        w.usize(cores.len());
        for c in cores {
            c.save_state(w);
        }
    });
    w.finish()
}

/// Restores a [`checkpoint_machine`] image into a freshly built machine
/// of the same shape, returning the clock and watermark to resume from.
fn resume_machine(
    bytes: &[u8],
    hier: &mut ise_mem::MemoryHierarchy,
    cores: &mut [Core<VecTrace>],
) -> Result<(Cycle, usize), ise_types::persist::PersistError> {
    use ise_types::persist::PersistError;
    let mut r = ise_types::persist::Reader::container(bytes)?;
    r.section(*b"ASOC", |r| {
        let now = r.u64()?;
        let peak = r.usize()?;
        hier.restore_state(r)?;
        if r.usize()? != cores.len() {
            return Err(PersistError::Corrupt("sweep machine core count mismatch"));
        }
        for c in cores.iter_mut() {
            c.restore_state(r)?;
        }
        Ok((now, peak))
    })
}

/// Sweeps checkpoint budgets for one workload. `traces` supplies one
/// instruction stream per core; the system configuration's core count must
/// be at least `traces.len()`.
///
/// # Panics
///
/// Panics if `traces` is empty, a workload raises an exception (the
/// Table 3 study is exception-free), or `max_cycles` elapses.
pub fn sweep_checkpoints(
    cfg: &SystemConfig,
    traces: &[std::sync::Arc<[Instruction]>],
    budgets: &[usize],
    max_cycles: Cycle,
) -> SweepResult {
    sweep_checkpoints_clocked(
        cfg,
        traces,
        budgets,
        max_cycles,
        cycle_skip_override().unwrap_or(true),
    )
}

/// [`sweep_checkpoints`] with an explicit clock choice, ignoring the
/// `ISE_CYCLE_SKIP` environment override — the entry point the
/// differential suite uses to compare the reference and cycle-skip
/// clocks in-process.
///
/// # Panics
///
/// As [`sweep_checkpoints`].
pub fn sweep_checkpoints_clocked(
    cfg: &SystemConfig,
    traces: &[std::sync::Arc<[Instruction]>],
    budgets: &[usize],
    max_cycles: Cycle,
    skip: bool,
) -> SweepResult {
    assert!(!traces.is_empty(), "need at least one trace");
    let mut run_cfg = *cfg;
    run_cfg.cores = run_cfg.cores.max(traces.len());

    // SC baseline.
    let mut sc_cores = make_cores(&run_cfg, traces, ConsistencyModel::Sc);
    run_tracking_peak_clocked(&run_cfg, &mut sc_cores, max_cycles, skip);
    let sc_ipc = aggregate_ipc(&sc_cores);

    // WC target.
    let mut wc_cores = make_cores(&run_cfg, traces, ConsistencyModel::Wc);
    run_tracking_peak_clocked(&run_cfg, &mut wc_cores, max_cycles, skip);
    let wc_ipc = aggregate_ipc(&wc_cores);

    let acc = SpeculationAccounting::for_system(&run_cfg);
    let mut points = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let mut aso_cfg = run_cfg;
        aso_cfg.core.sb_entries = SCALABLE_SB_CAP;
        let mut cores = make_cores(&aso_cfg, traces, ConsistencyModel::Wc);
        for c in cores.iter_mut() {
            c.set_sb_max_in_flight(budget);
        }
        let peak_sb = run_tracking_peak_clocked(&aso_cfg, &mut cores, max_cycles, skip);
        let ipc = aggregate_ipc(&cores);
        points.push(SweepPoint {
            checkpoints: budget,
            ipc,
            peak_sb,
            state_bytes: acc.state_bytes(budget, peak_sb),
        });
    }

    let required = points
        .iter()
        .filter(|p| p.ipc >= WC_TOLERANCE * wc_ipc)
        .min_by_key(|p| p.state_bytes)
        .copied();

    SweepResult {
        sc_ipc,
        wc_ipc,
        points,
        required,
    }
}

/// [`sweep_checkpoints_clocked`] in the warm-start regime: every sweep
/// machine (SC, WC, and one per budget) boots once, runs `warmup`
/// cycles, and is frozen into a [`checkpoint_machine`] image; the
/// measured leg then resumes the image in a freshly built machine and
/// runs to completion. The result is byte-identical to the cold sweep —
/// the pause/resume happens between loop iterations — and the images
/// are exactly what a sharded sweep would fan out to remote cells.
///
/// # Panics
///
/// As [`sweep_checkpoints`], plus if a checkpoint image fails to replay
/// into its own machine shape.
pub fn sweep_checkpoints_warm(
    cfg: &SystemConfig,
    traces: &[std::sync::Arc<[Instruction]>],
    budgets: &[usize],
    max_cycles: Cycle,
    warmup: Cycle,
    skip: bool,
) -> SweepResult {
    assert!(!traces.is_empty(), "need at least one trace");
    let mut run_cfg = *cfg;
    run_cfg.cores = run_cfg.cores.max(traces.len());

    // Runs one machine with a warm-boot + resume seam at `warmup`.
    let warm_run = |machine_cfg: &SystemConfig,
                    model: ConsistencyModel,
                    budget: Option<usize>|
     -> (Vec<Core<VecTrace>>, usize) {
        let mk = || {
            let mut cores = make_cores(machine_cfg, traces, model);
            if let Some(b) = budget {
                for c in cores.iter_mut() {
                    c.set_sb_max_in_flight(b);
                }
            }
            (cores, MemoryHierarchy::new(*machine_cfg))
        };
        let (mut cores, mut hier) = mk();
        let (peak, now, done) =
            run_span_clocked(&mut cores, &mut hier, 0, 0, Some(warmup), max_cycles, skip);
        if done {
            // The machine finished inside the warmup window: nothing to
            // fan out, the boot run is the measurement.
            return (cores, peak);
        }
        let image = checkpoint_machine(now, peak, &hier, &cores);
        let (mut cores, mut hier) = mk();
        let (now, peak) =
            resume_machine(&image, &mut hier, &mut cores).expect("machine checkpoint replays");
        let (peak, _, done) =
            run_span_clocked(&mut cores, &mut hier, now, peak, None, max_cycles, skip);
        assert!(done, "resumed machine must run to completion");
        (cores, peak)
    };

    let (sc_cores, _) = warm_run(&run_cfg, ConsistencyModel::Sc, None);
    let sc_ipc = aggregate_ipc(&sc_cores);
    let (wc_cores, _) = warm_run(&run_cfg, ConsistencyModel::Wc, None);
    let wc_ipc = aggregate_ipc(&wc_cores);

    let acc = SpeculationAccounting::for_system(&run_cfg);
    let mut aso_cfg = run_cfg;
    aso_cfg.core.sb_entries = SCALABLE_SB_CAP;
    let mut points = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let (cores, peak_sb) = warm_run(&aso_cfg, ConsistencyModel::Wc, Some(budget));
        let ipc = aggregate_ipc(&cores);
        points.push(SweepPoint {
            checkpoints: budget,
            ipc,
            peak_sb,
            state_bytes: acc.state_bytes(budget, peak_sb),
        });
    }

    let required = points
        .iter()
        .filter(|p| p.ipc >= WC_TOLERANCE * wc_ipc)
        .min_by_key(|p| p.state_bytes)
        .copied();

    SweepResult {
        sc_ipc,
        wc_ipc,
        points,
        required,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::addr::Addr;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 1;
        cfg
    }

    /// A store-miss-heavy trace: the case WC/ASO accelerate.
    fn store_trace(seed: u64, n: u64) -> std::sync::Arc<[Instruction]> {
        let mut v = Vec::new();
        for i in 0..n {
            v.push(Instruction::store(Addr::new((seed + i) * 4096), i));
            v.push(Instruction::other());
            v.push(Instruction::other());
        }
        v.into()
    }

    #[test]
    fn wc_beats_sc_and_big_budget_reaches_wc() {
        let cfg = small_cfg();
        let traces = vec![store_trace(0, 60), store_trace(1 << 20, 60)];
        let r = sweep_checkpoints(&cfg, &traces, &[1, 8, 32], 10_000_000);
        assert!(r.wc_speedup() > 1.2, "speedup {:.2}", r.wc_speedup());
        let best = r.points.last().unwrap();
        assert!(
            best.ipc >= WC_TOLERANCE * r.wc_ipc,
            "32 checkpoints should reach WC ({:.3} vs {:.3})",
            best.ipc,
            r.wc_ipc
        );
        assert!(r.required.is_some());
    }

    #[test]
    fn ipc_is_monotone_in_checkpoints_roughly() {
        let cfg = small_cfg();
        let traces = vec![store_trace(0, 60)];
        let r = sweep_checkpoints(&cfg, &traces, &[1, 4, 16], 10_000_000);
        assert!(
            r.points[0].ipc <= r.points[2].ipc * 1.02,
            "more checkpoints should not hurt: {:?}",
            r.points
        );
    }

    #[test]
    fn state_includes_overlay_floor() {
        let cfg = small_cfg();
        let traces = vec![store_trace(0, 20)];
        let r = sweep_checkpoints(&cfg, &traces, &[2], 10_000_000);
        let acc = SpeculationAccounting::for_system(&cfg);
        assert!(r.points[0].state_bytes >= acc.cache_overlay_bytes);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_rejected() {
        sweep_checkpoints(&small_cfg(), &[], &[1], 1000);
    }

    #[test]
    fn warm_started_sweep_matches_cold_exactly() {
        let cfg = small_cfg();
        let traces = vec![store_trace(0, 60), store_trace(1 << 20, 60)];
        for skip in [false, true] {
            let cold = sweep_checkpoints_clocked(&cfg, &traces, &[1, 8, 32], 10_000_000, skip);
            // A warmup cut in the middle of the run and one past the end
            // (every machine finishes inside the window, degrading to a
            // cold run) must both reproduce the cold sweep exactly.
            for warmup in [150, 9_999_999] {
                let warm =
                    sweep_checkpoints_warm(&cfg, &traces, &[1, 8, 32], 10_000_000, warmup, skip);
                assert_eq!(cold, warm, "warmup {warmup}, skip {skip}");
            }
        }
    }

    #[test]
    fn cycle_skip_sweep_matches_reference() {
        let cfg = small_cfg();
        let traces = vec![store_trace(0, 60), store_trace(1 << 20, 60)];
        let reference = sweep_checkpoints_clocked(&cfg, &traces, &[1, 8, 32], 10_000_000, false);
        let skipped = sweep_checkpoints_clocked(&cfg, &traces, &[1, 8, 32], 10_000_000, true);
        assert_eq!(reference, skipped);
    }
}
