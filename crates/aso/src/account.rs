//! Silicon accounting for ASO speculation state (paper §3.3).
//!
//! Per the paper: each scalable store-buffer entry is 16 B; each
//! checkpoint needs a map table of 32 logical-to-physical mappings at
//! 8–10 bits each (we charge 10) plus up to 32 preserved physical
//! registers (256 B); and the caches carry per-word valid + Speculatively
//! Written bits in L1D and Speculatively Read bits in both L1D and L2.

use ise_types::addr::LINE_SIZE;
use ise_types::config::SystemConfig;

/// Bytes per scalable store-buffer entry.
pub const SB_ENTRY_BYTES: usize = 16;
/// Bytes of preserved physical registers per checkpoint (32 regs × 8 B).
pub const CHECKPOINT_REGS_BYTES: usize = 256;
/// Bytes per checkpoint map table (32 mappings × 10 bits, rounded up).
pub const MAP_TABLE_BYTES: usize = 40;
/// Total bytes per checkpoint.
pub const CHECKPOINT_BYTES: usize = CHECKPOINT_REGS_BYTES + MAP_TABLE_BYTES;

/// Prices the speculation state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationAccounting {
    /// Fixed cache-overlay bits (SR/SW/valid), in bytes.
    pub cache_overlay_bytes: usize,
}

impl SpeculationAccounting {
    /// Derives the fixed overlay cost from the cache geometry:
    /// * L1D: 8 per-word valid bits + 8 per-word SW bits per line, plus
    ///   1 SR bit per line;
    /// * L2: 1 SR bit per line.
    pub fn for_system(cfg: &SystemConfig) -> Self {
        let l1_lines = cfg.l1d.capacity_bytes / LINE_SIZE as usize;
        let l2_lines = cfg.l2.capacity_bytes / LINE_SIZE as usize;
        let l1_word_bits = l1_lines * 16; // 8 valid + 8 SW per 64B line
        let sr_bits = l1_lines + l2_lines;
        SpeculationAccounting {
            cache_overlay_bytes: (l1_word_bits + sr_bits).div_ceil(8),
        }
    }

    /// Total per-core speculation state, in bytes, for a budget of
    /// `checkpoints` and a scalable store buffer sized for `sb_entries`.
    pub fn state_bytes(&self, checkpoints: usize, sb_entries: usize) -> usize {
        self.cache_overlay_bytes + checkpoints * CHECKPOINT_BYTES + sb_entries * SB_ENTRY_BYTES
    }

    /// Same, in KB (rounded to the nearest KB, as Table 3 reports).
    pub fn state_kb(&self, checkpoints: usize, sb_entries: usize) -> f64 {
        self.state_bytes(checkpoints, sb_entries) as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_cost_matches_paper() {
        // "each checkpoint can require up to 32 extra physical registers
        // (256B)" plus a 32x10-bit map table.
        assert_eq!(CHECKPOINT_BYTES, 296);
        assert_eq!(SB_ENTRY_BYTES, 16);
    }

    #[test]
    fn overlay_for_table2_geometry() {
        let acc = SpeculationAccounting::for_system(&SystemConfig::isca23());
        // L1D: 1024 lines -> 16384 word bits + 1024 SR; L2: 16384 SR.
        assert_eq!(acc.cache_overlay_bytes, (1024 * 16 + 1024 + 16384) / 8);
    }

    #[test]
    fn state_lands_in_table3_range_for_plausible_budgets() {
        let acc = SpeculationAccounting::for_system(&SystemConfig::isca23());
        // Table 3 reports 14-25 KB per core.
        let low = acc.state_kb(16, 128);
        let high = acc.state_kb(48, 384);
        assert!(low > 8.0 && low < 16.0, "low budget {low:.1} KB");
        assert!(high > 20.0 && high < 30.0, "high budget {high:.1} KB");
    }

    #[test]
    fn state_is_monotone_in_both_budgets() {
        let acc = SpeculationAccounting::for_system(&SystemConfig::isca23());
        assert!(acc.state_bytes(2, 10) < acc.state_bytes(3, 10));
        assert!(acc.state_bytes(2, 10) < acc.state_bytes(2, 11));
    }
}
