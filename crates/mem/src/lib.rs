//! Cache/memory hierarchy substrate for the Imprecise Store Exceptions
//! reproduction.
//!
//! This crate models the Table 2 memory system: per-core L1 data caches
//! with MSHRs ([`cache`], [`mshr`]), two-level TLBs ([`tlb`]), distributed
//! L2 tiles kept coherent by a directory-based MESI protocol ([`mesi`]),
//! and a DRAM backend ([`backend`]) behind which a *fault oracle* —
//! implemented by EInject in `ise-core` — can deny transactions at the
//! LLC↔memory boundary exactly as §6.2 of the paper describes.
//!
//! The hierarchy is **timing-directed**: it tracks tags, coherence states
//! and occupancy to price every access in cycles, while architectural data
//! lives in the separate functional [`flat::FlatMemory`]. See DESIGN.md §3
//! for why this split is faithful to the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use ise_mem::hierarchy::{Access, MemoryHierarchy};
//! use ise_types::{addr::Addr, config::SystemConfig, CoreId};
//!
//! let mut h = MemoryHierarchy::new(SystemConfig::isca23());
//! let miss = h.access(Access::load(CoreId(0), Addr::new(0x4000)), 0);
//! let hit = h.access(Access::load(CoreId(0), Addr::new(0x4000)), miss.latency);
//! assert!(miss.latency > hit.latency);
//! assert!(miss.fault.is_none());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod backend;
pub mod cache;
pub mod flat;
pub mod hierarchy;
pub mod mesi;
pub mod mshr;
pub mod tlb;

pub use backend::{Dram, FaultOracle, MemBackend, MemRequest, MemResponse, NoFaults};
pub use flat::FlatMemory;
pub use hierarchy::{Access, AccessResult, MemoryHierarchy, ServicedBy};
