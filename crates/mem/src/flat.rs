//! Functional flat memory.
//!
//! The hierarchy is timing-directed; architectural data lives here.
//! Values are 8-byte words keyed by their aligned address, with byte-mask
//! writes for sub-word stores (the granularity of FSB entries).

use ise_types::addr::{Addr, ByteMask};
use std::collections::HashMap;

/// A sparse, zero-initialized 64-bit-word memory.
///
/// ```
/// use ise_mem::FlatMemory;
/// use ise_types::addr::{Addr, ByteMask};
///
/// let mut m = FlatMemory::new();
/// m.write(Addr::new(0x100), 0xdead_beef, ByteMask::FULL);
/// assert_eq!(m.read(Addr::new(0x100)), 0xdead_beef);
/// assert_eq!(m.read(Addr::new(0x108)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    words: HashMap<u64, u64>,
}

impl FlatMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn word_key(addr: Addr) -> u64 {
        addr.raw() >> 3
    }

    /// Reads the 8-byte word containing `addr` (aligned down).
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&Self::word_key(addr)).copied().unwrap_or(0)
    }

    /// Writes `value` under `mask` to the word containing `addr`.
    pub fn write(&mut self, addr: Addr, value: u64, mask: ByteMask) {
        let key = Self::word_key(addr);
        let old = self.words.get(&key).copied().unwrap_or(0);
        let new = mask.merge(old, value);
        if new == 0 {
            self.words.remove(&key);
        } else {
            self.words.insert(key, new);
        }
    }

    /// Atomically adds `add` to the word at `addr`, returning the old
    /// value (the trace ISA's AMO-add).
    pub fn fetch_add(&mut self, addr: Addr, add: u64) -> u64 {
        let old = self.read(addr);
        self.write(addr, old.wrapping_add(add), ByteMask::FULL);
        old
    }

    /// Number of non-zero words resident (for tests).
    pub fn resident_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = FlatMemory::new();
        assert_eq!(m.read(Addr::new(0)), 0);
        assert_eq!(m.read(Addr::new(0xffff_fff8)), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0x40), 42, ByteMask::FULL);
        assert_eq!(m.read(Addr::new(0x40)), 42);
        // Same word, unaligned offset reads the same value.
        assert_eq!(m.read(Addr::new(0x44)), 42);
    }

    #[test]
    fn masked_write_merges() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0), 0x1111_2222_3333_4444, ByteMask::FULL);
        m.write(Addr::new(0), 0xffff_0000_0000_0000, ByteMask::span(6, 2));
        assert_eq!(m.read(Addr::new(0)), 0xffff_2222_3333_4444);
    }

    #[test]
    fn fetch_add_returns_old() {
        let mut m = FlatMemory::new();
        assert_eq!(m.fetch_add(Addr::new(8), 5), 0);
        assert_eq!(m.fetch_add(Addr::new(8), 3), 5);
        assert_eq!(m.read(Addr::new(8)), 8);
    }

    #[test]
    fn zero_writes_do_not_leak_storage() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0), 7, ByteMask::FULL);
        m.write(Addr::new(0), 0, ByteMask::FULL);
        assert_eq!(m.resident_words(), 0);
    }
}
