//! Functional flat memory.
//!
//! The hierarchy is timing-directed; architectural data lives here.
//! Values are 8-byte words with byte-mask writes for sub-word stores
//! (the granularity of FSB entries), stored in a paged dense backing:
//! touched 4 KiB pages are dense `u64` arrays reached through one page
//! lookup, so the word-granularity hash of the previous layout (one map
//! entry per non-zero word) collapses into one map entry per page and
//! steady-state reads/writes touch a flat array.

use ise_types::addr::{AccessSize, Addr, ByteMask};
use ise_types::trap::Trap;
use std::collections::HashMap;

/// Words per backing page: 4 KiB pages of 8-byte words, matching the
/// architectural page size.
const PAGE_WORDS: u64 = 512;

/// One resident backing page: a dense word array plus the number of
/// non-zero words, so a page that becomes all-zero again is released
/// (keeping `resident_words` an exact non-zero count, as before).
#[derive(Debug, Clone)]
struct Page {
    words: Box<[u64]>,
    nonzero: u32,
}

impl Page {
    fn new() -> Self {
        Page {
            words: vec![0; PAGE_WORDS as usize].into_boxed_slice(),
            nonzero: 0,
        }
    }
}

/// A sparse, zero-initialized 64-bit-word memory.
///
/// ```
/// use ise_mem::FlatMemory;
/// use ise_types::addr::{Addr, ByteMask};
///
/// let mut m = FlatMemory::new();
/// m.write(Addr::new(0x100), 0xdead_beef, ByteMask::FULL);
/// assert_eq!(m.read(Addr::new(0x100)), 0xdead_beef);
/// assert_eq!(m.read(Addr::new(0x108)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    pages: HashMap<u64, Page>,
}

impl FlatMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn word_key(addr: Addr) -> u64 {
        addr.raw() >> 3
    }

    /// Reads the 8-byte word containing `addr` (aligned down).
    pub fn read(&self, addr: Addr) -> u64 {
        let key = Self::word_key(addr);
        match self.pages.get(&(key / PAGE_WORDS)) {
            Some(page) => page.words[(key % PAGE_WORDS) as usize],
            None => 0,
        }
    }

    /// Writes `value` under `mask` to the word containing `addr`.
    pub fn write(&mut self, addr: Addr, value: u64, mask: ByteMask) {
        let key = Self::word_key(addr);
        let page_key = key / PAGE_WORDS;
        let offset = (key % PAGE_WORDS) as usize;
        match self.pages.get_mut(&page_key) {
            Some(page) => {
                let old = page.words[offset];
                let new = mask.merge(old, value);
                page.words[offset] = new;
                match (old == 0, new == 0) {
                    (true, false) => page.nonzero += 1,
                    (false, true) => {
                        page.nonzero -= 1;
                        if page.nonzero == 0 {
                            self.pages.remove(&page_key);
                        }
                    }
                    _ => {}
                }
            }
            None => {
                let new = mask.merge(0, value);
                if new != 0 {
                    let mut page = Page::new();
                    page.words[offset] = new;
                    page.nonzero = 1;
                    self.pages.insert(page_key, page);
                }
            }
        }
    }

    /// Reads `size` bytes at `addr`, zero-extended into a `u64`.
    ///
    /// This is the guest-facing accessor: the backing store is 8-byte-
    /// word granular, so sub-word reads extract their bytes from the
    /// containing word instead of handing back the whole word. Natural
    /// alignment is required — a misaligned guest load is a trap, not a
    /// split access.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadAccessMisaligned`] when `addr` is not aligned
    /// to `size`.
    pub fn load_sized(&self, addr: Addr, size: AccessSize) -> Result<u64, Trap> {
        if !addr.is_aligned(size) {
            return Err(Trap::misaligned_load(addr, size));
        }
        let word = self.read(addr);
        let shift = (addr.raw() % 8) * 8;
        Ok(match size {
            AccessSize::Byte => (word >> shift) & 0xff,
            AccessSize::Half => (word >> shift) & 0xffff,
            AccessSize::Word => (word >> shift) & 0xffff_ffff,
            AccessSize::Double => word,
        })
    }

    /// Writes the low `size` bytes of `value` at `addr`, merging into
    /// the containing 8-byte word under the access's byte mask — a
    /// sub-word guest store updates exactly its own bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreAMOAddrMisaligned`] when `addr` is not
    /// aligned to `size`.
    pub fn store_sized(&mut self, addr: Addr, size: AccessSize, value: u64) -> Result<(), Trap> {
        if !addr.is_aligned(size) {
            return Err(Trap::misaligned_store(addr, size));
        }
        let shift = (addr.raw() % 8) * 8;
        self.write(addr, value << shift, size.mask_at(addr));
        Ok(())
    }

    /// Atomically adds `add` to the `size`-wide value at `addr`,
    /// returning the old value zero-extended (the frontend's
    /// `amoadd.w`/`amoadd.d`). The addition wraps at the access width.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreAMOAddrMisaligned`] when `addr` is not
    /// aligned to `size` (AMOs use the store-side trap, per the
    /// privileged spec's store/AMO taxonomy).
    pub fn fetch_add_sized(&mut self, addr: Addr, size: AccessSize, add: u64) -> Result<u64, Trap> {
        if !addr.is_aligned(size) {
            return Err(Trap::misaligned_store(addr, size));
        }
        let old = self.load_sized(addr, size)?;
        self.store_sized(addr, size, old.wrapping_add(add))?;
        Ok(old)
    }

    /// Atomically adds `add` to the word at `addr`, returning the old
    /// value (the trace ISA's AMO-add).
    pub fn fetch_add(&mut self, addr: Addr, add: u64) -> u64 {
        let old = self.read(addr);
        self.write(addr, old.wrapping_add(add), ByteMask::FULL);
        old
    }

    /// Number of non-zero words resident (for tests).
    pub fn resident_words(&self) -> usize {
        self.pages.values().map(|p| p.nonzero as usize).sum()
    }

    /// Number of resident backing pages (for tests and occupancy stats).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl ise_types::persist::Persist for FlatMemory {
    /// Pages are written sorted by page key, so the serialization is
    /// canonical regardless of `HashMap` iteration order — two memories
    /// with identical contents always produce identical bytes.
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"FMEM", |w| {
            let mut keys: Vec<u64> = self.pages.keys().copied().collect();
            keys.sort_unstable();
            w.usize(keys.len());
            for key in keys {
                let page = &self.pages[&key];
                w.u64(key);
                page.words.save(w);
            }
        });
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"FMEM", |r| {
            let n = r.usize()?;
            let mut pages = HashMap::with_capacity(n.min(1 << 16));
            let mut last_key = None;
            for _ in 0..n {
                let key = r.u64()?;
                if last_key.is_some_and(|k| key <= k) {
                    return Err(PersistError::Corrupt("page keys out of order"));
                }
                last_key = Some(key);
                let words: Box<[u64]> = Persist::restore(r)?;
                if words.len() != PAGE_WORDS as usize {
                    return Err(PersistError::Corrupt("backing page size"));
                }
                let nonzero = words.iter().filter(|&&w| w != 0).count() as u32;
                if nonzero == 0 {
                    return Err(PersistError::Corrupt("all-zero resident page"));
                }
                pages.insert(key, Page { words, nonzero });
            }
            Ok(FlatMemory { pages })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = FlatMemory::new();
        assert_eq!(m.read(Addr::new(0)), 0);
        assert_eq!(m.read(Addr::new(0xffff_fff8)), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0x40), 42, ByteMask::FULL);
        assert_eq!(m.read(Addr::new(0x40)), 42);
        // Same word, unaligned offset reads the same value.
        assert_eq!(m.read(Addr::new(0x44)), 42);
    }

    #[test]
    fn masked_write_merges() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0), 0x1111_2222_3333_4444, ByteMask::FULL);
        m.write(Addr::new(0), 0xffff_0000_0000_0000, ByteMask::span(6, 2));
        assert_eq!(m.read(Addr::new(0)), 0xffff_2222_3333_4444);
    }

    #[test]
    fn fetch_add_returns_old() {
        let mut m = FlatMemory::new();
        assert_eq!(m.fetch_add(Addr::new(8), 5), 0);
        assert_eq!(m.fetch_add(Addr::new(8), 3), 5);
        assert_eq!(m.read(Addr::new(8)), 8);
    }

    #[test]
    fn zero_writes_do_not_leak_storage() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0), 7, ByteMask::FULL);
        m.write(Addr::new(0), 0, ByteMask::FULL);
        assert_eq!(m.resident_words(), 0);
        assert_eq!(m.resident_pages(), 0);
        // A pure zero write to untouched memory allocates nothing.
        m.write(Addr::new(0x9000), 0, ByteMask::FULL);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn words_within_one_page_share_a_backing_page() {
        let mut m = FlatMemory::new();
        for i in 0..PAGE_WORDS {
            m.write(Addr::new(i * 8), i + 1, ByteMask::FULL);
        }
        assert_eq!(m.resident_words(), PAGE_WORDS as usize);
        assert_eq!(m.resident_pages(), 1);
        m.write(Addr::new(PAGE_WORDS * 8), 1, ByteMask::FULL);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn persist_round_trip_is_canonical_and_exact() {
        use ise_types::persist::{restore_container, save_container};
        let mut m = FlatMemory::new();
        let mut x = 0xfeed_beefu64;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            m.write(Addr::new((x % 0x10_0000) & !7), x >> 8, ByteMask::FULL);
        }
        let bytes = save_container(&m);
        let back: FlatMemory = restore_container(&bytes).unwrap();
        assert_eq!(back.resident_words(), m.resident_words());
        assert_eq!(back.resident_pages(), m.resident_pages());
        for i in 0..0x10_0000 / 8 {
            let a = Addr::new(i * 8);
            assert_eq!(back.read(a), m.read(a), "word diverged at {a:?}");
        }
        // HashMap iteration order must not leak into the bytes.
        assert_eq!(save_container(&back), bytes);
    }

    #[test]
    fn sub_word_store_updates_only_its_own_bytes() {
        // Fails before the sized accessors existed: the only write path
        // took whole 8-byte words, so a guest `sb`/`sh`/`sw` routed
        // through `write(addr, value, FULL)` clobbered the other bytes
        // of the containing word.
        let mut m = FlatMemory::new();
        m.write(Addr::new(0x100), 0x8877_6655_4433_2211, ByteMask::FULL);
        m.store_sized(Addr::new(0x102), AccessSize::Byte, 0xee)
            .unwrap();
        assert_eq!(m.read(Addr::new(0x100)), 0x8877_6655_44ee_2211);
        m.store_sized(Addr::new(0x104), AccessSize::Half, 0xbeef)
            .unwrap();
        assert_eq!(m.read(Addr::new(0x100)), 0x8877_beef_44ee_2211);
        m.store_sized(Addr::new(0x100), AccessSize::Word, 0xdead_cafe)
            .unwrap();
        assert_eq!(m.read(Addr::new(0x100)), 0x8877_beef_dead_cafe);
        // The sized store only takes the low `size` bytes of the value.
        m.store_sized(Addr::new(0x106), AccessSize::Half, 0x1_2345)
            .unwrap();
        assert_eq!(m.read(Addr::new(0x100)), 0x2345_beef_dead_cafe);
    }

    #[test]
    fn sub_word_load_extracts_only_its_own_bytes() {
        // Fails before: reads were whole-word, so a guest `lb` at offset
        // 5 observed all eight bytes.
        let mut m = FlatMemory::new();
        m.write(Addr::new(0x40), 0x8877_6655_4433_2211, ByteMask::FULL);
        let a = Addr::new(0x40);
        assert_eq!(m.load_sized(a.offset(5), AccessSize::Byte).unwrap(), 0x66);
        assert_eq!(m.load_sized(a.offset(2), AccessSize::Half).unwrap(), 0x4433);
        assert_eq!(
            m.load_sized(a.offset(4), AccessSize::Word).unwrap(),
            0x8877_6655
        );
        assert_eq!(
            m.load_sized(a, AccessSize::Double).unwrap(),
            0x8877_6655_4433_2211
        );
    }

    #[test]
    fn misaligned_load_raises_the_load_trap() {
        let m = FlatMemory::new();
        for (addr, size) in [
            (Addr::new(0x41), AccessSize::Half),
            (Addr::new(0x42), AccessSize::Word),
            (Addr::new(0x44), AccessSize::Double),
        ] {
            assert_eq!(
                m.load_sized(addr, size),
                Err(Trap::LoadAccessMisaligned(addr)),
                "{size} at {addr}"
            );
        }
        // Bytes can never be misaligned.
        assert!(m.load_sized(Addr::new(0x47), AccessSize::Byte).is_ok());
    }

    #[test]
    fn misaligned_store_and_amo_raise_the_store_amo_trap() {
        let mut m = FlatMemory::new();
        assert_eq!(
            m.store_sized(Addr::new(0x43), AccessSize::Word, 1),
            Err(Trap::StoreAMOAddrMisaligned(Addr::new(0x43)))
        );
        assert_eq!(
            m.fetch_add_sized(Addr::new(0x46), AccessSize::Double, 1),
            Err(Trap::StoreAMOAddrMisaligned(Addr::new(0x46)))
        );
        // Nothing landed.
        assert_eq!(m.resident_words(), 0);
    }

    #[test]
    fn sized_fetch_add_wraps_at_the_access_width() {
        let mut m = FlatMemory::new();
        m.store_sized(Addr::new(0x20), AccessSize::Word, 0xffff_ffff)
            .unwrap();
        let old = m
            .fetch_add_sized(Addr::new(0x20), AccessSize::Word, 2)
            .unwrap();
        assert_eq!(old, 0xffff_ffff);
        assert_eq!(m.load_sized(Addr::new(0x20), AccessSize::Word).unwrap(), 1);
        // Neighbouring word bytes untouched.
        m.store_sized(Addr::new(0x24), AccessSize::Word, 0x77)
            .unwrap();
        let _ = m
            .fetch_add_sized(Addr::new(0x20), AccessSize::Word, 5)
            .unwrap();
        assert_eq!(
            m.load_sized(Addr::new(0x24), AccessSize::Word).unwrap(),
            0x77
        );
    }

    #[test]
    fn paged_memory_matches_naive_word_map() {
        // Differential: the paged dense store must agree with a naive
        // word-keyed map (the pre-rework layout) on reads, writes, and
        // the resident non-zero word count.
        let mut paged = FlatMemory::new();
        let mut naive: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Cluster addresses across a few pages, with frequent
            // re-touches and occasional zero writes.
            let addr = Addr::new((x % (8 * PAGE_WORDS * 5)) & !7);
            let value = if x.is_multiple_of(5) { 0 } else { x >> 8 };
            let mask = if x.is_multiple_of(3) {
                ByteMask::FULL
            } else {
                ByteMask::span((x % 7) as u8, 1 + (x % 2) as u8)
            };
            paged.write(addr, value, mask);
            let key = addr.raw() >> 3;
            let old = naive.get(&key).copied().unwrap_or(0);
            let new = mask.merge(old, value);
            if new == 0 {
                naive.remove(&key);
            } else {
                naive.insert(key, new);
            }
            assert_eq!(paged.read(addr), new, "word diverged at {addr:?}");
        }
        assert_eq!(paged.resident_words(), naive.len());
        for (&key, &v) in &naive {
            assert_eq!(paged.read(Addr::new(key * 8)), v);
        }
    }
}
