//! The assembled memory hierarchy: per-core L1D + TLB + MSHRs, distributed
//! L2 tiles with a MESI directory, a mesh interconnect, DRAM, and the
//! EInject fault-oracle seam at the LLC↔memory boundary.
//!
//! [`MemoryHierarchy::access`] prices one load/store end to end and
//! reports whether the transaction was denied by the oracle — the event
//! that, for a store, becomes an *imprecise store exception* once the
//! response backtracks to the store buffer (paper §5.1).

use crate::backend::{Dram, FaultOracle, MemBackend, MemRequest, NoFaults};
use crate::cache::{CacheArray, Eviction};
use crate::mesi::{Directory, ReadAction};
use crate::mshr::MshrFile;
use crate::tlb::Tlb;
use ise_engine::Cycle;
use ise_noc::{Mesh, NodeId, TrafficMeter};
use ise_types::addr::{Addr, LINE_SIZE};
use ise_types::config::SystemConfig;
use ise_types::exception::ExceptionKind;
use ise_types::CoreId;
use std::rc::Rc;

/// Size of a coherence control message in bytes.
const CTRL_BYTES: usize = 8;
/// Size of a data message (one cache line plus header) in bytes.
const DATA_BYTES: usize = LINE_SIZE as usize + 8;
/// Traffic-meter accounting window in cycles.
const TRAFFIC_WINDOW: u64 = 1024;

/// One memory access as issued by a core's load/store unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Issuing core.
    pub core: CoreId,
    /// Byte address accessed.
    pub addr: Addr,
    /// Whether the access needs write permission.
    pub is_store: bool,
}

impl Access {
    /// A load by `core` at `addr`.
    pub fn load(core: CoreId, addr: Addr) -> Self {
        Access {
            core,
            addr,
            is_store: false,
        }
    }

    /// A store by `core` at `addr`.
    pub fn store(core: CoreId, addr: Addr) -> Self {
        Access {
            core,
            addr,
            is_store: true,
        }
    }
}

/// Where an access was ultimately serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the requester's L1D.
    L1,
    /// Supplied by the home L2 tile.
    L2,
    /// Forwarded from another core's cache.
    Peer,
    /// Fetched from main memory.
    Memory,
    /// Denied at the LLC↔memory boundary by the fault oracle.
    Denied,
}

/// The priced outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles, from issue to response at the core.
    pub latency: Cycle,
    /// The exception embedded in the response, if the transaction was
    /// denied.
    pub fault: Option<ExceptionKind>,
    /// Which agent supplied the data.
    pub serviced_by: ServicedBy,
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1D hits.
    pub l1_hits: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// Accesses served by an L2 tile.
    pub l2_hits: u64,
    /// Accesses served by a peer cache forward.
    pub peer_forwards: u64,
    /// Accesses that reached memory.
    pub mem_accesses: u64,
    /// Transactions denied by the fault oracle.
    pub denied: u64,
}

impl ise_types::persist::Persist for HierarchyStats {
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.u64(self.l1_hits);
        w.u64(self.l1_misses);
        w.u64(self.l2_hits);
        w.u64(self.peer_forwards);
        w.u64(self.mem_accesses);
        w.u64(self.denied);
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        Ok(HierarchyStats {
            l1_hits: r.u64()?,
            l1_misses: r.u64()?,
            l2_hits: r.u64()?,
            peer_forwards: r.u64()?,
            mem_accesses: r.u64()?,
            denied: r.u64()?,
        })
    }
}

/// The full Table 2 memory system for one simulated machine.
pub struct MemoryHierarchy {
    cfg: SystemConfig,
    mesh: Mesh,
    traffic: TrafficMeter,
    l1d: Vec<CacheArray>,
    tlbs: Vec<Tlb>,
    mshrs: Vec<MshrFile>,
    l2: Vec<CacheArray>,
    dir: Directory,
    dram: Dram,
    oracle: Rc<dyn FaultOracle>,
    stats: HierarchyStats,
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("cores", &self.cfg.cores)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemoryHierarchy {
    /// Builds the hierarchy with no fault injection (the Baseline system).
    pub fn new(cfg: SystemConfig) -> Self {
        Self::with_oracle(cfg, Rc::new(NoFaults))
    }

    /// Builds the hierarchy with a fault oracle watching the LLC↔memory
    /// boundary (EInject, an accelerator model, ...).
    ///
    /// # Panics
    ///
    /// Panics if the mesh has fewer nodes than there are cores.
    pub fn with_oracle(cfg: SystemConfig, oracle: Rc<dyn FaultOracle>) -> Self {
        let mesh = Mesh::new(cfg.noc);
        assert!(
            mesh.nodes() >= cfg.cores,
            "mesh must have at least one tile per core"
        );
        let traffic = TrafficMeter::new(&mesh, TRAFFIC_WINDOW, cfg.noc.link_bytes as u64);
        MemoryHierarchy {
            mesh,
            traffic,
            l1d: (0..cfg.cores).map(|_| CacheArray::new(&cfg.l1d)).collect(),
            tlbs: (0..cfg.cores).map(|_| Tlb::new(cfg.tlb)).collect(),
            mshrs: (0..cfg.cores)
                .map(|_| MshrFile::new(cfg.l1d.mshrs))
                .collect(),
            l2: (0..mesh_nodes(&cfg))
                .map(|_| CacheArray::new(&cfg.l2))
                .collect(),
            dir: Directory::new(),
            dram: Dram::new(cfg.memory),
            oracle,
            cfg,
            stats: HierarchyStats::default(),
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Exports the hierarchy's counters — cache/directory traffic plus
    /// every core's TLB, aggregated — into the shared telemetry
    /// registry.
    pub fn export_telemetry(&self, reg: &mut ise_telemetry::Registry) {
        reg.add("mem.l1_hits", self.stats.l1_hits);
        reg.add("mem.l1_misses", self.stats.l1_misses);
        reg.add("mem.l2_hits", self.stats.l2_hits);
        reg.add("mem.peer_forwards", self.stats.peer_forwards);
        reg.add("mem.accesses", self.stats.mem_accesses);
        reg.add("mem.denied", self.stats.denied);
        for tlb in &self.tlbs {
            tlb.export_telemetry(reg);
        }
    }

    /// Turns TLB refill logging on or off for every core's TLB (see
    /// [`Tlb::set_refill_logging`]). The system's event trace enables
    /// this and drains per-core logs after each step.
    pub fn set_tlb_refill_logging(&mut self, on: bool) {
        for tlb in &mut self.tlbs {
            tlb.set_refill_logging(on);
        }
    }

    /// Takes core `i`'s TLB refills logged since the last drain as
    /// `(page, walked)` pairs. Empty when logging is off.
    pub fn drain_tlb_refills(&mut self, i: usize) -> Vec<(ise_types::addr::PageId, bool)> {
        self.tlbs[i].drain_refill_log()
    }

    /// The home L2 tile of a line (address-interleaved).
    pub fn home_of(&self, line: Addr) -> NodeId {
        NodeId(((line.raw() / LINE_SIZE) % self.mesh.nodes() as u64) as usize)
    }

    /// The mesh tile a core sits on (core *i* on tile *i*).
    pub fn tile_of(&self, core: CoreId) -> NodeId {
        NodeId(core.index())
    }

    fn noc(&mut self, src: NodeId, dst: NodeId, bytes: usize, now: Cycle) -> Cycle {
        let base = self.mesh.latency(src, dst, bytes);
        let surcharge = self.traffic.record(&self.mesh, src, dst, bytes as u64, now);
        base + surcharge
    }

    /// Prices one access issued at `now`.
    ///
    /// The sequence mirrors §5.1's detection flow: TLB, L1D, home L2 tile
    /// via the mesh, directory action (peer forward / invalidations), and
    /// — only on an LLC miss — the memory access guarded by the fault
    /// oracle. A denied transaction pays the full round trip and returns
    /// the embedded error; no state is installed for it.
    pub fn access(&mut self, acc: Access, now: Cycle) -> AccessResult {
        let core = acc.core;
        assert!(
            core.index() < self.cfg.cores,
            "core {} out of range",
            core.index()
        );
        self.oracle.advance_to(now);
        let line = acc.addr.line();
        let mut latency: Cycle = self.tlbs[core.index()].access(acc.addr.page());

        // L1D probe.
        latency += self.cfg.l1d.latency;
        if self.l1d[core.index()].lookup(line) {
            if acc.is_store {
                // Need write permission: consult the directory for an
                // upgrade if others share the line.
                let entry = self.dir.entry(line);
                if entry.sharer_count() > 1 {
                    latency += self.upgrade_cost(line, core, now + latency);
                    self.invalidate_peers(line, core);
                }
                // Sole owner (or just upgraded): silent M transition.
                let _ = self.dir.write(line, core);
                self.l1d[core.index()].mark_dirty(line);
            }
            self.stats.l1_hits += 1;
            return AccessResult {
                latency,
                fault: None,
                serviced_by: ServicedBy::L1,
            };
        }

        // L1 miss path.
        self.stats.l1_misses += 1;
        let home = self.home_of(line);
        let my_tile = self.tile_of(core);

        // Request to the home tile.
        latency += self.noc(my_tile, home, CTRL_BYTES, now + latency);
        latency += self.cfg.l2.latency;

        let (serviced_by, fault) = if acc.is_store {
            self.store_miss(line, core, home, my_tile, now, &mut latency)
        } else {
            self.load_miss(line, core, home, my_tile, now, &mut latency)
        };

        if fault.is_none() {
            // MSHR occupancy for the whole miss.
            let stall = self.mshrs[core.index()].allocate(now, latency);
            latency += stall;
            // Fill the requester's L1.
            let ev = self.l1d[core.index()].insert(line, acc.is_store);
            self.handle_l1_eviction(core, ev);
        } else {
            self.stats.denied += 1;
            // The response backtracks, freeing resources (paper §5.1):
            // nothing is installed, the directory entry for this line is
            // rolled back to not include the requester.
            self.dir.evict(line, core);
        }

        AccessResult {
            latency,
            fault,
            serviced_by: if fault.is_some() {
                ServicedBy::Denied
            } else {
                serviced_by
            },
        }
    }

    fn load_miss(
        &mut self,
        line: Addr,
        core: CoreId,
        home: NodeId,
        my_tile: NodeId,
        now: Cycle,
        latency: &mut Cycle,
    ) -> (ServicedBy, Option<ExceptionKind>) {
        match self.dir.read(line, core) {
            ReadAction::ForwardFrom(owner) => {
                // 3-hop: home -> owner (ctrl), owner -> requester (data).
                let owner_tile = self.tile_of(owner);
                *latency += self.noc(home, owner_tile, CTRL_BYTES, now + *latency);
                *latency += self.cfg.l1d.latency;
                *latency += self.noc(owner_tile, my_tile, DATA_BYTES, now + *latency);
                // Owner's line is now shared; home L2 gets a copy.
                self.l2[home.index()].insert(line, false);
                self.stats.peer_forwards += 1;
                (ServicedBy::Peer, None)
            }
            ReadAction::FromHome | ReadAction::FromMemory if self.l2[home.index()].lookup(line) => {
                *latency += self.noc(home, my_tile, DATA_BYTES, now + *latency);
                self.stats.l2_hits += 1;
                (ServicedBy::L2, None)
            }
            _ => {
                // LLC miss: cross the LLC<->memory boundary.
                if let Some(kind) = self.oracle.check(line, false) {
                    // Denied: error response straight back to requester.
                    *latency += self.noc(home, my_tile, CTRL_BYTES, now + *latency);
                    return (ServicedBy::Memory, Some(kind));
                }
                let req = MemRequest {
                    core,
                    addr: line,
                    is_store: false,
                };
                *latency += self.dram.access(&req, now + *latency);
                self.stats.mem_accesses += 1;
                self.l2[home.index()].insert(line, false);
                *latency += self.noc(home, my_tile, DATA_BYTES, now + *latency);
                (ServicedBy::Memory, None)
            }
        }
    }

    fn store_miss(
        &mut self,
        line: Addr,
        core: CoreId,
        home: NodeId,
        my_tile: NodeId,
        now: Cycle,
        latency: &mut Cycle,
    ) -> (ServicedBy, Option<ExceptionKind>) {
        // Peek at the directory to know the current holders before
        // transitioning (write() mutates).
        let entry = self.dir.entry(line);
        let in_l2 = self.l2[home.index()].contains(line);
        let anywhere_cached = entry.sharer_count() > 0 || in_l2;

        if !anywhere_cached {
            // Fetch-for-ownership from memory, guarded by the oracle.
            if let Some(kind) = self.oracle.check(line, true) {
                *latency += self.noc(home, my_tile, CTRL_BYTES, now + *latency);
                return (ServicedBy::Memory, Some(kind));
            }
            let _ = self.dir.write(line, core);
            let req = MemRequest {
                core,
                addr: line,
                is_store: true,
            };
            *latency += self.dram.access(&req, now + *latency);
            self.stats.mem_accesses += 1;
            self.l2[home.index()].insert(line, false);
            *latency += self.noc(home, my_tile, DATA_BYTES, now + *latency);
            return (ServicedBy::Memory, None);
        }

        let action = self.dir.write(line, core);
        let mut serviced = ServicedBy::L2;

        if let Some(owner) = action.pull_dirty_from {
            // Pull the dirty copy: home -> owner -> requester.
            let owner_tile = self.tile_of(owner);
            *latency += self.noc(home, owner_tile, CTRL_BYTES, now + *latency);
            *latency += self.cfg.l1d.latency;
            *latency += self.noc(owner_tile, my_tile, DATA_BYTES, now + *latency);
            self.l1d[owner.index()].invalidate(line);
            self.stats.peer_forwards += 1;
            serviced = ServicedBy::Peer;
        } else {
            // Invalidation fan-out: pay the farthest sharer's round trip
            // (invalidations go in parallel; acks gate completion).
            let mut worst: Cycle = 0;
            for victim in action.invalidate.iter() {
                let vt = self.tile_of(victim);
                let rt = self.mesh.round_trip(home, vt, CTRL_BYTES, CTRL_BYTES);
                worst = worst.max(rt);
                self.l1d[victim.index()].invalidate(line);
            }
            *latency += worst;
            // Data comes from the home L2 if resident, else the requester
            // already had it (upgrade) — price the L2 data return when the
            // line was not in the requester's L1 (we are on the miss path,
            // so it was not).
            if in_l2 {
                self.l2[home.index()].lookup(line);
                self.stats.l2_hits += 1;
            }
            *latency += self.noc(home, my_tile, DATA_BYTES, now + *latency);
        }
        (serviced, None)
    }

    /// Cost of a store upgrade when the line is already in the
    /// requester's L1 but shared by others.
    fn upgrade_cost(&mut self, line: Addr, core: CoreId, now: Cycle) -> Cycle {
        let home = self.home_of(line);
        let my_tile = self.tile_of(core);
        let mut cost = self.noc(my_tile, home, CTRL_BYTES, now);
        let entry = self.dir.entry(line);
        let mut worst = 0;
        for victim in entry.sharer_set().iter() {
            if victim == core {
                continue;
            }
            let rt = self
                .mesh
                .round_trip(home, self.tile_of(victim), CTRL_BYTES, CTRL_BYTES);
            worst = worst.max(rt);
        }
        cost += worst;
        cost += self.mesh.latency(home, my_tile, CTRL_BYTES); // ack
        cost
    }

    fn invalidate_peers(&mut self, line: Addr, core: CoreId) {
        for victim in self.dir.entry(line).sharer_set().iter() {
            if victim != core {
                self.l1d[victim.index()].invalidate(line);
            }
        }
    }

    fn handle_l1_eviction(&mut self, core: CoreId, ev: Eviction) {
        match ev {
            Eviction::None => {}
            Eviction::Clean(victim) | Eviction::Dirty(victim) => {
                // PutS/PutM to the directory; dirty data folds into the L2
                // home copy (timing impact of the writeback is off the
                // critical path).
                self.dir.evict(victim, core);
                if matches!(ev, Eviction::Dirty(_)) {
                    let home = self.home_of(victim);
                    self.l2[home.index()].insert(victim, true);
                }
            }
        }
    }

    /// Total NoC messages priced so far.
    pub fn noc_messages(&self) -> u64 {
        self.traffic.total_messages()
    }

    /// Invalidations the directory has ordered.
    pub fn invalidations(&self) -> u64 {
        self.dir.invalidations_sent()
    }

    /// Saves every mutable structure in the hierarchy: the mid-window
    /// traffic meter, each core's L1D tag array, TLB, and MSHR file,
    /// each tile's L2 array, the MESI directory, DRAM counters, and the
    /// aggregate stats. The config, mesh geometry, and fault oracle stay
    /// with the owner — [`MemoryHierarchy::restore_state`] is in-place
    /// into a hierarchy built from the same config (oracle state is
    /// persisted by the oracle's owner, see `ise-core`).
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        use ise_types::persist::Persist;
        w.section(*b"HIER", |w| {
            self.traffic.save(w);
            self.l1d.save(w);
            self.tlbs.save(w);
            self.mshrs.save(w);
            self.l2.save(w);
            self.dir.save(w);
            self.dram.save_state(w);
            self.stats.save(w);
        });
    }

    /// Restores state captured by [`MemoryHierarchy::save_state`].
    ///
    /// Fails with `Corrupt` if the per-core/per-tile structure counts do
    /// not match this hierarchy's configuration.
    pub fn restore_state(
        &mut self,
        r: &mut ise_types::persist::Reader,
    ) -> Result<(), ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"HIER", |r| {
            let traffic = TrafficMeter::restore(r)?;
            let l1d: Vec<CacheArray> = Persist::restore(r)?;
            let tlbs: Vec<Tlb> = Persist::restore(r)?;
            let mshrs: Vec<MshrFile> = Persist::restore(r)?;
            let l2: Vec<CacheArray> = Persist::restore(r)?;
            if l1d.len() != self.cfg.cores
                || tlbs.len() != self.cfg.cores
                || mshrs.len() != self.cfg.cores
                || l2.len() != mesh_nodes(&self.cfg)
            {
                return Err(PersistError::Corrupt("hierarchy structure counts"));
            }
            self.traffic = traffic;
            self.l1d = l1d;
            self.tlbs = tlbs;
            self.mshrs = mshrs;
            self.l2 = l2;
            self.dir = Directory::restore(r)?;
            self.dram.restore_state(r)?;
            self.stats = HierarchyStats::restore(r)?;
            Ok(())
        })
    }
}

fn mesh_nodes(cfg: &SystemConfig) -> usize {
    cfg.noc.nodes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryHierarchy {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 4;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 2;
        MemoryHierarchy::new(cfg)
    }

    #[test]
    fn cold_miss_pays_memory_latency() {
        let mut h = small();
        let r = h.access(Access::load(CoreId(0), Addr::new(0x1_0000)), 0);
        assert_eq!(r.serviced_by, ServicedBy::Memory);
        assert!(r.latency >= 80, "got {}", r.latency);
        assert_eq!(h.stats().mem_accesses, 1);
    }

    #[test]
    fn warm_hit_is_l1_fast() {
        let mut h = small();
        let a = Addr::new(0x2_0000);
        let miss = h.access(Access::load(CoreId(0), a), 0);
        let hit = h.access(Access::load(CoreId(0), a), miss.latency);
        assert_eq!(hit.serviced_by, ServicedBy::L1);
        assert!(hit.latency <= h.config().l1d.latency + 1);
        assert!(hit.latency < miss.latency);
    }

    #[test]
    fn peer_forward_cheaper_than_memory() {
        let mut h = small();
        let a = Addr::new(0x3_0000);
        let cold = h.access(Access::load(CoreId(0), a), 0);
        let fwd = h.access(Access::load(CoreId(1), a), 1000);
        assert_eq!(fwd.serviced_by, ServicedBy::Peer);
        assert!(
            fwd.latency < cold.latency,
            "{} vs {}",
            fwd.latency,
            cold.latency
        );
        assert_eq!(h.stats().peer_forwards, 1);
    }

    #[test]
    fn store_to_shared_line_invalidates_readers() {
        let mut h = small();
        let a = Addr::new(0x4_0000);
        h.access(Access::load(CoreId(0), a), 0);
        h.access(Access::load(CoreId(1), a), 1000);
        h.access(Access::load(CoreId(2), a), 2000);
        // Core 3 writes: all three readers must be invalidated.
        let before = h.invalidations();
        let w = h.access(Access::store(CoreId(3), a), 3000);
        assert!(h.invalidations() > before);
        assert!(w.fault.is_none());
        // Reader's next load misses again.
        let reread = h.access(Access::load(CoreId(0), a), 4000);
        assert_ne!(reread.serviced_by, ServicedBy::L1);
    }

    #[test]
    fn store_skew_makes_store_misses_slower() {
        let cfg = {
            let mut c = SystemConfig::isca23();
            c.cores = 4;
            c.noc.mesh_x = 2;
            c.noc.mesh_y = 2;
            c.memory.store_latency_skew = 4;
            c
        };
        let mut h = MemoryHierarchy::new(cfg);
        let ld = h.access(Access::load(CoreId(0), Addr::new(0x10_0000)), 0);
        let st = h.access(Access::store(CoreId(0), Addr::new(0x20_0000)), 0);
        assert!(
            st.latency > ld.latency + 200,
            "store {} vs load {}",
            st.latency,
            ld.latency
        );
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut h = small();
        // Load a line, then blow the L1 set with conflicting lines.
        let a = Addr::new(0);
        h.access(Access::load(CoreId(0), a), 0);
        let l1_lines = 64 * 1024 / 64; // way beyond L1 capacity
        for i in 1..=l1_lines as u64 + 8 {
            h.access(Access::load(CoreId(0), Addr::new(i * 64)), i * 10);
        }
        let again = h.access(Access::load(CoreId(0), a), 10_000_000);
        // Should come from an L2 tile or memory, not L1.
        assert_ne!(again.serviced_by, ServicedBy::L1);
    }

    struct AlwaysDeny;
    impl FaultOracle for AlwaysDeny {
        fn check(&self, _addr: Addr, _is_store: bool) -> Option<ExceptionKind> {
            Some(ExceptionKind::BusError)
        }
    }

    #[test]
    fn denied_transaction_reports_fault_and_installs_nothing() {
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 4;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 2;
        let mut h = MemoryHierarchy::with_oracle(cfg, Rc::new(AlwaysDeny));
        let a = Addr::new(0x5_0000);
        let r = h.access(Access::store(CoreId(0), a), 0);
        assert_eq!(r.fault, Some(ExceptionKind::BusError));
        assert_eq!(r.serviced_by, ServicedBy::Denied);
        // Nothing was installed: the next access misses and faults again.
        let r2 = h.access(Access::load(CoreId(0), a), 1000);
        assert_eq!(r2.fault, Some(ExceptionKind::BusError));
        assert_eq!(h.stats().denied, 2);
    }

    #[test]
    fn cached_lines_do_not_consult_oracle() {
        // Oracle that denies only while armed.
        use std::cell::Cell;
        struct Toggle(Cell<bool>);
        impl FaultOracle for Toggle {
            fn check(&self, _a: Addr, _s: bool) -> Option<ExceptionKind> {
                if self.0.get() {
                    Some(ExceptionKind::BusError)
                } else {
                    None
                }
            }
        }
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 4;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 2;
        let toggle = Rc::new(Toggle(Cell::new(false)));
        let mut h = MemoryHierarchy::with_oracle(cfg, toggle.clone());
        let a = Addr::new(0x6_0000);
        // Warm the line while the oracle allows.
        assert!(h.access(Access::load(CoreId(0), a), 0).fault.is_none());
        // Arm the oracle: the cached line must still hit without faulting
        // (EInject only watches the LLC<->memory boundary, paper §6.2).
        toggle.0.set(true);
        let r = h.access(Access::load(CoreId(0), a), 1000);
        assert_eq!(r.fault, None);
        assert_eq!(r.serviced_by, ServicedBy::L1);
    }

    #[test]
    fn home_mapping_is_interleaved_and_stable() {
        let h = small();
        let homes: Vec<_> = (0..8)
            .map(|i| h.home_of(Addr::new(i * 64)).index())
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut h = small();
        h.access(Access::load(CoreId(9), Addr::new(0)), 0);
    }

    #[test]
    fn save_restore_mid_run_continues_identically() {
        // Warm a hierarchy with a sharing-heavy mix, snapshot, restore
        // into a freshly built hierarchy, and verify every subsequent
        // access prices identically — caches, TLBs, MSHRs, directory,
        // and the mid-window traffic meter all resume exactly.
        let mut h = small();
        let mut state = 0xabcdefu64;
        let mut now = 0u64;
        let step = move |state: &mut u64, now: &mut u64| {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let core = CoreId(((*state >> 17) % 4) as usize);
            let addr = Addr::new((*state >> 33) % 0x8_0000);
            *now += *state % 23;
            let acc = if (*state).is_multiple_of(3) {
                Access::store(core, addr)
            } else {
                Access::load(core, addr)
            };
            (acc, *now)
        };
        for _ in 0..3_000 {
            let (acc, at) = step(&mut state, &mut now);
            h.access(acc, at);
        }
        let mut w = ise_types::persist::Writer::container();
        h.save_state(&mut w);
        let bytes = w.finish();
        let mut back = small();
        let mut r = ise_types::persist::Reader::container(&bytes).unwrap();
        back.restore_state(&mut r).unwrap();
        assert_eq!(back.stats(), h.stats());
        assert_eq!(back.noc_messages(), h.noc_messages());
        let mut state2 = state;
        let mut now2 = now;
        for i in 0..3_000 {
            let (acc, at) = step(&mut state, &mut now);
            let (acc2, at2) = step(&mut state2, &mut now2);
            assert_eq!((acc, at), (acc2, at2));
            assert_eq!(back.access(acc, at), h.access(acc, at), "access {i}");
        }
        assert_eq!(back.stats(), h.stats());
        assert_eq!(back.invalidations(), h.invalidations());
    }

    #[test]
    fn restore_rejects_mismatched_core_count() {
        let h = small();
        let mut w = ise_types::persist::Writer::container();
        h.save_state(&mut w);
        let bytes = w.finish();
        let mut cfg = SystemConfig::isca23();
        cfg.cores = 2;
        cfg.noc.mesh_x = 2;
        cfg.noc.mesh_y = 2;
        let mut other = MemoryHierarchy::new(cfg);
        let mut r = ise_types::persist::Reader::container(&bytes).unwrap();
        assert!(matches!(
            other.restore_state(&mut r),
            Err(ise_types::persist::PersistError::Corrupt(
                "hierarchy structure counts"
            ))
        ));
    }
}
