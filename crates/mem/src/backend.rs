//! Memory backends and the fault-oracle hook.
//!
//! The paper's EInject device "monitors each non-coherent TileLink-UL
//! transaction between the LLC and memory" and can deny it (§6.2). We
//! reproduce that boundary: the hierarchy consults a [`FaultOracle`]
//! exactly when a request crosses from the LLC toward memory, and a denied
//! transaction returns an error response instead of data. EInject itself
//! lives in `ise-core`; this crate only defines the seam.

use ise_engine::Cycle;
use ise_types::addr::Addr;
use ise_types::config::MemoryConfig;
use ise_types::exception::ExceptionKind;
use ise_types::CoreId;

/// One request reaching the LLC↔memory boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Requesting core.
    pub core: CoreId,
    /// Line-aligned address.
    pub addr: Addr,
    /// Whether this is a store (write-allocate fetch for ownership).
    pub is_store: bool,
}

/// The memory's answer: a latency, and — if a fault oracle denied the
/// transaction — the exception embedded in the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Service latency in cycles.
    pub latency: Cycle,
    /// `Some` if the transaction was denied.
    pub fault: Option<ExceptionKind>,
}

/// A main-memory timing model.
pub trait MemBackend {
    /// Services `req` at time `now`, returning its latency.
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle;
}

/// Fixed-latency DRAM with the §3.3 store-latency skew knob.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: MemoryConfig,
    reads: u64,
    writes: u64,
}

impl Dram {
    /// Builds DRAM from its configuration.
    pub fn new(cfg: MemoryConfig) -> Self {
        Dram {
            cfg,
            reads: 0,
            writes: 0,
        }
    }

    /// Read accesses served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write (ownership-fetch) accesses served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Saves the mutable DRAM state (access counters). The timing
    /// configuration stays with the owner — restore is in-place into a
    /// DRAM built from the same config.
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"DRAM", |w| {
            w.u64(self.reads);
            w.u64(self.writes);
        });
    }

    /// Restores counters captured by [`Dram::save_state`].
    pub fn restore_state(
        &mut self,
        r: &mut ise_types::persist::Reader,
    ) -> Result<(), ise_types::persist::PersistError> {
        r.section(*b"DRAM", |r| {
            self.reads = r.u64()?;
            self.writes = r.u64()?;
            Ok(())
        })
    }
}

impl MemBackend for Dram {
    fn access(&mut self, req: &MemRequest, _now: Cycle) -> Cycle {
        if req.is_store {
            self.writes += 1;
            self.cfg.access_latency * self.cfg.store_latency_skew
        } else {
            self.reads += 1;
            self.cfg.access_latency
        }
    }
}

/// Decides whether a transaction crossing the LLC↔memory boundary is
/// denied. Implemented by EInject (`ise-core`) and by accelerator models.
pub trait FaultOracle {
    /// Returns the exception to embed in the response, or `None` to let
    /// the transaction through.
    fn check(&self, addr: Addr, is_store: bool) -> Option<ExceptionKind>;

    /// Informs the oracle of the current cycle before a batch of checks.
    /// Stateless oracles (EInject's bitmap) ignore it; time-dependent
    /// ones (windowed chaos faults) use it to decide whether they are
    /// active. The hierarchy calls this once per access.
    fn advance_to(&self, _now: Cycle) {}
}

/// An oracle that never faults (the Baseline configuration of §6.5).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultOracle for NoFaults {
    fn check(&self, _addr: Addr, _is_store: bool) -> Option<ExceptionKind> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_charges_flat_latency() {
        let mut d = Dram::new(MemoryConfig::isca23());
        let req = MemRequest {
            core: CoreId(0),
            addr: Addr::new(0),
            is_store: false,
        };
        assert_eq!(d.access(&req, 0), 80);
        assert_eq!(d.reads(), 1);
    }

    #[test]
    fn store_skew_multiplies_store_latency_only() {
        let mut d = Dram::new(MemoryConfig::isca23());
        let mut skewed = Dram::new({
            let mut c = MemoryConfig::isca23();
            c.store_latency_skew = 4;
            c
        });
        let ld = MemRequest {
            core: CoreId(0),
            addr: Addr::new(0),
            is_store: false,
        };
        let st = MemRequest {
            is_store: true,
            ..ld
        };
        assert_eq!(skewed.access(&ld, 0), d.access(&ld, 0));
        assert_eq!(skewed.access(&st, 0), 320);
        assert_eq!(skewed.writes(), 1);
    }

    #[test]
    fn no_faults_oracle_always_allows() {
        assert_eq!(NoFaults.check(Addr::new(0xdead), true), None);
        assert_eq!(NoFaults.check(Addr::new(0xdead), false), None);
    }
}
