//! Set-associative cache tag arrays with LRU replacement.
//!
//! Tag state is struct-of-arrays: one flat dense array per field
//! (`tags` / `lru` / packed valid+dirty flags), indexed by
//! `set * ways + way`. A probe walks `ways` adjacent elements of one
//! array instead of chasing a per-set `Vec` allocation, and the array
//! never reallocates after construction.

use ise_types::addr::{Addr, LINE_SIZE};
use ise_types::config::CacheConfig;

const FLAG_VALID: u8 = 1 << 0;
const FLAG_DIRTY: u8 = 1 << 1;

/// A set-associative tag array (no data — the hierarchy is
/// timing-directed; see the crate docs).
///
/// Lines are identified by their line-aligned address.
#[derive(Debug, Clone)]
pub struct CacheArray {
    tags: Box<[u64]>,
    lru: Box<[u64]>,
    flags: Box<[u8]>,
    ways: usize,
    set_count: usize,
    tick: u64,
}

/// The result of inserting a line: what had to leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// An invalid way was used; nothing evicted.
    None,
    /// A clean line was silently dropped.
    Clean(Addr),
    /// A dirty line must be written back.
    Dirty(Addr),
}

impl CacheArray {
    /// Builds an array from a cache configuration and the global 64 B
    /// block size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or zero ways.
    pub fn new(cfg: &CacheConfig) -> Self {
        let set_count = cfg.sets(LINE_SIZE as usize);
        assert!(set_count > 0 && cfg.ways > 0, "degenerate cache geometry");
        let slots = set_count * cfg.ways;
        CacheArray {
            tags: vec![0; slots].into_boxed_slice(),
            lru: vec![0; slots].into_boxed_slice(),
            flags: vec![0; slots].into_boxed_slice(),
            ways: cfg.ways,
            set_count,
            tick: 0,
        }
    }

    fn index_tag(&self, line: Addr) -> (usize, u64) {
        let block = line.raw() / LINE_SIZE;
        (
            (block % self.set_count as u64) as usize,
            block / self.set_count as u64,
        )
    }

    /// Index of the way holding `tag` in `set`, if resident.
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        (base..base + self.ways).find(|&i| self.flags[i] & FLAG_VALID != 0 && self.tags[i] == tag)
    }

    /// Probes for `line` (line-aligned address), refreshing LRU on hit.
    pub fn lookup(&mut self, line: Addr) -> bool {
        debug_assert_eq!(line, line.line(), "lookup requires a line-aligned address");
        let (set, tag) = self.index_tag(line);
        self.tick += 1;
        if let Some(i) = self.find(set, tag) {
            self.lru[i] = self.tick;
            true
        } else {
            false
        }
    }

    /// Probes without touching LRU state (used by coherence forwards).
    pub fn contains(&self, line: Addr) -> bool {
        let (set, tag) = self.index_tag(line);
        self.find(set, tag).is_some()
    }

    /// Marks a resident line dirty (stores). No-op if absent.
    pub fn mark_dirty(&mut self, line: Addr) {
        let (set, tag) = self.index_tag(line);
        if let Some(i) = self.find(set, tag) {
            self.flags[i] |= FLAG_DIRTY;
        }
    }

    /// Installs `line`, evicting the LRU way if the set is full.
    /// Installing an already-resident line just refreshes it.
    pub fn insert(&mut self, line: Addr, dirty: bool) -> Eviction {
        debug_assert_eq!(line, line.line(), "insert requires a line-aligned address");
        let (set, tag) = self.index_tag(line);
        self.tick += 1;
        let tick = self.tick;
        let base = set * self.ways;
        // Already present: refresh.
        if let Some(i) = self.find(set, tag) {
            self.lru[i] = tick;
            if dirty {
                self.flags[i] |= FLAG_DIRTY;
            }
            return Eviction::None;
        }
        // Free way.
        if let Some(i) = (base..base + self.ways).find(|&i| self.flags[i] & FLAG_VALID == 0) {
            self.tags[i] = tag;
            self.lru[i] = tick;
            self.flags[i] = FLAG_VALID | if dirty { FLAG_DIRTY } else { 0 };
            return Eviction::None;
        }
        // LRU victim: first way with the minimal stamp, in way order.
        let mut victim = base;
        for i in base + 1..base + self.ways {
            if self.lru[i] < self.lru[victim] {
                victim = i;
            }
        }
        let victim_block = self.tags[victim] * self.set_count as u64 + set as u64;
        let evicted = Addr::new(victim_block * LINE_SIZE);
        let was_dirty = self.flags[victim] & FLAG_DIRTY != 0;
        self.tags[victim] = tag;
        self.lru[victim] = tick;
        self.flags[victim] = FLAG_VALID | if dirty { FLAG_DIRTY } else { 0 };
        if was_dirty {
            Eviction::Dirty(evicted)
        } else {
            Eviction::Clean(evicted)
        }
    }

    /// Invalidates `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: Addr) -> Option<bool> {
        let (set, tag) = self.index_tag(line);
        if let Some(i) = self.find(set, tag) {
            let dirty = self.flags[i] & FLAG_DIRTY != 0;
            self.flags[i] &= !FLAG_VALID;
            Some(dirty)
        } else {
            None
        }
    }

    /// Number of resident lines (for tests and occupancy stats).
    pub fn occupancy(&self) -> usize {
        self.flags.iter().filter(|&&f| f & FLAG_VALID != 0).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.set_count * self.ways
    }
}

impl ise_types::persist::Persist for CacheArray {
    /// The LRU `tick` counter and per-way stamps are saved verbatim:
    /// victim selection compares raw stamps, so replacement decisions
    /// after a restore are identical to the uninterrupted run.
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"CACH", |w| {
            w.usize(self.ways);
            w.usize(self.set_count);
            w.u64(self.tick);
            self.tags.save(w);
            self.lru.save(w);
            self.flags.save(w);
        });
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"CACH", |r| {
            let ways = r.usize()?;
            let set_count = r.usize()?;
            if ways == 0 || set_count == 0 {
                return Err(PersistError::Corrupt("degenerate cache geometry"));
            }
            let tick = r.u64()?;
            let tags: Box<[u64]> = Persist::restore(r)?;
            let lru: Box<[u64]> = Persist::restore(r)?;
            let flags: Box<[u8]> = Persist::restore(r)?;
            let slots = set_count
                .checked_mul(ways)
                .ok_or(PersistError::Corrupt("cache slot overflow"))?;
            if tags.len() != slots || lru.len() != slots || flags.len() != slots {
                return Err(PersistError::Corrupt("cache array lengths"));
            }
            Ok(CacheArray {
                tags,
                lru,
                flags,
                ways,
                set_count,
                tick,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways of 64B lines = 256B.
        CacheArray::new(&CacheConfig {
            capacity_bytes: 256,
            ways: 2,
            latency: 1,
            mshrs: 4,
        })
    }

    fn line(i: u64) -> Addr {
        Addr::new(i * LINE_SIZE)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(line(0)));
        c.insert(line(0), false);
        assert!(c.lookup(line(0)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line numbers with 2 sets).
        c.insert(line(0), false);
        c.insert(line(2), false);
        // Touch 0 so 2 is LRU.
        assert!(c.lookup(line(0)));
        let ev = c.insert(line(4), false);
        assert_eq!(ev, Eviction::Clean(line(2)));
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(2)));
        assert!(c.contains(line(4)));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(line(0), true);
        c.insert(line(2), false);
        c.lookup(line(2));
        let ev = c.insert(line(4), false);
        assert_eq!(ev, Eviction::Dirty(line(0)));
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut c = tiny();
        c.insert(line(0), false);
        assert_eq!(c.insert(line(0), true), Eviction::None);
        assert_eq!(c.occupancy(), 1);
        // And the dirty bit stuck.
        c.insert(line(2), false);
        c.lookup(line(2));
        assert_eq!(c.insert(line(4), false), Eviction::Dirty(line(0)));
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny();
        c.insert(line(0), false);
        c.mark_dirty(line(0));
        assert_eq!(c.invalidate(line(0)), Some(true));
        assert_eq!(c.invalidate(line(0)), None);
        assert!(!c.contains(line(0)));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.insert(line(0), false);
        c.insert(line(1), false); // odd line -> set 1
        c.insert(line(2), false);
        assert_eq!(c.occupancy(), 3);
        assert!(c.contains(line(0)));
    }

    #[test]
    fn persist_round_trip_replays_identical_evictions() {
        use ise_types::persist::{restore_container, save_container};
        let mut c = tiny();
        c.insert(line(0), true);
        c.insert(line(2), false);
        c.lookup(line(0));
        let bytes = save_container(&c);
        let mut back: CacheArray = restore_container(&bytes).unwrap();
        assert_eq!(save_container(&back), bytes);
        // Same LRU stamps => same victim choices from here on.
        assert_eq!(back.insert(line(4), false), c.insert(line(4), false));
        assert_eq!(back.insert(line(6), true), c.insert(line(6), true));
        assert_eq!(back.occupancy(), c.occupancy());
    }

    #[test]
    fn geometry_matches_table2() {
        let l1 = CacheArray::new(&CacheConfig::l1d_isca23());
        assert_eq!(l1.capacity_lines(), 64 * 1024 / 64);
        let l2 = CacheArray::new(&CacheConfig::l2_isca23());
        assert_eq!(l2.capacity_lines(), 1024 * 1024 / 64);
    }
}
