//! Two-level TLB model (Table 2: L1 48 entries, L2 1024 entries).

use ise_engine::Cycle;
use ise_types::addr::PageId;
use ise_types::config::TlbConfig;

/// Sentinel for "no slot" in the intrusive list links.
const NIL: u32 = u32::MAX;

/// A single fully-associative LRU TLB level.
///
/// Entries live in a slot arena fixed at `capacity`: per-slot dense
/// arrays hold the page, a generation stamp (bumped every time the slot
/// is recycled, so a stale slot handle can never silently alias a new
/// resident), and intrusive prev/next links forming the LRU list — MRU
/// at the head, the eviction victim at the tail. A small open-addressed
/// index maps a page to its slot, replacing the previous
/// `HashMap` + `BTreeMap` tick mirror: a hit is one probe plus a list
/// unlink/relink, an eviction pops the tail, and nothing allocates
/// after construction.
#[derive(Debug, Clone)]
struct TlbLevel {
    capacity: usize,
    /// Page resident in each slot (valid only for linked slots).
    pages: Box<[PageId]>,
    /// Generation stamp per slot, bumped on recycle.
    gens: Box<[u32]>,
    /// Intrusive LRU list links over slots.
    next: Box<[u32]>,
    prev: Box<[u32]>,
    head: u32,
    tail: u32,
    /// Free-slot stack chained through `next`.
    free: u32,
    len: usize,
    /// Open-addressed index: `page.index() + 1` (0 = empty) -> slot.
    idx_keys: Box<[u64]>,
    idx_slots: Box<[u32]>,
    idx_gens: Box<[u32]>,
    idx_mask: usize,
}

impl TlbLevel {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB level capacity must be positive");
        // Index at <= 50% load so linear probes stay short.
        let idx_size = (capacity * 2).next_power_of_two();
        let mut level = TlbLevel {
            capacity,
            pages: vec![PageId::new(0); capacity].into_boxed_slice(),
            gens: vec![0; capacity].into_boxed_slice(),
            next: vec![NIL; capacity].into_boxed_slice(),
            prev: vec![NIL; capacity].into_boxed_slice(),
            head: NIL,
            tail: NIL,
            free: NIL,
            len: 0,
            idx_keys: vec![0; idx_size].into_boxed_slice(),
            idx_slots: vec![0; idx_size].into_boxed_slice(),
            idx_gens: vec![0; idx_size].into_boxed_slice(),
            idx_mask: idx_size - 1,
        };
        level.reset_free_list();
        level
    }

    fn reset_free_list(&mut self) {
        self.free = NIL;
        for slot in (0..self.capacity as u32).rev() {
            self.next[slot as usize] = self.free;
            self.free = slot;
        }
    }

    fn hash(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    /// Index position holding `page`, if resident.
    fn idx_find(&self, page: PageId) -> Option<usize> {
        let tagged = page.index() + 1;
        let mut i = Self::hash(page.index()) & self.idx_mask;
        loop {
            let k = self.idx_keys[i];
            if k == tagged {
                return Some(i);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & self.idx_mask;
        }
    }

    fn idx_insert(&mut self, page: PageId, slot: u32) {
        let tagged = page.index() + 1;
        let mut i = Self::hash(page.index()) & self.idx_mask;
        while self.idx_keys[i] != 0 {
            debug_assert_ne!(self.idx_keys[i], tagged, "page double-indexed");
            i = (i + 1) & self.idx_mask;
        }
        self.idx_keys[i] = tagged;
        self.idx_slots[i] = slot;
        self.idx_gens[i] = self.gens[slot as usize];
    }

    /// Removes the index entry at `pos`, back-shifting displaced
    /// neighbours so linear probe chains stay intact without tombstones.
    fn idx_remove_at(&mut self, mut pos: usize) {
        let mask = self.idx_mask;
        self.idx_keys[pos] = 0;
        let mut cur = (pos + 1) & mask;
        while self.idx_keys[cur] != 0 {
            let ideal = Self::hash(self.idx_keys[cur] - 1) & mask;
            // `cur` may fill the hole iff the hole lies on its probe path.
            let d_hole = pos.wrapping_sub(ideal) & mask;
            let d_cur = cur.wrapping_sub(ideal) & mask;
            if d_hole < d_cur {
                self.idx_keys[pos] = self.idx_keys[cur];
                self.idx_slots[pos] = self.idx_slots[cur];
                self.idx_gens[pos] = self.idx_gens[cur];
                self.idx_keys[cur] = 0;
                pos = cur;
            }
            cur = (cur + 1) & mask;
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    fn link_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn lookup(&mut self, page: PageId) -> bool {
        if let Some(i) = self.idx_find(page) {
            let slot = self.idx_slots[i];
            debug_assert_eq!(
                self.idx_gens[i], self.gens[slot as usize],
                "stale generational slot handle in TLB index"
            );
            self.unlink(slot);
            self.link_front(slot);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, page: PageId) {
        if let Some(i) = self.idx_find(page) {
            // Re-insert of a resident page: refresh to MRU.
            let slot = self.idx_slots[i];
            self.unlink(slot);
            self.link_front(slot);
            return;
        }
        if self.len >= self.capacity {
            // Evict the LRU entry: the list tail.
            let victim = self.tail;
            let vpage = self.pages[victim as usize];
            let vi = self.idx_find(vpage).expect("victim must be indexed");
            debug_assert_eq!(self.idx_slots[vi], victim);
            self.idx_remove_at(vi);
            self.unlink(victim);
            self.gens[victim as usize] = self.gens[victim as usize].wrapping_add(1);
            self.next[victim as usize] = self.free;
            self.free = victim;
            self.len -= 1;
        }
        let slot = self.free;
        debug_assert_ne!(slot, NIL, "free list exhausted below capacity");
        self.free = self.next[slot as usize];
        self.pages[slot as usize] = page;
        self.link_front(slot);
        self.idx_insert(page, slot);
        self.len += 1;
    }

    fn flush(&mut self) {
        self.idx_keys.fill(0);
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        for g in self.gens.iter_mut() {
            *g = g.wrapping_add(1);
        }
        self.reset_free_list();
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }

    /// Saves the level's logical state: capacity plus the resident pages
    /// in MRU-to-LRU order. The LRU link order is the audited contract —
    /// it fully determines future hits and eviction victims. Slot
    /// numbers, generation stamps, free-list order, and the
    /// open-addressed index layout are rebuild artifacts: no slot handle
    /// outlives a snapshot (the index is reconstructed on restore), so
    /// they are deliberately *not* captured.
    fn save_state(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"TLBL", |w| {
            w.usize(self.capacity);
            w.usize(self.len);
            let mut cur = self.head;
            while cur != NIL {
                w.u64(self.pages[cur as usize].index());
                cur = self.next[cur as usize];
            }
        });
    }

    fn restore_state(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::PersistError;
        r.section(*b"TLBL", |r| {
            let capacity = r.usize()?;
            if capacity == 0 {
                return Err(PersistError::Corrupt("zero-capacity TLB level"));
            }
            let n = r.usize()?;
            if n > capacity {
                return Err(PersistError::Corrupt("TLB occupancy beyond capacity"));
            }
            let mut pages = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                pages.push(PageId::new(r.u64()?));
            }
            let mut level = TlbLevel::new(capacity);
            // Insert LRU-first so each insert lands at the list head and
            // the final MRU-to-LRU order matches the saved order.
            for &page in pages.iter().rev() {
                if level.idx_find(page).is_some() {
                    return Err(PersistError::Corrupt("duplicate TLB resident page"));
                }
                level.insert(page);
            }
            Ok(level)
        })
    }

    /// Resident pages in MRU-to-LRU order (test/debug; allocates).
    #[cfg(test)]
    fn resident(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.pages[cur as usize]);
            cur = self.next[cur as usize];
        }
        out
    }
}

/// A per-core two-level data TLB.
///
/// [`Tlb::access`] returns the extra translation latency an access pays:
/// zero on an L1 hit, the L2 latency on an L1 miss that hits L2, and the
/// full page-walk latency on a double miss (with both levels refilled).
#[derive(Debug, Clone)]
pub struct Tlb {
    l1: TlbLevel,
    l2: TlbLevel,
    cfg: TlbConfig,
    l1_misses: u64,
    walks: u64,
    refill_log: Option<Vec<(PageId, bool)>>,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            l1: TlbLevel::new(cfg.l1_entries),
            l2: TlbLevel::new(cfg.l2_entries),
            cfg,
            l1_misses: 0,
            walks: 0,
            refill_log: None,
        }
    }

    /// Turns the refill log on or off. While on, every L1 refill and
    /// page walk is appended to a log the owner drains with
    /// [`Tlb::drain_refill_log`] — the hook the system's event trace
    /// uses. Off (the default) costs one branch per miss.
    pub fn set_refill_logging(&mut self, on: bool) {
        self.refill_log = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the refills logged since the last drain as
    /// `(page, walked)` pairs: `walked` distinguishes a full page walk
    /// from an L1 refill served by the L2 TLB. Empty when logging is
    /// off.
    pub fn drain_refill_log(&mut self) -> Vec<(PageId, bool)> {
        match &mut self.refill_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Translates an access to `page`, returning extra latency in cycles.
    pub fn access(&mut self, page: PageId) -> Cycle {
        if self.l1.lookup(page) {
            return 0;
        }
        self.l1_misses += 1;
        if self.l2.lookup(page) {
            self.l1.insert(page);
            if let Some(log) = &mut self.refill_log {
                log.push((page, false));
            }
            return self.cfg.l2_latency;
        }
        self.walks += 1;
        self.l2.insert(page);
        self.l1.insert(page);
        if let Some(log) = &mut self.refill_log {
            log.push((page, true));
        }
        self.cfg.walk_latency
    }

    /// Invalidates all entries (TLB shootdown / context switch).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// L1 TLB misses observed.
    pub fn l1_misses(&self) -> u64 {
        self.l1_misses
    }

    /// Page walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Exports this TLB's counters into the shared telemetry registry.
    /// Counters *add*, so calling this for every core's TLB under the
    /// same keys yields the system-wide aggregate.
    pub fn export_telemetry(&self, reg: &mut ise_telemetry::Registry) {
        reg.add("tlb.l1_misses", self.l1_misses);
        reg.add("tlb.walks", self.walks);
    }
}

impl ise_types::persist::Persist for Tlb {
    /// Both levels' LRU orders, the miss/walk counters, and any
    /// undrained refill-log entries are captured, so a restored TLB hits,
    /// misses, evicts, and traces exactly like the original.
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"TLB0", |w| {
            w.usize(self.cfg.l1_entries);
            w.usize(self.cfg.l2_entries);
            w.u64(self.cfg.l2_latency);
            w.u64(self.cfg.walk_latency);
            self.l1.save_state(w);
            self.l2.save_state(w);
            w.u64(self.l1_misses);
            w.u64(self.walks);
            self.refill_log.save(w);
        });
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"TLB0", |r| {
            let cfg = TlbConfig {
                l1_entries: r.usize()?,
                l2_entries: r.usize()?,
                l2_latency: r.u64()?,
                walk_latency: r.u64()?,
            };
            let l1 = TlbLevel::restore_state(r)?;
            let l2 = TlbLevel::restore_state(r)?;
            if l1.capacity != cfg.l1_entries || l2.capacity != cfg.l2_entries {
                return Err(PersistError::Corrupt("TLB level/config capacity skew"));
            }
            Ok(Tlb {
                l1,
                l2,
                cfg,
                l1_misses: r.u64()?,
                walks: r.u64()?,
                refill_log: Persist::restore(r)?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::isca23())
    }

    #[test]
    fn first_access_walks_then_hits() {
        let mut t = tlb();
        let p = PageId::new(7);
        assert_eq!(t.access(p), TlbConfig::isca23().walk_latency);
        assert_eq!(t.access(p), 0);
        assert_eq!(t.walks(), 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut t = tlb();
        // Fill L1 beyond capacity.
        for i in 0..49 {
            t.access(PageId::new(i));
        }
        // Page 0 was LRU-evicted from the 48-entry L1 but still sits in L2.
        assert_eq!(t.access(PageId::new(0)), TlbConfig::isca23().l2_latency);
    }

    #[test]
    fn flush_forces_rewalk() {
        let mut t = tlb();
        let p = PageId::new(3);
        t.access(p);
        t.flush();
        assert_eq!(t.access(p), TlbConfig::isca23().walk_latency);
        assert_eq!(t.walks(), 2);
    }

    #[test]
    fn l2_capacity_much_larger_than_l1() {
        let mut t = tlb();
        for i in 0..1024 {
            t.access(PageId::new(i));
        }
        // A page well within L2 reach but outside L1 hits L2.
        let lat = t.access(PageId::new(500));
        assert_eq!(lat, TlbConfig::isca23().l2_latency);
    }

    #[test]
    fn refill_log_distinguishes_walks_from_l2_hits() {
        let mut t = tlb();
        t.set_refill_logging(true);
        let p = PageId::new(9);
        t.access(p);
        assert_eq!(t.drain_refill_log(), vec![(p, true)]);
        // Evict `p` from the 48-entry L1 (it stays resident in L2).
        for i in 100..148 {
            t.access(PageId::new(i));
        }
        t.drain_refill_log();
        t.access(p);
        assert_eq!(t.drain_refill_log(), vec![(p, false)]);
        t.set_refill_logging(false);
        t.access(PageId::new(999));
        assert!(t.drain_refill_log().is_empty());
    }

    /// A naive full-scan LRU, kept as the behavioural reference for the
    /// intrusive-list arena level.
    struct NaiveLru {
        capacity: usize,
        entries: std::collections::HashMap<PageId, u64>,
        tick: u64,
    }

    impl NaiveLru {
        fn lookup(&mut self, page: PageId) -> bool {
            self.tick += 1;
            if let Some(lru) = self.entries.get_mut(&page) {
                *lru = self.tick;
                true
            } else {
                false
            }
        }

        fn insert(&mut self, page: PageId) {
            self.tick += 1;
            if self.entries.len() >= self.capacity && !self.entries.contains_key(&page) {
                if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &lru)| lru) {
                    self.entries.remove(&victim);
                }
            }
            let tick = self.tick;
            self.entries.insert(page, tick);
        }
    }

    #[test]
    fn arena_level_matches_naive_lru_scan() {
        let mut fast = TlbLevel::new(8);
        let mut naive = NaiveLru {
            capacity: 8,
            entries: std::collections::HashMap::new(),
            tick: 0,
        };
        // A deterministic pseudo-random mix of hits, misses, and
        // re-touches over a working set larger than the capacity.
        let mut x = 0x2545_F491u64;
        for step in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = PageId::new(x % 24);
            let hit_fast = fast.lookup(page);
            let hit_naive = naive.lookup(page);
            assert_eq!(hit_fast, hit_naive, "hit/miss diverged on {page:?}");
            if !hit_fast {
                fast.insert(page);
                naive.insert(page);
            }
            assert!(fast.len() <= 8, "capacity exceeded");
            assert_eq!(fast.len(), naive.entries.len(), "occupancy skew");
            if step % 97 == 0 {
                assert_eq!(
                    fast.resident()
                        .into_iter()
                        .collect::<std::collections::HashSet<_>>(),
                    naive.entries.keys().copied().collect(),
                    "resident sets diverged at step {step}"
                );
            }
        }
        assert_eq!(
            fast.resident()
                .into_iter()
                .collect::<std::collections::HashSet<_>>(),
            naive.entries.keys().copied().collect(),
            "resident sets diverged"
        );
    }

    #[test]
    fn arena_list_order_is_mru_to_lru() {
        let mut l = TlbLevel::new(3);
        for p in [1, 2, 3] {
            l.insert(PageId::new(p));
        }
        assert_eq!(
            l.resident(),
            vec![PageId::new(3), PageId::new(2), PageId::new(1)]
        );
        // Touch 1: becomes MRU.
        assert!(l.lookup(PageId::new(1)));
        assert_eq!(
            l.resident(),
            vec![PageId::new(1), PageId::new(3), PageId::new(2)]
        );
        // Insert over capacity: 2 (the tail) is evicted.
        l.insert(PageId::new(4));
        assert_eq!(
            l.resident(),
            vec![PageId::new(4), PageId::new(1), PageId::new(3)]
        );
        assert!(!l.lookup(PageId::new(2)));
    }

    #[test]
    fn persist_round_trip_preserves_lru_order_and_counters() {
        use ise_types::persist::{restore_container, save_container};
        let mut t = tlb();
        t.set_refill_logging(true);
        // Populate both levels with an L1-overflowing working set, leave
        // undrained refill-log entries pending.
        for i in 0..200 {
            t.access(PageId::new(i % 80));
        }
        let bytes = save_container(&t);
        let mut back: Tlb = restore_container(&bytes).unwrap();
        assert_eq!(save_container(&back), bytes);
        assert_eq!(back.l1_misses(), t.l1_misses());
        assert_eq!(back.walks(), t.walks());
        assert_eq!(back.l1.resident(), t.l1.resident());
        assert_eq!(back.l2.resident(), t.l2.resident());
        // Identical latency stream from here: same hits, same victims.
        for i in 0..400u64 {
            let p = PageId::new((i * 7) % 90);
            assert_eq!(back.access(p), t.access(p), "diverged at access {i}");
        }
        assert_eq!(back.drain_refill_log(), t.drain_refill_log());
    }

    #[test]
    fn flush_bumps_generations_and_empties_level() {
        let mut l = TlbLevel::new(4);
        l.insert(PageId::new(10));
        l.insert(PageId::new(11));
        let g_before = l.gens[0];
        l.flush();
        assert_eq!(l.len(), 0);
        assert!(l.resident().is_empty());
        assert_eq!(l.gens[0], g_before.wrapping_add(1));
        assert!(!l.lookup(PageId::new(10)));
        // The level is fully usable after a flush.
        for p in 0..8 {
            l.insert(PageId::new(p));
        }
        assert_eq!(l.len(), 4);
    }
}
