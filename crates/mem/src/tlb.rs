//! Two-level TLB model (Table 2: L1 48 entries, L2 1024 entries).

use ise_engine::Cycle;
use ise_types::addr::PageId;
use ise_types::config::TlbConfig;
use std::collections::{BTreeMap, HashMap};

/// A single fully-associative LRU TLB level.
///
/// `by_tick` mirrors `entries` keyed by last-use tick, so the LRU victim
/// is the first tree entry — O(log n) instead of scanning the whole
/// level on every refill, which dominated page-walk-heavy runs (a
/// page-stride workload refills the 1024-entry L2 level per access).
/// Ticks are unique, so the mirror picks exactly the entry a full
/// min-scan would.
#[derive(Debug, Clone)]
struct TlbLevel {
    capacity: usize,
    entries: HashMap<PageId, u64>,
    by_tick: BTreeMap<u64, PageId>,
    tick: u64,
}

impl TlbLevel {
    fn new(capacity: usize) -> Self {
        TlbLevel {
            capacity,
            entries: HashMap::new(),
            by_tick: BTreeMap::new(),
            tick: 0,
        }
    }

    fn lookup(&mut self, page: PageId) -> bool {
        self.tick += 1;
        if let Some(lru) = self.entries.get_mut(&page) {
            self.by_tick.remove(lru);
            *lru = self.tick;
            self.by_tick.insert(self.tick, page);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, page: PageId) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&page) {
            // Evict the LRU entry: the oldest tick in the mirror.
            if let Some((&t, &victim)) = self.by_tick.iter().next() {
                self.by_tick.remove(&t);
                self.entries.remove(&victim);
            }
        }
        if let Some(old) = self.entries.insert(page, self.tick) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(self.tick, page);
    }

    fn flush(&mut self) {
        self.entries.clear();
        self.by_tick.clear();
    }
}

/// A per-core two-level data TLB.
///
/// [`Tlb::access`] returns the extra translation latency an access pays:
/// zero on an L1 hit, the L2 latency on an L1 miss that hits L2, and the
/// full page-walk latency on a double miss (with both levels refilled).
#[derive(Debug, Clone)]
pub struct Tlb {
    l1: TlbLevel,
    l2: TlbLevel,
    cfg: TlbConfig,
    l1_misses: u64,
    walks: u64,
    refill_log: Option<Vec<(PageId, bool)>>,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            l1: TlbLevel::new(cfg.l1_entries),
            l2: TlbLevel::new(cfg.l2_entries),
            cfg,
            l1_misses: 0,
            walks: 0,
            refill_log: None,
        }
    }

    /// Turns the refill log on or off. While on, every L1 refill and
    /// page walk is appended to a log the owner drains with
    /// [`Tlb::drain_refill_log`] — the hook the system's event trace
    /// uses. Off (the default) costs one branch per miss.
    pub fn set_refill_logging(&mut self, on: bool) {
        self.refill_log = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the refills logged since the last drain as
    /// `(page, walked)` pairs: `walked` distinguishes a full page walk
    /// from an L1 refill served by the L2 TLB. Empty when logging is
    /// off.
    pub fn drain_refill_log(&mut self) -> Vec<(PageId, bool)> {
        match &mut self.refill_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Translates an access to `page`, returning extra latency in cycles.
    pub fn access(&mut self, page: PageId) -> Cycle {
        if self.l1.lookup(page) {
            return 0;
        }
        self.l1_misses += 1;
        if self.l2.lookup(page) {
            self.l1.insert(page);
            if let Some(log) = &mut self.refill_log {
                log.push((page, false));
            }
            return self.cfg.l2_latency;
        }
        self.walks += 1;
        self.l2.insert(page);
        self.l1.insert(page);
        if let Some(log) = &mut self.refill_log {
            log.push((page, true));
        }
        self.cfg.walk_latency
    }

    /// Invalidates all entries (TLB shootdown / context switch).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// L1 TLB misses observed.
    pub fn l1_misses(&self) -> u64 {
        self.l1_misses
    }

    /// Page walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Exports this TLB's counters into the shared telemetry registry.
    /// Counters *add*, so calling this for every core's TLB under the
    /// same keys yields the system-wide aggregate.
    pub fn export_telemetry(&self, reg: &mut ise_telemetry::Registry) {
        reg.add("tlb.l1_misses", self.l1_misses);
        reg.add("tlb.walks", self.walks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::isca23())
    }

    #[test]
    fn first_access_walks_then_hits() {
        let mut t = tlb();
        let p = PageId::new(7);
        assert_eq!(t.access(p), TlbConfig::isca23().walk_latency);
        assert_eq!(t.access(p), 0);
        assert_eq!(t.walks(), 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut t = tlb();
        // Fill L1 beyond capacity.
        for i in 0..49 {
            t.access(PageId::new(i));
        }
        // Page 0 was LRU-evicted from the 48-entry L1 but still sits in L2.
        assert_eq!(t.access(PageId::new(0)), TlbConfig::isca23().l2_latency);
    }

    #[test]
    fn flush_forces_rewalk() {
        let mut t = tlb();
        let p = PageId::new(3);
        t.access(p);
        t.flush();
        assert_eq!(t.access(p), TlbConfig::isca23().walk_latency);
        assert_eq!(t.walks(), 2);
    }

    #[test]
    fn l2_capacity_much_larger_than_l1() {
        let mut t = tlb();
        for i in 0..1024 {
            t.access(PageId::new(i));
        }
        // A page well within L2 reach but outside L1 hits L2.
        let lat = t.access(PageId::new(500));
        assert_eq!(lat, TlbConfig::isca23().l2_latency);
    }

    #[test]
    fn refill_log_distinguishes_walks_from_l2_hits() {
        let mut t = tlb();
        t.set_refill_logging(true);
        let p = PageId::new(9);
        t.access(p);
        assert_eq!(t.drain_refill_log(), vec![(p, true)]);
        // Evict `p` from the 48-entry L1 (it stays resident in L2).
        for i in 100..148 {
            t.access(PageId::new(i));
        }
        t.drain_refill_log();
        t.access(p);
        assert_eq!(t.drain_refill_log(), vec![(p, false)]);
        t.set_refill_logging(false);
        t.access(PageId::new(999));
        assert!(t.drain_refill_log().is_empty());
    }

    /// A naive full-scan LRU, kept as the behavioural reference for the
    /// tick-mirrored level.
    struct NaiveLru {
        capacity: usize,
        entries: std::collections::HashMap<PageId, u64>,
        tick: u64,
    }

    impl NaiveLru {
        fn lookup(&mut self, page: PageId) -> bool {
            self.tick += 1;
            if let Some(lru) = self.entries.get_mut(&page) {
                *lru = self.tick;
                true
            } else {
                false
            }
        }

        fn insert(&mut self, page: PageId) {
            self.tick += 1;
            if self.entries.len() >= self.capacity && !self.entries.contains_key(&page) {
                if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &lru)| lru) {
                    self.entries.remove(&victim);
                }
            }
            let tick = self.tick;
            self.entries.insert(page, tick);
        }
    }

    #[test]
    fn mirrored_level_matches_naive_lru_scan() {
        let mut fast = TlbLevel::new(8);
        let mut naive = NaiveLru {
            capacity: 8,
            entries: std::collections::HashMap::new(),
            tick: 0,
        };
        // A deterministic pseudo-random mix of hits, misses, and
        // re-touches over a working set larger than the capacity.
        let mut x = 0x2545_F491u64;
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = PageId::new(x % 24);
            let hit_fast = fast.lookup(page);
            let hit_naive = naive.lookup(page);
            assert_eq!(hit_fast, hit_naive, "hit/miss diverged on {page:?}");
            if !hit_fast {
                fast.insert(page);
                naive.insert(page);
            }
            assert!(fast.entries.len() <= 8, "capacity exceeded");
            assert_eq!(fast.entries.len(), fast.by_tick.len(), "mirror skew");
        }
        assert_eq!(
            fast.entries
                .keys()
                .collect::<std::collections::HashSet<_>>(),
            naive
                .entries
                .keys()
                .collect::<std::collections::HashSet<_>>(),
            "resident sets diverged"
        );
    }
}
