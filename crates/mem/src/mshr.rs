//! Miss Status Handling Registers.
//!
//! The L1D has a bounded number of outstanding misses (32 in Table 2).
//! When the file is full, a new miss must wait for the earliest in-flight
//! miss to complete; [`MshrFile::allocate`] returns that stall so the core
//! model can charge it.

use ise_engine::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bounded file of in-flight misses, tracked by completion time.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    completions: BinaryHeap<Reverse<Cycle>>,
    full_stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            completions: BinaryHeap::new(),
            full_stalls: 0,
        }
    }

    /// Releases entries whose misses completed at or before `now`.
    fn drain(&mut self, now: Cycle) {
        while matches!(self.completions.peek(), Some(Reverse(t)) if *t <= now) {
            self.completions.pop();
        }
    }

    /// Allocates an entry for a miss issued at `now` that will complete at
    /// `now + stall + service`. Returns the extra stall cycles spent
    /// waiting for a free entry (0 if one was available).
    pub fn allocate(&mut self, now: Cycle, service: Cycle) -> Cycle {
        self.drain(now);
        let stall = if self.completions.len() >= self.capacity {
            let Reverse(earliest) = self.completions.pop().expect("full file has entries");
            earliest.saturating_sub(now)
        } else {
            0
        };
        if stall > 0 {
            self.full_stalls += 1;
        }
        self.completions.push(Reverse(now + stall + service));
        stall
    }

    /// In-flight misses as of `now`.
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.drain(now);
        self.completions.len()
    }

    /// Times the file was found full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

impl ise_types::persist::Persist for MshrFile {
    /// Completion times are written sorted ascending — the canonical
    /// form of the heap's contents — so the serialization is independent
    /// of the heap's internal array layout (which depends on push/pop
    /// history).
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"MSHR", |w| {
            w.usize(self.capacity);
            w.u64(self.full_stalls);
            let mut times: Vec<Cycle> = self.completions.iter().map(|Reverse(t)| *t).collect();
            times.sort_unstable();
            times.save(w);
        });
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        use ise_types::persist::{Persist, PersistError};
        r.section(*b"MSHR", |r| {
            let capacity = r.usize()?;
            if capacity == 0 {
                return Err(PersistError::Corrupt("zero-capacity MSHR file"));
            }
            let full_stalls = r.u64()?;
            let times: Vec<Cycle> = Persist::restore(r)?;
            if times.len() > capacity {
                return Err(PersistError::Corrupt("MSHR occupancy beyond capacity"));
            }
            Ok(MshrFile {
                capacity,
                completions: times.into_iter().map(Reverse).collect(),
                full_stalls,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_without_pressure_is_free() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(0, 100), 0);
        assert_eq!(m.allocate(0, 100), 0);
        assert_eq!(m.outstanding(0), 2);
    }

    #[test]
    fn full_file_stalls_until_earliest_completion() {
        let mut m = MshrFile::new(2);
        m.allocate(0, 50); // completes at 50
        m.allocate(0, 100); // completes at 100
        let stall = m.allocate(10, 80);
        assert_eq!(stall, 40); // waits for the 50-cycle miss
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn completions_free_entries() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 10);
        assert_eq!(m.outstanding(10), 0);
        assert_eq!(m.allocate(10, 10), 0);
    }

    #[test]
    fn stall_accounts_into_new_completion_time() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 100); // completes at 100
        let stall = m.allocate(0, 10); // waits 100, completes at 110
        assert_eq!(stall, 100);
        assert_eq!(m.outstanding(105), 1);
        assert_eq!(m.outstanding(110), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn persist_round_trip_with_in_flight_misses() {
        use ise_types::persist::{restore_container, save_container};
        let mut m = MshrFile::new(2);
        m.allocate(0, 50);
        m.allocate(0, 100);
        let bytes = save_container(&m);
        let mut back: MshrFile = restore_container(&bytes).unwrap();
        assert_eq!(save_container(&back), bytes);
        // The restored file stalls exactly like the original.
        assert_eq!(back.allocate(10, 80), m.allocate(10, 80));
        assert_eq!(back.full_stalls(), m.full_stalls());
        assert_eq!(back.outstanding(200), m.outstanding(200));
    }

    #[test]
    fn persist_rejects_occupancy_beyond_capacity() {
        use ise_types::persist::{restore_container, save_container, PersistError};
        let mut m = MshrFile::new(4);
        m.allocate(0, 50);
        m.allocate(0, 60);
        m.allocate(0, 70);
        let bytes = save_container(&m);
        // Shrink the stored capacity below the in-flight count
        // (capacity is the first u64 after the section header).
        let mut bad = bytes.clone();
        bad[20..28].copy_from_slice(&2u64.to_le_bytes());
        let off = bad.len() - 8;
        let h = ise_types::persist::fnv1a(&bad[..off]);
        bad[off..].copy_from_slice(&h.to_le_bytes());
        assert!(matches!(
            restore_container::<MshrFile>(&bad),
            Err(PersistError::Corrupt("MSHR occupancy beyond capacity"))
        ));
    }
}
