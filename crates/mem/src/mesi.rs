//! Directory-based MESI coherence (Table 2: "Directory-based MESI").
//!
//! The directory tracks, per cache line, which cores hold the line and in
//! what state. The hierarchy consults it on every L1 miss (and on store
//! upgrades) to learn *who must be contacted* — the owner to forward from,
//! or the sharers to invalidate — and prices those messages on the mesh.
//! Stores pay more than loads under sharing because invalidations fan out;
//! this asymmetry is exactly the store-to-load latency skew that §3.3 of
//! the paper studies.

use ise_types::addr::Addr;
use ise_types::CoreId;
use std::collections::HashMap;
use std::fmt;

/// Stable MESI state of a line as recorded at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// One core holds the only, dirty copy.
    Modified,
    /// One core holds the only, clean copy.
    Exclusive,
    /// One or more cores hold read-only copies.
    Shared,
    /// No core holds the line.
    Invalid,
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MesiState::Modified => "M",
            MesiState::Exclusive => "E",
            MesiState::Shared => "S",
            MesiState::Invalid => "I",
        };
        write!(f, "{s}")
    }
}

/// One directory entry: state plus a sharer bit-vector (supports up to 64
/// cores; Table 2 uses 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Current stable state.
    pub state: MesiState,
    /// Bit *i* set means core *i* holds a copy.
    pub sharers: u64,
}

impl DirEntry {
    fn empty() -> Self {
        DirEntry {
            state: MesiState::Invalid,
            sharers: 0,
        }
    }

    /// Cores currently holding the line, in ascending id order.
    pub fn sharer_list(&self) -> Vec<CoreId> {
        (0..64)
            .filter(|i| self.sharers & (1u64 << i) != 0)
            .map(CoreId)
            .collect()
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    fn has(&self, core: CoreId) -> bool {
        self.sharers & (1u64 << core.index()) != 0
    }
}

/// What the requesting core must do to complete a read miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadAction {
    /// Line uncached anywhere: fetch from L2/memory; requester becomes
    /// Exclusive.
    FromMemory,
    /// A clean copy exists at the L2/home or other sharers: deliver from
    /// home; requester joins the sharer set.
    FromHome,
    /// `owner` holds an M (or E) copy: forward from the owner's cache
    /// (3-hop miss); both end Shared.
    ForwardFrom(CoreId),
}

/// What the requesting core must do to complete a write (GetM/upgrade).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAction {
    /// Cores whose copies must be invalidated (excludes the requester).
    pub invalidate: Vec<CoreId>,
    /// If some other core held M, its dirty data must be pulled first.
    pub pull_dirty_from: Option<CoreId>,
    /// Whether the line must be fetched from memory (no cached copy
    /// anywhere).
    pub from_memory: bool,
}

/// The full-map directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
    /// Counters for stats: (read_forwards, invalidations_sent).
    invalidations: u64,
    forwards: u64,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(line: Addr) -> u64 {
        debug_assert_eq!(line, line.line());
        line.raw()
    }

    /// Current entry for a line (Invalid if never seen).
    pub fn entry(&self, line: Addr) -> DirEntry {
        self.entries
            .get(&Self::key(line))
            .copied()
            .unwrap_or_else(DirEntry::empty)
    }

    /// Handles a read miss by `core`: returns the action the hierarchy
    /// must price, and transitions the directory.
    pub fn read(&mut self, line: Addr, core: CoreId) -> ReadAction {
        let e = self
            .entries
            .entry(Self::key(line))
            .or_insert_with(DirEntry::empty);
        let bit = 1u64 << core.index();
        match e.state {
            MesiState::Invalid => {
                e.state = MesiState::Exclusive;
                e.sharers = bit;
                ReadAction::FromMemory
            }
            MesiState::Shared => {
                e.sharers |= bit;
                ReadAction::FromHome
            }
            MesiState::Exclusive | MesiState::Modified => {
                if e.has(core) {
                    // Silent re-read by the owner.
                    return ReadAction::FromHome;
                }
                let owner = CoreId(e.sharers.trailing_zeros() as usize);
                e.state = MesiState::Shared;
                e.sharers |= bit;
                self.forwards += 1;
                ReadAction::ForwardFrom(owner)
            }
        }
    }

    /// Handles a write (GetM or upgrade) by `core`: returns the action and
    /// transitions the line to Modified owned by `core`.
    pub fn write(&mut self, line: Addr, core: CoreId) -> WriteAction {
        let e = self
            .entries
            .entry(Self::key(line))
            .or_insert_with(DirEntry::empty);
        let bit = 1u64 << core.index();
        let action = match e.state {
            MesiState::Invalid => WriteAction {
                invalidate: Vec::new(),
                pull_dirty_from: None,
                from_memory: true,
            },
            MesiState::Exclusive | MesiState::Modified if e.sharers == bit => {
                // Silent upgrade by the sole owner.
                WriteAction {
                    invalidate: Vec::new(),
                    pull_dirty_from: None,
                    from_memory: false,
                }
            }
            MesiState::Modified => {
                let owner = CoreId(e.sharers.trailing_zeros() as usize);
                self.invalidations += 1;
                WriteAction {
                    invalidate: vec![owner],
                    pull_dirty_from: Some(owner),
                    from_memory: false,
                }
            }
            MesiState::Exclusive | MesiState::Shared => {
                let victims: Vec<CoreId> = (0..64)
                    .filter(|i| e.sharers & (1u64 << i) != 0 && *i != core.index())
                    .map(CoreId)
                    .collect();
                self.invalidations += victims.len() as u64;
                WriteAction {
                    invalidate: victims,
                    pull_dirty_from: None,
                    // If the requester already shared it, data is local;
                    // otherwise the home supplies it (not memory).
                    from_memory: false,
                }
            }
        };
        e.state = MesiState::Modified;
        e.sharers = bit;
        action
    }

    /// Records that `core` evicted its copy of `line` (PutS/PutM).
    pub fn evict(&mut self, line: Addr, core: CoreId) {
        if let Some(e) = self.entries.get_mut(&Self::key(line)) {
            e.sharers &= !(1u64 << core.index());
            if e.sharers == 0 {
                e.state = MesiState::Invalid;
            } else if e.sharer_count() >= 1 && e.state == MesiState::Modified {
                // Owner left; remaining copies are clean shared.
                e.state = MesiState::Shared;
            }
        }
    }

    /// Total invalidation messages the directory has ordered.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations
    }

    /// Total owner-forwards the directory has ordered.
    pub fn forwards_ordered(&self) -> u64 {
        self.forwards
    }

    /// Number of tracked (non-invalid) lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state != MesiState::Invalid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> Addr {
        Addr::new(i * 64)
    }

    #[test]
    fn first_read_is_exclusive_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read(line(1), CoreId(0)), ReadAction::FromMemory);
        let e = d.entry(line(1));
        assert_eq!(e.state, MesiState::Exclusive);
        assert_eq!(e.sharer_list(), vec![CoreId(0)]);
    }

    #[test]
    fn second_reader_forwards_from_owner_and_shares() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        assert_eq!(
            d.read(line(1), CoreId(1)),
            ReadAction::ForwardFrom(CoreId(0))
        );
        let e = d.entry(line(1));
        assert_eq!(e.state, MesiState::Shared);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn third_reader_hits_home() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        d.read(line(1), CoreId(1));
        assert_eq!(d.read(line(1), CoreId(2)), ReadAction::FromHome);
    }

    #[test]
    fn write_to_uncached_goes_to_memory() {
        let mut d = Directory::new();
        let a = d.write(line(2), CoreId(3));
        assert!(a.from_memory);
        assert!(a.invalidate.is_empty());
        assert_eq!(d.entry(line(2)).state, MesiState::Modified);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        d.read(line(1), CoreId(1));
        d.read(line(1), CoreId(2));
        let a = d.write(line(1), CoreId(2));
        assert_eq!(a.invalidate, vec![CoreId(0), CoreId(1)]);
        assert!(!a.from_memory);
        assert_eq!(d.entry(line(1)).sharers, 1 << 2);
        assert_eq!(d.invalidations_sent(), 2);
    }

    #[test]
    fn write_to_modified_pulls_dirty_copy() {
        let mut d = Directory::new();
        d.write(line(1), CoreId(0));
        let a = d.write(line(1), CoreId(1));
        assert_eq!(a.pull_dirty_from, Some(CoreId(0)));
        assert_eq!(a.invalidate, vec![CoreId(0)]);
        assert_eq!(d.entry(line(1)).sharer_list(), vec![CoreId(1)]);
    }

    #[test]
    fn silent_upgrade_for_sole_owner() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0)); // E
        let a = d.write(line(1), CoreId(0));
        assert!(a.invalidate.is_empty() && a.pull_dirty_from.is_none() && !a.from_memory);
        assert_eq!(d.entry(line(1)).state, MesiState::Modified);
    }

    #[test]
    fn owner_reread_is_local() {
        let mut d = Directory::new();
        d.write(line(1), CoreId(0));
        assert_eq!(d.read(line(1), CoreId(0)), ReadAction::FromHome);
        assert_eq!(d.entry(line(1)).state, MesiState::Modified);
    }

    #[test]
    fn eviction_clears_sharer_and_state() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        d.read(line(1), CoreId(1));
        d.evict(line(1), CoreId(0));
        assert_eq!(d.entry(line(1)).sharer_list(), vec![CoreId(1)]);
        d.evict(line(1), CoreId(1));
        assert_eq!(d.entry(line(1)).state, MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn modified_owner_eviction_leaves_clean_state() {
        let mut d = Directory::new();
        d.write(line(1), CoreId(0));
        d.evict(line(1), CoreId(0));
        assert_eq!(d.entry(line(1)).state, MesiState::Invalid);
    }
}
