//! Directory-based MESI coherence (Table 2: "Directory-based MESI").
//!
//! The directory tracks, per cache line, which cores hold the line and in
//! what state. The hierarchy consults it on every L1 miss (and on store
//! upgrades) to learn *who must be contacted* — the owner to forward from,
//! or the sharers to invalidate — and prices those messages on the mesh.
//! Stores pay more than loads under sharing because invalidations fan out;
//! this asymmetry is exactly the store-to-load latency skew that §3.3 of
//! the paper studies.
//!
//! Directory state lives in an open-addressed struct-of-arrays table
//! ([`LineTable`]) keyed by line index — dense arrays probed linearly, no
//! per-entry boxing — and write actions carry the victim set as a
//! [`SharerSet`] bit mask instead of an allocated list, so a directory
//! transition on the hot path performs no heap allocation.

use ise_types::addr::Addr;
use ise_types::CoreId;
use std::fmt;

/// Stable MESI state of a line as recorded at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// One core holds the only, dirty copy.
    Modified,
    /// One core holds the only, clean copy.
    Exclusive,
    /// One or more cores hold read-only copies.
    Shared,
    /// No core holds the line.
    Invalid,
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MesiState::Modified => "M",
            MesiState::Exclusive => "E",
            MesiState::Shared => "S",
            MesiState::Invalid => "I",
        };
        write!(f, "{s}")
    }
}

/// A set of cores as a bit vector (supports up to 64 cores; Table 2 uses
/// 16). Iteration is in ascending core-id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(pub u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Whether no core is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `core` is in the set.
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1u64 << core.index()) != 0
    }

    /// Iterates the member cores in ascending id order without
    /// allocating.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(CoreId(i))
            }
        })
    }

    /// The members as a vector (test/debug convenience; allocates).
    pub fn to_vec(self) -> Vec<CoreId> {
        self.iter().collect()
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut bits = 0u64;
        for c in iter {
            bits |= 1u64 << c.index();
        }
        SharerSet(bits)
    }
}

/// One directory entry: state plus a sharer bit-vector (supports up to 64
/// cores; Table 2 uses 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Current stable state.
    pub state: MesiState,
    /// Bit *i* set means core *i* holds a copy.
    pub sharers: u64,
}

impl DirEntry {
    fn empty() -> Self {
        DirEntry {
            state: MesiState::Invalid,
            sharers: 0,
        }
    }

    /// Cores currently holding the line, in ascending id order.
    pub fn sharer_list(&self) -> Vec<CoreId> {
        self.sharer_set().to_vec()
    }

    /// Cores currently holding the line as an allocation-free bit set.
    pub fn sharer_set(&self) -> SharerSet {
        SharerSet(self.sharers)
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    fn has(&self, core: CoreId) -> bool {
        self.sharers & (1u64 << core.index()) != 0
    }
}

/// What the requesting core must do to complete a read miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadAction {
    /// Line uncached anywhere: fetch from L2/memory; requester becomes
    /// Exclusive.
    FromMemory,
    /// A clean copy exists at the L2/home or other sharers: deliver from
    /// home; requester joins the sharer set.
    FromHome,
    /// `owner` holds an M (or E) copy: forward from the owner's cache
    /// (3-hop miss); both end Shared.
    ForwardFrom(CoreId),
}

/// What the requesting core must do to complete a write (GetM/upgrade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAction {
    /// Cores whose copies must be invalidated (excludes the requester).
    pub invalidate: SharerSet,
    /// If some other core held M, its dirty data must be pulled first.
    pub pull_dirty_from: Option<CoreId>,
    /// Whether the line must be fetched from memory (no cached copy
    /// anywhere).
    pub from_memory: bool,
}

/// Open-addressed struct-of-arrays map from line index to directory
/// state. Linear probing over power-of-two dense arrays; slots are never
/// tombstoned (an evicted line parks as `Invalid` in place, exactly like
/// the hash-map predecessor which never removed keys), so probe chains
/// stay valid without back-shifting.
#[derive(Debug, Clone)]
struct LineTable {
    /// Line index + 1; 0 marks an empty slot.
    keys: Box<[u64]>,
    states: Box<[MesiState]>,
    sharers: Box<[u64]>,
    /// Occupied slots (including Invalid parked lines).
    len: usize,
    mask: usize,
}

impl LineTable {
    const INITIAL_SLOTS: usize = 1024;

    fn new() -> Self {
        LineTable {
            keys: vec![0; Self::INITIAL_SLOTS].into_boxed_slice(),
            states: vec![MesiState::Invalid; Self::INITIAL_SLOTS].into_boxed_slice(),
            sharers: vec![0; Self::INITIAL_SLOTS].into_boxed_slice(),
            len: 0,
            mask: Self::INITIAL_SLOTS - 1,
        }
    }

    fn hash(key: u64) -> usize {
        // Fibonacci multiplicative mix: line indices are sequential, so
        // spread them before masking.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    /// Slot holding `key`, or `None`.
    fn find(&self, key: u64) -> Option<usize> {
        let tagged = key + 1;
        let mut i = Self::hash(key) & self.mask;
        loop {
            let k = self.keys[i];
            if k == tagged {
                return Some(i);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Slot holding `key`, inserting an Invalid entry if absent.
    fn find_or_insert(&mut self, key: u64) -> usize {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let tagged = key + 1;
        let mut i = Self::hash(key) & self.mask;
        loop {
            let k = self.keys[i];
            if k == tagged {
                return i;
            }
            if k == 0 {
                self.keys[i] = tagged;
                self.states[i] = MesiState::Invalid;
                self.sharers[i] = 0;
                self.len += 1;
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_slots].into_boxed_slice());
        let old_states = std::mem::replace(
            &mut self.states,
            vec![MesiState::Invalid; new_slots].into_boxed_slice(),
        );
        let old_sharers =
            std::mem::replace(&mut self.sharers, vec![0; new_slots].into_boxed_slice());
        self.mask = new_slots - 1;
        for (slot, &k) in old_keys.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let mut i = Self::hash(k - 1) & self.mask;
            while self.keys[i] != 0 {
                i = (i + 1) & self.mask;
            }
            self.keys[i] = k;
            self.states[i] = old_states[slot];
            self.sharers[i] = old_sharers[slot];
        }
    }
}

/// The full-map directory.
#[derive(Debug, Clone)]
pub struct Directory {
    table: LineTable,
    /// Counters for stats: (read_forwards, invalidations_sent).
    invalidations: u64,
    forwards: u64,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory {
            table: LineTable::new(),
            invalidations: 0,
            forwards: 0,
        }
    }

    fn key(line: Addr) -> u64 {
        debug_assert_eq!(line, line.line());
        line.raw()
    }

    /// Current entry for a line (Invalid if never seen).
    pub fn entry(&self, line: Addr) -> DirEntry {
        match self.table.find(Self::key(line)) {
            Some(i) => DirEntry {
                state: self.table.states[i],
                sharers: self.table.sharers[i],
            },
            None => DirEntry::empty(),
        }
    }

    /// Handles a read miss by `core`: returns the action the hierarchy
    /// must price, and transitions the directory.
    pub fn read(&mut self, line: Addr, core: CoreId) -> ReadAction {
        let i = self.table.find_or_insert(Self::key(line));
        let e = DirEntry {
            state: self.table.states[i],
            sharers: self.table.sharers[i],
        };
        let bit = 1u64 << core.index();
        match e.state {
            MesiState::Invalid => {
                self.table.states[i] = MesiState::Exclusive;
                self.table.sharers[i] = bit;
                ReadAction::FromMemory
            }
            MesiState::Shared => {
                self.table.sharers[i] |= bit;
                ReadAction::FromHome
            }
            MesiState::Exclusive | MesiState::Modified => {
                if e.has(core) {
                    // Silent re-read by the owner.
                    return ReadAction::FromHome;
                }
                let owner = CoreId(e.sharers.trailing_zeros() as usize);
                self.table.states[i] = MesiState::Shared;
                self.table.sharers[i] |= bit;
                self.forwards += 1;
                ReadAction::ForwardFrom(owner)
            }
        }
    }

    /// Handles a write (GetM or upgrade) by `core`: returns the action and
    /// transitions the line to Modified owned by `core`.
    pub fn write(&mut self, line: Addr, core: CoreId) -> WriteAction {
        let i = self.table.find_or_insert(Self::key(line));
        let state = self.table.states[i];
        let sharers = self.table.sharers[i];
        let bit = 1u64 << core.index();
        let action = match state {
            MesiState::Invalid => WriteAction {
                invalidate: SharerSet::EMPTY,
                pull_dirty_from: None,
                from_memory: true,
            },
            MesiState::Exclusive | MesiState::Modified if sharers == bit => {
                // Silent upgrade by the sole owner.
                WriteAction {
                    invalidate: SharerSet::EMPTY,
                    pull_dirty_from: None,
                    from_memory: false,
                }
            }
            MesiState::Modified => {
                let owner = CoreId(sharers.trailing_zeros() as usize);
                self.invalidations += 1;
                WriteAction {
                    invalidate: SharerSet(1u64 << owner.index()),
                    pull_dirty_from: Some(owner),
                    from_memory: false,
                }
            }
            MesiState::Exclusive | MesiState::Shared => {
                let victims = SharerSet(sharers & !bit);
                self.invalidations += u64::from(victims.len());
                WriteAction {
                    invalidate: victims,
                    pull_dirty_from: None,
                    // If the requester already shared it, data is local;
                    // otherwise the home supplies it (not memory).
                    from_memory: false,
                }
            }
        };
        self.table.states[i] = MesiState::Modified;
        self.table.sharers[i] = bit;
        action
    }

    /// Records that `core` evicted its copy of `line` (PutS/PutM).
    pub fn evict(&mut self, line: Addr, core: CoreId) {
        if let Some(i) = self.table.find(Self::key(line)) {
            self.table.sharers[i] &= !(1u64 << core.index());
            if self.table.sharers[i] == 0 {
                self.table.states[i] = MesiState::Invalid;
            } else if self.table.states[i] == MesiState::Modified {
                // Owner left; remaining copies are clean shared.
                self.table.states[i] = MesiState::Shared;
            }
        }
    }

    /// Total invalidation messages the directory has ordered.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations
    }

    /// Total owner-forwards the directory has ordered.
    pub fn forwards_ordered(&self) -> u64 {
        self.forwards
    }

    /// Number of tracked (non-invalid) lines.
    pub fn tracked_lines(&self) -> usize {
        self.table
            .keys
            .iter()
            .zip(self.table.states.iter())
            .filter(|(&k, &s)| k != 0 && s != MesiState::Invalid)
            .count()
    }
}

mod persist_impls {
    use super::*;
    use ise_types::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for MesiState {
        fn save(&self, w: &mut Writer) {
            w.u8(match self {
                MesiState::Modified => 0,
                MesiState::Exclusive => 1,
                MesiState::Shared => 2,
                MesiState::Invalid => 3,
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => MesiState::Modified,
                1 => MesiState::Exclusive,
                2 => MesiState::Shared,
                3 => MesiState::Invalid,
                _ => return Err(PersistError::Corrupt("MesiState discriminant")),
            })
        }
    }

    impl Persist for SharerSet {
        fn save(&self, w: &mut Writer) {
            w.u64(self.0);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(SharerSet(r.u64()?))
        }
    }

    /// Occupied slots are written sorted by line key — canonical
    /// regardless of probe-chain layout. Invalid *parked* lines are kept
    /// (they occupy slots and trigger growth at the same thresholds, so
    /// the rebuilt table reaches the same size), and replaying
    /// `find_or_insert` in sorted order reproduces an equivalent table.
    impl Persist for Directory {
        fn save(&self, w: &mut Writer) {
            w.section(*b"MDIR", |w| {
                let t = &self.table;
                let mut entries: Vec<(u64, MesiState, u64)> = t
                    .keys
                    .iter()
                    .zip(t.states.iter())
                    .zip(t.sharers.iter())
                    .filter(|((&k, _), _)| k != 0)
                    .map(|((&k, &s), &sh)| (k - 1, s, sh))
                    .collect();
                entries.sort_unstable_by_key(|&(k, _, _)| k);
                w.usize(entries.len());
                for (key, state, sharers) in entries {
                    w.u64(key);
                    state.save(w);
                    w.u64(sharers);
                }
                w.u64(self.invalidations);
                w.u64(self.forwards);
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            r.section(*b"MDIR", |r| {
                let n = r.usize()?;
                let mut table = LineTable::new();
                let mut last_key = None;
                for _ in 0..n {
                    let key = r.u64()?;
                    if last_key.is_some_and(|k| key <= k) {
                        return Err(PersistError::Corrupt("directory keys out of order"));
                    }
                    last_key = Some(key);
                    let state = MesiState::restore(r)?;
                    let sharers = r.u64()?;
                    let i = table.find_or_insert(key);
                    table.states[i] = state;
                    table.sharers[i] = sharers;
                }
                Ok(Directory {
                    table,
                    invalidations: r.u64()?,
                    forwards: r.u64()?,
                })
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> Addr {
        Addr::new(i * 64)
    }

    #[test]
    fn first_read_is_exclusive_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read(line(1), CoreId(0)), ReadAction::FromMemory);
        let e = d.entry(line(1));
        assert_eq!(e.state, MesiState::Exclusive);
        assert_eq!(e.sharer_list(), vec![CoreId(0)]);
    }

    #[test]
    fn second_reader_forwards_from_owner_and_shares() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        assert_eq!(
            d.read(line(1), CoreId(1)),
            ReadAction::ForwardFrom(CoreId(0))
        );
        let e = d.entry(line(1));
        assert_eq!(e.state, MesiState::Shared);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn third_reader_hits_home() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        d.read(line(1), CoreId(1));
        assert_eq!(d.read(line(1), CoreId(2)), ReadAction::FromHome);
    }

    #[test]
    fn write_to_uncached_goes_to_memory() {
        let mut d = Directory::new();
        let a = d.write(line(2), CoreId(3));
        assert!(a.from_memory);
        assert!(a.invalidate.is_empty());
        assert_eq!(d.entry(line(2)).state, MesiState::Modified);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        d.read(line(1), CoreId(1));
        d.read(line(1), CoreId(2));
        let a = d.write(line(1), CoreId(2));
        assert_eq!(a.invalidate.to_vec(), vec![CoreId(0), CoreId(1)]);
        assert!(!a.from_memory);
        assert_eq!(d.entry(line(1)).sharers, 1 << 2);
        assert_eq!(d.invalidations_sent(), 2);
    }

    #[test]
    fn write_to_modified_pulls_dirty_copy() {
        let mut d = Directory::new();
        d.write(line(1), CoreId(0));
        let a = d.write(line(1), CoreId(1));
        assert_eq!(a.pull_dirty_from, Some(CoreId(0)));
        assert_eq!(a.invalidate.to_vec(), vec![CoreId(0)]);
        assert_eq!(d.entry(line(1)).sharer_list(), vec![CoreId(1)]);
    }

    #[test]
    fn silent_upgrade_for_sole_owner() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0)); // E
        let a = d.write(line(1), CoreId(0));
        assert!(a.invalidate.is_empty() && a.pull_dirty_from.is_none() && !a.from_memory);
        assert_eq!(d.entry(line(1)).state, MesiState::Modified);
    }

    #[test]
    fn owner_reread_is_local() {
        let mut d = Directory::new();
        d.write(line(1), CoreId(0));
        assert_eq!(d.read(line(1), CoreId(0)), ReadAction::FromHome);
        assert_eq!(d.entry(line(1)).state, MesiState::Modified);
    }

    #[test]
    fn eviction_clears_sharer_and_state() {
        let mut d = Directory::new();
        d.read(line(1), CoreId(0));
        d.read(line(1), CoreId(1));
        d.evict(line(1), CoreId(0));
        assert_eq!(d.entry(line(1)).sharer_list(), vec![CoreId(1)]);
        d.evict(line(1), CoreId(1));
        assert_eq!(d.entry(line(1)).state, MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn modified_owner_eviction_leaves_clean_state() {
        let mut d = Directory::new();
        d.write(line(1), CoreId(0));
        d.evict(line(1), CoreId(0));
        assert_eq!(d.entry(line(1)).state, MesiState::Invalid);
    }

    #[test]
    fn sharer_set_iterates_in_ascending_order() {
        let s = SharerSet(0b1010_0101);
        assert_eq!(s.to_vec(), vec![CoreId(0), CoreId(2), CoreId(5), CoreId(7)]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(CoreId(5)));
        assert!(!s.contains(CoreId(1)));
    }

    #[test]
    fn dense_directory_matches_naive_hash_directory() {
        // Differential: the open-addressed SoA table must order exactly
        // the same coherence actions as a naive hash-map directory (the
        // pre-rework layout) under a random mix of reads, writes and
        // evictions from several cores over a clashing line set.
        use std::collections::HashMap;
        #[derive(Default)]
        struct Naive {
            map: HashMap<u64, DirEntry>,
        }
        impl Naive {
            fn entry(&self, line: Addr) -> DirEntry {
                self.map.get(&line.raw()).copied().unwrap_or(DirEntry {
                    state: MesiState::Invalid,
                    sharers: 0,
                })
            }
            fn read(&mut self, line: Addr, core: CoreId) -> ReadAction {
                let e = self.entry(line);
                let bit = 1u64 << core.index();
                let (new, action) = match e.state {
                    MesiState::Invalid => (
                        DirEntry {
                            state: MesiState::Exclusive,
                            sharers: bit,
                        },
                        ReadAction::FromMemory,
                    ),
                    MesiState::Shared => (
                        DirEntry {
                            state: MesiState::Shared,
                            sharers: e.sharers | bit,
                        },
                        ReadAction::FromHome,
                    ),
                    MesiState::Exclusive | MesiState::Modified => {
                        if e.sharers & bit != 0 {
                            (e, ReadAction::FromHome)
                        } else {
                            let owner = CoreId(e.sharers.trailing_zeros() as usize);
                            (
                                DirEntry {
                                    state: MesiState::Shared,
                                    sharers: e.sharers | bit,
                                },
                                ReadAction::ForwardFrom(owner),
                            )
                        }
                    }
                };
                self.map.insert(line.raw(), new);
                action
            }
            fn write(&mut self, line: Addr, core: CoreId) -> WriteAction {
                let e = self.entry(line);
                let bit = 1u64 << core.index();
                let action = match e.state {
                    MesiState::Invalid => WriteAction {
                        invalidate: SharerSet::EMPTY,
                        pull_dirty_from: None,
                        from_memory: true,
                    },
                    MesiState::Exclusive | MesiState::Modified if e.sharers == bit => WriteAction {
                        invalidate: SharerSet::EMPTY,
                        pull_dirty_from: None,
                        from_memory: false,
                    },
                    MesiState::Modified => {
                        let owner = CoreId(e.sharers.trailing_zeros() as usize);
                        WriteAction {
                            invalidate: SharerSet(1u64 << owner.index()),
                            pull_dirty_from: Some(owner),
                            from_memory: false,
                        }
                    }
                    MesiState::Exclusive | MesiState::Shared => WriteAction {
                        invalidate: SharerSet(e.sharers & !bit),
                        pull_dirty_from: None,
                        from_memory: false,
                    },
                };
                self.map.insert(
                    line.raw(),
                    DirEntry {
                        state: MesiState::Modified,
                        sharers: bit,
                    },
                );
                action
            }
            fn evict(&mut self, line: Addr, core: CoreId) {
                if let Some(e) = self.map.get_mut(&line.raw()) {
                    e.sharers &= !(1u64 << core.index());
                    if e.sharers == 0 {
                        e.state = MesiState::Invalid;
                    } else if e.state == MesiState::Modified {
                        e.state = MesiState::Shared;
                    }
                }
            }
        }
        let mut dense = Directory::new();
        let mut naive = Naive::default();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for step in 0..30_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // A clashing line set (few thousand lines over initial table
            // capacity) so the table grows and probe chains collide.
            let l = line((state >> 33) % 3000);
            let core = CoreId(((state >> 17) % 8) as usize);
            match state % 5 {
                0 | 1 => assert_eq!(
                    dense.read(l, core),
                    naive.read(l, core),
                    "read diverged at step {step}"
                ),
                2 | 3 => assert_eq!(
                    dense.write(l, core),
                    naive.write(l, core),
                    "write diverged at step {step}"
                ),
                _ => {
                    dense.evict(l, core);
                    naive.evict(l, core);
                }
            }
            assert_eq!(
                dense.entry(l),
                naive.entry(l),
                "entry diverged at step {step}"
            );
        }
        // Full-table sweep: every line the naive side tracks agrees.
        for (&k, &e) in &naive.map {
            assert_eq!(dense.entry(Addr::new(k)), e, "final state of line {k}");
        }
    }

    #[test]
    fn persist_round_trip_continues_identical_coherence() {
        use ise_types::persist::{restore_container, save_container};
        let mut d = Directory::new();
        // Drive past the initial table capacity so parked Invalid lines
        // and grown probe chains are in play.
        let mut state = 0xdecafu64;
        for _ in 0..8_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let l = line((state >> 33) % 2_000);
            let core = CoreId(((state >> 17) % 8) as usize);
            match state % 5 {
                0 | 1 => {
                    d.read(l, core);
                }
                2 | 3 => {
                    d.write(l, core);
                }
                _ => d.evict(l, core),
            }
        }
        let bytes = save_container(&d);
        let mut back: Directory = restore_container(&bytes).unwrap();
        assert_eq!(save_container(&back), bytes);
        assert_eq!(back.tracked_lines(), d.tracked_lines());
        assert_eq!(back.invalidations_sent(), d.invalidations_sent());
        assert_eq!(back.forwards_ordered(), d.forwards_ordered());
        // Same actions ordered for the same request stream from here.
        for i in 0..2_000u64 {
            let l = line((i * 13) % 2_100);
            let core = CoreId((i % 8) as usize);
            if i % 3 == 0 {
                assert_eq!(back.write(l, core), d.write(l, core), "write {i}");
            } else {
                assert_eq!(back.read(l, core), d.read(l, core), "read {i}");
            }
        }
    }

    #[test]
    fn table_growth_preserves_every_entry() {
        // Push far past the initial open-addressed capacity and verify
        // every line's state survives the rehash.
        let mut d = Directory::new();
        let n = 10_000u64;
        for i in 0..n {
            d.read(line(i), CoreId((i % 4) as usize));
        }
        for i in 0..n {
            let e = d.entry(line(i));
            assert_eq!(e.state, MesiState::Exclusive, "line {i}");
            assert_eq!(e.sharers, 1u64 << (i % 4), "line {i}");
        }
        assert_eq!(d.tracked_lines(), n as usize);
    }
}
