//! Litmus infrastructure: the paper's correctness campaign (§6.3),
//! reproduced with exhaustive schedules.
//!
//! * [`machine`] — an operational model of the whole co-design: per-core
//!   in-order execution with a store buffer (FIFO drains under PC,
//!   relaxed under WC), EInject-style page faulting at the memory
//!   boundary, same-stream or split-stream FSB drains on detection, and a
//!   step-by-step OS handler applying retrieved stores in order. A DFS
//!   with state memoization enumerates **every** interleaving — strictly
//!   stronger coverage than the FPGA prototype's sampled runs.
//! * [`corpus`] — generated litmus tests covering the eight ordering
//!   relations of Table 6.
//! * [`runner`] — runs a test on the machine (with and without injected
//!   faults) and checks `observed ⊆ allowed`, where the allowed set comes
//!   from the axiomatic checker in `ise-consistency`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! * [`parse`] — a plain-text litmus dialect, so corpora can live as
//!   files and run through `cargo run -p ise-bench --bin litmus`.
//! * [`src_parse`] — the source-level (C11-like) twin dialect for the
//!   trisection harness: `.srclitmus` files carrying memory-order
//!   annotations and the hardware model a reproducer was found against.

pub mod corpus;
pub mod machine;
pub mod parse;
pub mod runner;
pub mod src_parse;

pub use corpus::{corpus, Family, LitmusTest};
pub use machine::{explore, ExplorationResult, MachineConfig, SeededBug};
pub use parse::{load_litmus_dir, parse_litmus, render_litmus, ParseError, ParsedLitmus};
pub use runner::{run_corpus, run_corpus_with_workers, run_test, CorpusSummary, LitmusReport};
pub use src_parse::{load_src_litmus_dir, parse_src_litmus, render_src_litmus, ParsedSrcLitmus};
