//! Running the corpus: operational observations vs axiomatic permission.
//!
//! A test **passes** when every outcome the operational machine reaches is
//! inside the axiomatic model's allowed set — the same criterion the
//! paper's §6.3 campaign uses ("the hardware does not exhibit any behavior
//! that the model does not allow"). Each test runs in four configurations:
//! {PC, WC} × {no faults, all locations faulting}, so the corpus verifies
//! both the plain pipeline and the imprecise-exception machinery.

use crate::corpus::{Family, LitmusTest};
use crate::machine::{explore, MachineConfig};
use ise_consistency::axiom::allowed_outcomes;
use ise_consistency::program::{format_outcome, Outcome};
use ise_telemetry::Registry;
use ise_types::json::{Json, ToJson};
use ise_types::model::{ConsistencyModel, DrainPolicy};
use std::collections::BTreeSet;
use std::fmt;

/// How EInject is programmed for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// No pages faulting (plain pipeline).
    None,
    /// Every location's page faulting (the §6.3 campaign setup).
    All,
    /// Only the program's first location faulting — mixes precise and
    /// imprecise exceptions with clean accesses in one run.
    FirstLocation,
}

impl FaultMode {
    /// All modes, for campaign sweeps.
    pub const ALL: [FaultMode; 3] = [FaultMode::None, FaultMode::All, FaultMode::FirstLocation];
}

impl fmt::Display for FaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultMode::None => write!(f, "none"),
            FaultMode::All => write!(f, "all"),
            FaultMode::FirstLocation => write!(f, "first-loc"),
        }
    }
}

/// The verdict for one test under one configuration.
#[derive(Debug, Clone)]
pub struct LitmusReport {
    /// Test name.
    pub name: String,
    /// Table 6 family.
    pub family: Family,
    /// Model the machine ran under.
    pub model: ConsistencyModel,
    /// How EInject was programmed.
    pub fault_mode: FaultMode,
    /// Outcomes the machine reached.
    pub observed: BTreeSet<Outcome>,
    /// Outcomes the axiomatic model allows.
    pub allowed: BTreeSet<Outcome>,
    /// Imprecise exceptions taken during exploration.
    pub imprecise_detections: u64,
    /// Precise (load/atomic/SC-store) exceptions taken during
    /// exploration.
    pub precise_exceptions: u64,
    /// Distinct states explored.
    pub states: usize,
}

impl LitmusReport {
    /// `observed ⊆ allowed`.
    pub fn passed(&self) -> bool {
        self.observed.is_subset(&self.allowed)
    }

    /// Outcomes the machine reached that the model forbids (empty on
    /// pass).
    pub fn violations(&self) -> Vec<&Outcome> {
        self.observed.difference(&self.allowed).collect()
    }
}

impl fmt::Display for LitmusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} faults={}] observed {}/{} allowed: {}",
            self.name,
            self.model,
            self.fault_mode,
            self.observed.len(),
            self.allowed.len(),
            if self.passed() { "OK" } else { "VIOLATION" }
        )?;
        for v in self.violations() {
            write!(f, "\n  !! {}", format_outcome(v))?;
        }
        Ok(())
    }
}

/// Runs one test under one model/fault configuration with the paper's
/// same-stream design.
pub fn run_test(test: &LitmusTest, model: ConsistencyModel, inject_faults: bool) -> LitmusReport {
    let mode = if inject_faults {
        FaultMode::All
    } else {
        FaultMode::None
    };
    run_test_with_policy(test, model, mode, DrainPolicy::SameStream)
}

/// Runs one test with an explicit drain policy and fault mode (the
/// split-stream ablation uses this).
pub fn run_test_with_policy(
    test: &LitmusTest,
    model: ConsistencyModel,
    fault_mode: FaultMode,
    policy: DrainPolicy,
) -> LitmusReport {
    let mut cfg = MachineConfig::baseline(model).with_policy(policy);
    match fault_mode {
        FaultMode::None => {}
        FaultMode::All => cfg = cfg.with_all_faulting(&test.program),
        FaultMode::FirstLocation => {
            cfg.faulting = test.program.locations().into_iter().take(1).collect();
        }
    }
    let result = explore(&test.program, &cfg);
    let allowed = allowed_outcomes(&test.program, model);
    LitmusReport {
        name: test.name.clone(),
        family: test.family,
        model,
        fault_mode,
        observed: result.outcomes,
        allowed,
        imprecise_detections: result.imprecise_detections,
        precise_exceptions: result.precise_exceptions,
        states: result.states,
    }
}

/// Aggregate results of a corpus run.
#[derive(Debug, Clone)]
pub struct CorpusSummary {
    /// One report per (test, model, fault) combination.
    pub reports: Vec<LitmusReport>,
}

impl CorpusSummary {
    /// Total cases (test × configuration) run.
    pub fn cases(&self) -> usize {
        self.reports.len()
    }

    /// Cases that passed.
    pub fn passed(&self) -> usize {
        self.reports.iter().filter(|r| r.passed()).count()
    }

    /// Whether the whole campaign passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.cases()
    }

    /// Cases per family, in Table 6 order: `(family, cases, passed)`.
    pub fn by_family(&self) -> Vec<(Family, usize, usize)> {
        Family::ALL
            .iter()
            .map(|&fam| {
                let in_fam: Vec<_> = self.reports.iter().filter(|r| r.family == fam).collect();
                let ok = in_fam.iter().filter(|r| r.passed()).count();
                (fam, in_fam.len(), ok)
            })
            .collect()
    }

    /// Total imprecise exceptions taken across the campaign.
    pub fn imprecise_detections(&self) -> u64 {
        self.reports.iter().map(|r| r.imprecise_detections).sum()
    }

    /// The campaign as a telemetry [`Registry`]: aggregate counters
    /// first, then one `family.<key>.{cases,passed}` counter pair per
    /// Table 6 family. Keys are pre-seeded in Table 6 order before any
    /// report is accumulated, so shards merged in any grouping render
    /// identically — the corpus' worker-count determinism carries over
    /// to the registry plane.
    pub fn to_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.add("cases", 0);
        reg.add("passed", 0);
        reg.add("imprecise_detections", 0);
        for fam in Family::ALL {
            reg.add(&format!("family.{}.cases", fam.key()), 0);
            reg.add(&format!("family.{}.passed", fam.key()), 0);
        }
        for r in &self.reports {
            reg.incr("cases");
            reg.add("passed", u64::from(r.passed()));
            reg.add("imprecise_detections", r.imprecise_detections);
            reg.incr(&format!("family.{}.cases", r.family.key()));
            reg.add(
                &format!("family.{}.passed", r.family.key()),
                u64::from(r.passed()),
            );
        }
        reg.put("all_passed", Json::from(self.all_passed()));
        reg
    }
}

impl ToJson for CorpusSummary {
    fn to_json(&self) -> Json {
        self.to_registry().to_json()
    }
}

/// Runs every corpus test under {PC, WC} × {no faults, all faulting,
/// first location faulting}, on [`ise_par::worker_count`] workers (the
/// `ISE_WORKERS` environment variable overrides the machine default).
pub fn run_corpus(tests: &[LitmusTest]) -> CorpusSummary {
    run_corpus_with_workers(tests, ise_par::worker_count())
}

/// [`run_corpus`] with an explicit worker count.
///
/// Each (test, model, fault-mode) case is an independent exploration, so
/// the frontier hands one case to each worker; results are reduced in
/// case-insertion order, making the summary identical — report for
/// report — to a sequential (`workers == 1`) run.
pub fn run_corpus_with_workers(tests: &[LitmusTest], workers: usize) -> CorpusSummary {
    let mut cases = Vec::with_capacity(tests.len() * 6);
    for test in tests {
        for model in [ConsistencyModel::Pc, ConsistencyModel::Wc] {
            for mode in FaultMode::ALL {
                cases.push((test, model, mode));
            }
        }
    }
    let reports = ise_par::par_map(&cases, workers, |_, &(test, model, mode)| {
        run_test_with_policy(test, model, mode, DrainPolicy::SameStream)
    });
    CorpusSummary { reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;

    #[test]
    fn whole_corpus_passes_under_pc_and_wc_with_and_without_faults() {
        let summary = run_corpus(&corpus());
        let failures: Vec<String> = summary
            .reports
            .iter()
            .filter(|r| !r.passed())
            .map(|r| r.to_string())
            .collect();
        assert!(
            failures.is_empty(),
            "{} of {} cases violated the model:\n{}",
            failures.len(),
            summary.cases(),
            failures.join("\n")
        );
        // The faulted half of the campaign must actually exercise the
        // imprecise machinery.
        assert!(summary.imprecise_detections() > 0);
    }

    #[test]
    fn corpus_observes_nontrivial_behaviour() {
        let summary = run_corpus(&corpus());
        for r in &summary.reports {
            assert!(
                !r.observed.is_empty() || r.allowed.len() == 1,
                "{}: no outcomes observed",
                r.name
            );
        }
    }

    #[test]
    fn split_stream_ablation_fails_somewhere_under_pc() {
        // The split-stream policy with partial faulting admits PC
        // violations (Fig. 2a). Build the witness configuration directly.
        use ise_consistency::program::{LitmusProgram, Loc, Stmt};
        use ise_types::instr::Reg;
        let test = LitmusTest {
            name: "ablation/fig2a".into(),
            family: Family::ExternalReadFrom,
            program: LitmusProgram::new(vec![
                vec![Stmt::write(Loc(0), 1), Stmt::write(Loc(1), 1)],
                vec![Stmt::read(Loc(1), Reg(0)), Stmt::read(Loc(0), Reg(1))],
            ]),
        };
        // Only location A faulting.
        let mut cfg =
            MachineConfig::baseline(ConsistencyModel::Pc).with_policy(DrainPolicy::SplitStream);
        cfg.faulting = [Loc(0)].into_iter().collect();
        let result = explore(&test.program, &cfg);
        let allowed = allowed_outcomes(&test.program, ConsistencyModel::Pc);
        assert!(
            !result.outcomes.is_subset(&allowed),
            "split-stream should exhibit a PC violation"
        );
        // And the same-stream design on the identical setup passes.
        let cfg2 = MachineConfig {
            policy: DrainPolicy::SameStream,
            ..cfg
        };
        let result2 = explore(&test.program, &cfg2);
        assert!(result2.outcomes.is_subset(&allowed));
    }

    #[test]
    fn by_family_covers_all_eight() {
        let summary = run_corpus(&corpus());
        let fams = summary.by_family();
        assert_eq!(fams.len(), 8);
        for (fam, cases, passed) in fams {
            assert!(cases > 0, "{fam} has no cases");
            assert_eq!(cases, passed, "{fam} has failures");
        }
    }

    #[test]
    fn registry_matches_by_family_and_is_worker_invariant() {
        let tests = corpus();
        let sequential = run_corpus_with_workers(&tests, 1);
        let sharded = run_corpus_with_workers(&tests, 4);
        assert_eq!(
            sequential.to_registry().render(),
            sharded.to_registry().render(),
            "registry rendering must not depend on the worker count"
        );
        let reg = sequential.to_registry();
        assert_eq!(reg.counter("cases"), sequential.cases() as u64);
        assert_eq!(reg.counter("passed"), sequential.passed() as u64);
        for (fam, cases, passed) in sequential.by_family() {
            assert_eq!(
                reg.counter(&format!("family.{}.cases", fam.key())),
                cases as u64
            );
            assert_eq!(
                reg.counter(&format!("family.{}.passed", fam.key())),
                passed as u64
            );
        }
        assert_eq!(
            sequential.to_json().render(),
            reg.to_json().render(),
            "ToJson delegates to the registry"
        );
    }
}
