//! A text format for litmus tests (a compact, herd-inspired dialect).
//!
//! ```text
//! # comment
//! name: MP+fence+fence
//! family: barriers
//! P0: W B 1 ; F ; W A 1
//! P1: R A r0 ; F ; R B r1
//! forbid: 1:r0=1 & 1:r1=0
//! ```
//!
//! * Locations are single letters `A`..`H` ([`Loc::LIMIT`] of them —
//!   the count the machine and the sim bridge support); registers are
//!   `r0`..`r31`.
//! * Statements: `W <loc> <value>`, `R <loc> <reg>`,
//!   `AMO <loc> <add> <reg>`, `F` (full fence), `F.ww`, `F.rr`.
//!   Append `@<reg>` to make a statement dependency-ordered after the
//!   load producing `<reg>` (e.g. `R B r1 @r0`).
//! * `forbid:` lines (zero or more) list outcomes the author expects the
//!   model to forbid; the runner additionally checks them against the
//!   axiomatic allowed set.
//!
//! The parser exists so users can keep corpora as plain files and run
//! them with `cargo run -p ise-bench --bin litmus -- <file>`.
//! [`render_litmus`] is its inverse: it pretty-prints a parsed test back
//! into the dialect, and `parse(render(parse(src)))` round-trips to an
//! equal test.

use crate::corpus::{Family, LitmusTest};
use ise_consistency::program::{LitmusProgram, Loc, Outcome, Stmt, StmtOp};
use ise_types::instr::{FenceKind, Reg};
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed test: the program plus author-declared forbidden outcomes.
#[derive(Debug, Clone)]
pub struct ParsedLitmus {
    /// The test (name, family, program).
    pub test: LitmusTest,
    /// Outcomes the author expects to be forbidden.
    pub forbidden: Vec<Outcome>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// The highest location letter the dialect names (`H` for
/// [`Loc::LIMIT`] of 8).
fn loc_limit_letter() -> char {
    (b'A' + Loc::LIMIT - 1) as char
}

fn parse_loc(tok: &str, line: usize) -> Result<Loc, ParseError> {
    let mut chars = tok.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if c.is_ascii_uppercase() => {
            let loc = Loc(c as u8 - b'A');
            if loc.0 < Loc::LIMIT {
                Ok(loc)
            } else {
                Err(err(
                    line,
                    format!(
                        "location `{c}` is out of range: the machine supports {} locations \
                         (A..{})",
                        Loc::LIMIT,
                        loc_limit_letter()
                    ),
                ))
            }
        }
        _ => Err(err(
            line,
            format!("expected a location A..{}, got `{tok}`", loc_limit_letter()),
        )),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .map(Reg)
        .ok_or_else(|| err(line, format!("expected a register r0..r31, got `{tok}`")))
}

fn parse_value(tok: &str, line: usize) -> Result<u64, ParseError> {
    tok.parse::<u64>()
        .map_err(|_| err(line, format!("expected a value, got `{tok}`")))
}

fn parse_stmt(text: &str, line: usize) -> Result<Stmt, ParseError> {
    // Split off a trailing dependency annotation `@rN`.
    let (body, dep) = match text.rsplit_once('@') {
        Some((body, dep_tok)) => (body.trim(), Some(parse_reg(dep_tok.trim(), line)?)),
        None => (text.trim(), None),
    };
    let toks: Vec<&str> = body.split_whitespace().collect();
    let mut stmt = match toks.as_slice() {
        ["W", loc, value] => Stmt::write(parse_loc(loc, line)?, parse_value(value, line)?),
        ["R", loc, reg] => Stmt::read(parse_loc(loc, line)?, parse_reg(reg, line)?),
        ["AMO", loc, add, reg] => Stmt::amo(
            parse_loc(loc, line)?,
            parse_value(add, line)?,
            parse_reg(reg, line)?,
        ),
        ["F"] => Stmt::fence(FenceKind::Full),
        ["F.ww"] => Stmt::fence(FenceKind::StoreStore),
        ["F.rr"] => Stmt::fence(FenceKind::LoadLoad),
        _ => return Err(err(line, format!("unrecognized statement `{body}`"))),
    };
    if let Some(r) = dep {
        stmt = stmt.depending_on(r);
    }
    Ok(stmt)
}

fn parse_family(tok: &str, line: usize) -> Result<Family, ParseError> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "dependencies" | "dep" => Ok(Family::Dependencies),
        "po-same-location" | "poloc" => Ok(Family::PoSameLocation),
        "preserved-po" | "ppo" => Ok(Family::PreservedPo),
        "external-read-from" | "erf" => Ok(Family::ExternalReadFrom),
        "internal-read-from" | "irf" => Ok(Family::InternalReadFrom),
        "coherence" | "co" => Ok(Family::CoherenceOrder),
        "from-read" | "fr" => Ok(Family::FromRead),
        "barriers" | "barrier" => Ok(Family::Barriers),
        other => Err(err(line, format!("unknown family `{other}`"))),
    }
}

fn parse_outcome(text: &str, line: usize) -> Result<Outcome, ParseError> {
    let mut outcome = Outcome::new();
    for clause in text.split('&') {
        let clause = clause.trim();
        let (lhs, value) = clause
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `<t>:<reg>=<v>`, got `{clause}`")))?;
        let (thread, reg) = lhs
            .split_once(':')
            .ok_or_else(|| err(line, format!("expected `<t>:<reg>`, got `{lhs}`")))?;
        let t: usize = thread
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad thread id `{thread}`")))?;
        let r = parse_reg(reg.trim(), line)?;
        let v = parse_value(value.trim(), line)?;
        outcome.insert((t, r), v);
    }
    if outcome.is_empty() {
        return Err(err(line, "empty outcome"));
    }
    Ok(outcome)
}

/// Parses one litmus test from its text form.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_litmus(src: &str) -> Result<ParsedLitmus, ParseError> {
    let mut name: Option<String> = None;
    let mut family = Family::ExternalReadFrom;
    let mut threads: Vec<(usize, Vec<Stmt>)> = Vec::new();
    let mut forbidden = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `key: value`"))?;
        let key = key.trim();
        let rest = rest.trim();
        match key {
            "name" => name = Some(rest.to_string()),
            "family" => family = parse_family(rest, lineno)?,
            "forbid" => forbidden.push(parse_outcome(rest, lineno)?),
            k if k.starts_with('P') => {
                let tid: usize = k[1..]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad thread label `{k}`")))?;
                let stmts = rest
                    .split(';')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_stmt(s, lineno))
                    .collect::<Result<Vec<_>, _>>()?;
                if stmts.is_empty() {
                    return Err(err(lineno, "thread with no statements"));
                }
                threads.push((tid, stmts));
            }
            other => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }

    if threads.is_empty() {
        return Err(err(0, "no threads (P0:, P1:, ...) found"));
    }
    threads.sort_by_key(|&(tid, _)| tid);
    for (expect, &(tid, _)) in threads.iter().enumerate() {
        if tid != expect {
            return Err(err(
                0,
                format!("thread ids must be dense from P0; missing P{expect}"),
            ));
        }
    }
    let program = LitmusProgram::new(threads.into_iter().map(|(_, s)| s).collect());
    Ok(ParsedLitmus {
        test: LitmusTest {
            name: name.unwrap_or_else(|| "anonymous".into()),
            family,
            program,
        },
        forbidden,
    })
}

/// The canonical token for a family — the form [`render_litmus`] emits
/// and [`parse_litmus`] accepts.
fn family_token(family: Family) -> &'static str {
    match family {
        Family::Dependencies => "dep",
        Family::PoSameLocation => "poloc",
        Family::PreservedPo => "ppo",
        Family::ExternalReadFrom => "erf",
        Family::InternalReadFrom => "irf",
        Family::CoherenceOrder => "co",
        Family::FromRead => "fr",
        Family::Barriers => "barrier",
    }
}

fn render_stmt(s: &Stmt, out: &mut String) {
    use std::fmt::Write;
    let loc_name = |loc: Loc| {
        assert!(
            loc.0 < Loc::LIMIT,
            "the litmus dialect only names locations A..{}",
            loc_limit_letter()
        );
        (b'A' + loc.0) as char
    };
    match s.op {
        StmtOp::Write { loc, value } => write!(out, "W {} {value}", loc_name(loc)).unwrap(),
        StmtOp::Read { loc, dst } => write!(out, "R {} {dst}", loc_name(loc)).unwrap(),
        StmtOp::Amo { loc, add, dst } => write!(out, "AMO {} {add} {dst}", loc_name(loc)).unwrap(),
        StmtOp::Fence(FenceKind::Full) => out.push('F'),
        StmtOp::Fence(FenceKind::StoreStore) => out.push_str("F.ww"),
        StmtOp::Fence(FenceKind::LoadLoad) => out.push_str("F.rr"),
    }
    if let Some(r) = s.dep {
        use std::fmt::Write;
        write!(out, " @{r}").unwrap();
    }
}

/// Pretty-prints a parsed test back into the text dialect.
///
/// The output is canonical (one `P<t>:` line per thread, statements
/// joined by ` ; `, one `forbid:` line per outcome) and re-parses to a
/// test equal to the input — the round-trip property
/// `parse(render(p)) == p` the parser tests enforce.
///
/// # Panics
///
/// Panics if the program uses a location at or beyond [`Loc::LIMIT`],
/// which the text dialect cannot name (and the machine does not
/// support).
pub fn render_litmus(p: &ParsedLitmus) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "name: {}", p.test.name).unwrap();
    writeln!(out, "family: {}", family_token(p.test.family)).unwrap();
    for (t, stmts) in p.test.program.threads.iter().enumerate() {
        write!(out, "P{t}:").unwrap();
        for (i, s) in stmts.iter().enumerate() {
            out.push_str(if i == 0 { " " } else { " ; " });
            render_stmt(s, &mut out);
        }
        out.push('\n');
    }
    for f in &p.forbidden {
        let clauses: Vec<String> = f.iter().map(|((t, r), v)| format!("{t}:{r}={v}")).collect();
        writeln!(out, "forbid: {}", clauses.join(" & ")).unwrap();
    }
    out
}

/// Parses every `*.litmus` file directly inside `dir`, sorted by file
/// name — how the regression corpus under `litmus/regressions/` is
/// loaded for replay. A missing directory is an empty corpus (the
/// fuzzer may simply not have written any reproducers yet).
///
/// # Errors
///
/// Returns a message naming the unreadable or unparseable file.
pub fn load_litmus_dir(dir: &std::path::Path) -> Result<Vec<(String, ParsedLitmus)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut files: Vec<std::path::PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    files.retain(|p| p.extension().is_some_and(|x| x == "litmus"));
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let parsed = parse_litmus(&src).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok((name, parsed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_test;
    use ise_types::ConsistencyModel;

    const MP: &str = r#"
# Fig. 1 of the paper.
name: MP+fence+fence
family: barriers
P0: W B 1 ; F ; W A 1
P1: R A r0 ; F ; R B r1
forbid: 1:r0=1 & 1:r1=0
"#;

    #[test]
    fn parses_the_mp_test() {
        let p = parse_litmus(MP).expect("parses");
        assert_eq!(p.test.name, "MP+fence+fence");
        assert_eq!(p.test.family, Family::Barriers);
        assert_eq!(p.test.program.threads.len(), 2);
        assert_eq!(p.test.program.threads[0].len(), 3);
        assert_eq!(p.forbidden.len(), 1);
        let f = &p.forbidden[0];
        assert_eq!(f.get(&(1, Reg(0))), Some(&1));
        assert_eq!(f.get(&(1, Reg(1))), Some(&0));
    }

    #[test]
    fn parsed_test_runs_and_respects_forbid() {
        let p = parse_litmus(MP).unwrap();
        for inject in [false, true] {
            let report = run_test(&p.test, ConsistencyModel::Pc, inject);
            assert!(report.passed());
            for f in &p.forbidden {
                assert!(!report.observed.contains(f), "forbidden outcome observed");
                assert!(!report.allowed.contains(f), "model should forbid it too");
            }
        }
    }

    #[test]
    fn dependency_annotation_parses() {
        let src = "P0: R A r0 ; R B r1 @r0";
        let p = parse_litmus(src).unwrap();
        assert_eq!(p.test.program.threads[0][1].dep, Some(Reg(0)));
    }

    #[test]
    fn amo_and_fence_variants_parse() {
        let src = "P0: AMO A 1 r0 ; F.ww ; F.rr ; W B 2";
        let p = parse_litmus(src).unwrap();
        assert_eq!(p.test.program.threads[0].len(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "name: x\nP0: W A\n";
        let e = parse_litmus(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unrecognized statement"));

        let bad2 = "P0: W A 1\nforbid: nonsense\n";
        assert_eq!(parse_litmus(bad2).unwrap_err().line, 2);
    }

    #[test]
    fn sparse_thread_ids_rejected() {
        let bad = "P0: W A 1\nP2: R A r0\n";
        let e = parse_litmus(bad).unwrap_err();
        assert!(e.message.contains("missing P1"));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_litmus("# nothing\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# c1\nname: t\n\n# c2\nP0: W A 1\n";
        assert!(parse_litmus(src).is_ok());
    }

    #[test]
    fn render_round_trips_every_construct() {
        let src = "name: kitchen-sink\nfamily: dep\n\
                   P0: W A 1 ; F ; F.ww ; F.rr ; AMO B 2 r1\n\
                   P1: R A r0 ; R B r2 @r0\n\
                   forbid: 1:r0=1 & 1:r2=0\nforbid: 0:r1=7\n";
        let first = parse_litmus(src).expect("parses");
        let rendered = render_litmus(&first);
        let second = parse_litmus(&rendered)
            .unwrap_or_else(|e| panic!("rendered text must re-parse: {e}\n{rendered}"));
        assert_eq!(first.test, second.test);
        assert_eq!(first.forbidden, second.forbidden);
        // And the rendering is canonical: a second round trip is a
        // fixed point.
        assert_eq!(rendered, render_litmus(&second));
    }

    #[test]
    fn locations_beyond_the_machine_limit_are_rejected() {
        // `I` is the first letter past Loc::LIMIT = 8; `Z` used to
        // parse to Loc(25) even though nothing downstream supports it.
        for bad in ["P0: W I 1", "P0: R Z r0", "P0: AMO Q 1 r0"] {
            let e = parse_litmus(bad).unwrap_err();
            assert!(
                e.message.contains("out of range"),
                "`{bad}` must be rejected as out of range, got: {}",
                e.message
            );
            assert!(e.message.contains("A..H"), "got: {}", e.message);
        }
    }

    #[test]
    fn every_supported_location_letter_parses() {
        for (i, c) in ('A'..='H').enumerate() {
            let src = format!("P0: W {c} 1");
            let p = parse_litmus(&src).unwrap_or_else(|e| panic!("{c}: {e}"));
            assert_eq!(p.test.program.locations(), vec![Loc(i as u8)]);
        }
    }

    #[test]
    #[should_panic(expected = "only names locations A..H")]
    fn rendering_an_out_of_range_location_panics() {
        let p = ParsedLitmus {
            test: LitmusTest {
                name: "bad".into(),
                family: Family::Barriers,
                program: LitmusProgram::new(vec![vec![Stmt::write(Loc(Loc::LIMIT), 1)]]),
            },
            forbidden: Vec::new(),
        };
        let _ = render_litmus(&p);
    }

    #[test]
    fn load_litmus_dir_of_missing_directory_is_empty() {
        let loaded = load_litmus_dir(std::path::Path::new("/nonexistent/fuzz-regressions"))
            .expect("missing dir is an empty corpus");
        assert!(loaded.is_empty());
    }

    #[test]
    fn every_family_token_round_trips() {
        for fam in Family::ALL {
            let src = format!("family: {}\nP0: W A 1\n", family_token(fam));
            assert_eq!(parse_litmus(&src).unwrap().test.family, fam);
        }
    }
}
