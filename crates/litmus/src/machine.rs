//! The operational machine: exhaustive interleaving exploration of the
//! store-buffer + FSB + EInject + OS pipeline.

use ise_consistency::program::{LitmusProgram, Loc, Outcome, StmtOp};
use ise_types::instr::{FenceKind, Reg};
use ise_types::model::{ConsistencyModel, DrainPolicy};
use std::collections::{BTreeSet, HashSet};

/// A deliberate, opt-in machine mutation for fuzzer self-tests.
///
/// The differential harness in `ise-fuzz` proves it can actually catch
/// ordering bugs by seeding one of these (mutation-testing style,
/// DESIGN.md §12): the mutated machine exhibits outcomes the axiomatic
/// model forbids, the tri-oracle flags them, and the shrinker reduces
/// the witness to a minimal reproducer. Production paths never set
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// PC drains its store buffer like WC: any entry with no older
    /// same-location entry may complete, instead of the FIFO head only
    /// — breaking the store-store rule Proof 1 protects.
    PcDrainReorder,
    /// `F.ww` fences retire without waiting for the store buffer to
    /// drain, silently losing the W→W edge they exist to enforce.
    FenceIgnoresStoreBuffer,
}

/// How the machine is configured for one exploration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Consistency model the cores implement (SC disables the store
    /// buffer entirely).
    pub model: ConsistencyModel,
    /// Same-stream (§4.6) or split-stream (§4.5) FSB drain policy.
    pub policy: DrainPolicy,
    /// Locations whose backing pages start out marked faulting in
    /// EInject.
    pub faulting: BTreeSet<Loc>,
    /// Safety valve on the state-space size.
    pub max_states: usize,
    /// Seen-state memoization: prune subtrees rooted at states already
    /// expanded, making exploration proportional to distinct states
    /// rather than paths. Disabling it (differential/property tests,
    /// the `explore_scaling` bench baseline) re-walks every path but
    /// must produce the identical [`ExplorationResult`].
    pub memoize: bool,
    /// Opt-in mutation for fuzzer self-tests; `None` (always, outside
    /// those tests) runs the faithful machine.
    pub seeded_bug: Option<SeededBug>,
}

impl MachineConfig {
    /// The paper's design under `model`: same-stream drains, no faults.
    pub fn baseline(model: ConsistencyModel) -> Self {
        MachineConfig {
            model,
            policy: DrainPolicy::SameStream,
            faulting: BTreeSet::new(),
            max_states: 1 << 22,
            memoize: true,
            seeded_bug: None,
        }
    }

    /// Marks every location the program touches as initially faulting —
    /// how the litmus campaign runs (§6.3: "mark the allocated memory as
    /// faulting ... to inject bus errors on all load, store, and atomic
    /// instructions").
    pub fn with_all_faulting(mut self, prog: &LitmusProgram) -> Self {
        self.faulting = prog.locations().into_iter().collect();
        self
    }

    /// Switches to the split-stream ablation.
    pub fn with_policy(mut self, policy: DrainPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables seen-state memoization.
    pub fn with_memoize(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Seeds a deliberate bug (fuzzer self-tests only).
    pub fn with_seeded_bug(mut self, bug: SeededBug) -> Self {
        self.seeded_bug = Some(bug);
        self
    }
}

/// What one exploration produced.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// Every reachable final outcome.
    pub outcomes: BTreeSet<Outcome>,
    /// Distinct states visited.
    pub states: usize,
    /// Imprecise store exceptions taken across all explored paths.
    pub imprecise_detections: u64,
    /// Precise (load/atomic/SC-store) exceptions taken across all paths.
    pub precise_exceptions: u64,
    /// For each location (in [`LitmusProgram::locations`] order) every
    /// value memory holds at that location in some reachable state —
    /// the value-plane envelope the sim bridge checks final
    /// flat-memory contents against. Collected on first expansion of
    /// each distinct state, so memoized and bare runs agree.
    pub mem_values: Vec<BTreeSet<u64>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    W { loc: u8, val: u64 },
    R { loc: u8, dst: u8 },
    F(FenceKind),
    A { loc: u8, add: u64, dst: u8 },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CoreSt {
    pc: u16,
    regs: Vec<u64>,
    /// Retired-but-incomplete stores, oldest first.
    sb: Vec<(u8, u64)>,
    /// Faulting Store Buffer contents, oldest first.
    fsb: Vec<(u8, u64)>,
    /// Whether an imprecise exception is pending (fetch stopped).
    faulted: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    cores: Vec<CoreSt>,
    mem: Vec<u64>,
    faulting: Vec<bool>,
}

/// A canonical, injective encoding of a [`State`] — the seen-state key.
///
/// Within one exploration the core count, register-file width, memory
/// size, and faulting-vector length are fixed, so every field below is
/// either fixed-width or (for the variable-length SB/FSB) explicitly
/// length-prefixed. That makes decoding unambiguous, hence the encoding
/// injective: two states collide iff they are the same observable state
/// (DESIGN.md §9). Keying the visited set on this flat byte string
/// instead of the nested `State` both shrinks the memoization table and
/// makes hashing a single pass over contiguous memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonKey(Box<[u8]>);

fn canonicalize(s: &State) -> CanonKey {
    let mut buf = Vec::with_capacity(
        s.cores
            .iter()
            .map(|c| 7 + 8 * c.regs.len() + 9 * (c.sb.len() + c.fsb.len()))
            .sum::<usize>()
            + 8 * s.mem.len()
            + s.faulting.len(),
    );
    let push_entries = |buf: &mut Vec<u8>, entries: &[(u8, u64)]| {
        buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
        for &(loc, val) in entries {
            buf.push(loc);
            buf.extend_from_slice(&val.to_le_bytes());
        }
    };
    for c in &s.cores {
        buf.extend_from_slice(&c.pc.to_le_bytes());
        buf.push(c.faulted as u8);
        for &r in &c.regs {
            buf.extend_from_slice(&r.to_le_bytes());
        }
        push_entries(&mut buf, &c.sb);
        push_entries(&mut buf, &c.fsb);
    }
    for &m in &s.mem {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    for &f in &s.faulting {
        buf.push(f as u8);
    }
    CanonKey(buf.into_boxed_slice())
}

struct Compiled {
    threads: Vec<Vec<Op>>,
    locs: Vec<Loc>,
    read_regs: Vec<(usize, Reg)>,
}

fn compile(prog: &LitmusProgram) -> Compiled {
    let locs = prog.locations();
    let loc_idx = |l: Loc| locs.iter().position(|&x| x == l).expect("known loc") as u8;
    let mut read_regs = Vec::new();
    let threads = prog
        .threads
        .iter()
        .enumerate()
        .map(|(t, stmts)| {
            stmts
                .iter()
                .map(|s| match s.op {
                    StmtOp::Write { loc, value } => Op::W {
                        loc: loc_idx(loc),
                        val: value,
                    },
                    StmtOp::Read { loc, dst } => {
                        read_regs.push((t, dst));
                        Op::R {
                            loc: loc_idx(loc),
                            dst: dst.0,
                        }
                    }
                    StmtOp::Fence(k) => Op::F(k),
                    StmtOp::Amo { loc, add, dst } => {
                        read_regs.push((t, dst));
                        Op::A {
                            loc: loc_idx(loc),
                            add,
                            dst: dst.0,
                        }
                    }
                })
                .collect()
        })
        .collect();
    read_regs.sort_unstable_by_key(|&(t, r)| (t, r.0));
    read_regs.dedup();
    Compiled {
        threads,
        locs,
        read_regs,
    }
}

struct Explorer<'a> {
    compiled: &'a Compiled,
    cfg: &'a MachineConfig,
    /// States already *expanded*, by canonical key. In a memoized run
    /// reaching a visited state prunes its whole subtree; in an
    /// unmemoized run the subtree is re-walked, but the set still
    /// gates the exception counters so both modes report the same
    /// graph properties (DESIGN.md §9).
    visited: HashSet<CanonKey>,
    outcomes: BTreeSet<Outcome>,
    imprecise: u64,
    precise: u64,
    /// Per-location values seen in memory across distinct states
    /// (collected on first expansion, like the exception counters).
    mem_values: Vec<BTreeSet<u64>>,
}

impl<'a> Explorer<'a> {
    fn terminal(&self, s: &State) -> bool {
        s.cores.iter().enumerate().all(|(i, c)| {
            c.pc as usize == self.compiled.threads[i].len()
                && c.sb.is_empty()
                && c.fsb.is_empty()
                && !c.faulted
        })
    }

    fn record_outcome(&mut self, s: &State) {
        let mut o = Outcome::new();
        for &(t, r) in &self.compiled.read_regs {
            o.insert((t, r), s.cores[t].regs[r.0 as usize]);
        }
        self.outcomes.insert(o);
    }

    /// Indices of store-buffer entries eligible to drain: the head under
    /// PC (FIFO visibility), any entry with no older same-location entry
    /// under WC (same-address order is always kept).
    fn drainable(&self, sb: &[(u8, u64)]) -> Vec<usize> {
        if sb.is_empty() {
            return Vec::new();
        }
        let relaxed = || {
            (0..sb.len())
                .filter(|&j| sb[..j].iter().all(|&(l, _)| l != sb[j].0))
                .collect()
        };
        match self.cfg.model {
            ConsistencyModel::Sc => Vec::new(),
            ConsistencyModel::Pc => {
                if self.cfg.seeded_bug == Some(SeededBug::PcDrainReorder) {
                    // Mutation: PC forgets its FIFO and drains like WC.
                    relaxed()
                } else {
                    vec![0]
                }
            }
            ConsistencyModel::Wc => relaxed(),
        }
    }

    /// Enumerates every enabled transition out of `s`. The exception
    /// counters are graph properties (one event per distinct-state
    /// transition), so they only advance when `count` is set — the
    /// first time `s` is expanded.
    fn successors(&mut self, s: &State, count: bool) -> Vec<State> {
        let mut out = Vec::new();
        for i in 0..s.cores.len() {
            let core = &s.cores[i];

            // --- Drain transitions (enabled in both phases). ---
            for j in self.drainable(&core.sb) {
                let (loc, val) = core.sb[j];
                let mut n = s.clone();
                if n.faulting[loc as usize] {
                    // DETECT: imprecise store exception.
                    self.imprecise += count as u64;
                    let c = &mut n.cores[i];
                    match self.cfg.policy {
                        DrainPolicy::SameStream => {
                            // The whole buffer, faulting and younger
                            // non-faulting alike, moves to the FSB in
                            // order (§4.6).
                            let drained: Vec<_> = c.sb.drain(..).collect();
                            c.fsb.extend(drained);
                        }
                        DrainPolicy::SplitStream => {
                            // Only the faulting store is supplied to the
                            // interface; the rest keep draining to
                            // memory (§4.5).
                            let e = c.sb.remove(j);
                            c.fsb.push(e);
                        }
                    }
                    c.faulted = true;
                } else {
                    n.mem[loc as usize] = val;
                    n.cores[i].sb.remove(j);
                }
                out.push(n);
            }

            if core.faulted {
                // --- OS handler micro-steps (only once the SB has fully
                //     drained: the handler is entered after the drain
                //     completes, §5.3). ---
                if core.sb.is_empty() {
                    if let Some(&(loc, val)) = core.fsb.first() {
                        // GET + resolve-cause + S_OS for one entry.
                        let mut n = s.clone();
                        n.faulting[loc as usize] = false;
                        n.mem[loc as usize] = val;
                        n.cores[i].fsb.remove(0);
                        out.push(n);
                    } else {
                        // RESOLVE: resume the program.
                        let mut n = s.clone();
                        n.cores[i].faulted = false;
                        out.push(n);
                    }
                }
                continue; // fetch is stopped while faulted
            }

            // --- Program-order execution. ---
            let ops = &self.compiled.threads[i];
            if (core.pc as usize) < ops.len() {
                match ops[core.pc as usize] {
                    Op::W { loc, val } => {
                        if self.cfg.model.has_store_buffer() {
                            let mut n = s.clone();
                            let c = &mut n.cores[i];
                            c.sb.push((loc, val));
                            c.pc += 1;
                            out.push(n);
                        } else {
                            // SC: write-through; a faulting page raises a
                            // precise exception, resolved before the
                            // store re-executes.
                            let mut n = s.clone();
                            if n.faulting[loc as usize] {
                                self.precise += count as u64;
                                n.faulting[loc as usize] = false;
                            }
                            n.mem[loc as usize] = val;
                            n.cores[i].pc += 1;
                            out.push(n);
                        }
                    }
                    Op::R { loc, dst } => {
                        // Store-to-load forwarding from the newest
                        // same-location SB entry never reaches memory.
                        let fwd = core
                            .sb
                            .iter()
                            .rev()
                            .find(|&&(l, _)| l == loc)
                            .map(|&(_, v)| v);
                        match fwd {
                            Some(v) => {
                                let mut n = s.clone();
                                let c = &mut n.cores[i];
                                c.regs[dst as usize] = v;
                                c.pc += 1;
                                out.push(n);
                            }
                            None => {
                                if s.faulting[loc as usize] {
                                    // Precise exception: the store buffer
                                    // must drain first (§5.3); until then
                                    // this transition is not enabled.
                                    if core.sb.is_empty() {
                                        self.precise += count as u64;
                                        let mut n = s.clone();
                                        n.faulting[loc as usize] = false;
                                        let v = n.mem[loc as usize];
                                        let c = &mut n.cores[i];
                                        c.regs[dst as usize] = v;
                                        c.pc += 1;
                                        out.push(n);
                                    }
                                } else {
                                    let mut n = s.clone();
                                    let v = n.mem[loc as usize];
                                    let c = &mut n.cores[i];
                                    c.regs[dst as usize] = v;
                                    c.pc += 1;
                                    out.push(n);
                                }
                            }
                        }
                    }
                    Op::F(kind) => {
                        let needs_empty = match kind {
                            FenceKind::StoreStore
                                if self.cfg.seeded_bug
                                    == Some(SeededBug::FenceIgnoresStoreBuffer) =>
                            {
                                // Mutation: the W→W fence stops fencing.
                                false
                            }
                            FenceKind::Full | FenceKind::StoreStore => !core.sb.is_empty(),
                            FenceKind::LoadLoad => false,
                        };
                        if !needs_empty {
                            let mut n = s.clone();
                            n.cores[i].pc += 1;
                            out.push(n);
                        }
                    }
                    Op::A { loc, add, dst } => {
                        // Atomics drain the SB first, then execute
                        // non-speculatively; a fault is precise.
                        if core.sb.is_empty() {
                            let mut n = s.clone();
                            if n.faulting[loc as usize] {
                                self.precise += count as u64;
                                n.faulting[loc as usize] = false;
                            }
                            let old = n.mem[loc as usize];
                            n.mem[loc as usize] = old.wrapping_add(add);
                            let c = &mut n.cores[i];
                            c.regs[dst as usize] = old;
                            c.pc += 1;
                            out.push(n);
                        }
                    }
                }
            }
        }
        out
    }

    fn run(&mut self, init: State) {
        let mut stack = vec![init];
        while let Some(s) = stack.pop() {
            // First expansion of this state? (Injective key, so this is
            // exactly "first time this observable state is seen".)
            let fresh = self.visited.insert(canonicalize(&s));
            if fresh {
                for (i, &m) in s.mem.iter().enumerate() {
                    self.mem_values[i].insert(m);
                }
            }
            if self.cfg.memoize && !fresh {
                continue; // prune the revisited subtree
            }
            assert!(
                self.visited.len() <= self.cfg.max_states,
                "state space exceeded {} states",
                self.cfg.max_states
            );
            if self.terminal(&s) {
                self.record_outcome(&s);
                continue;
            }
            let succ = self.successors(&s, fresh);
            debug_assert!(
                !succ.is_empty() || self.terminal(&s),
                "non-terminal state with no successors (deadlock): {s:?}"
            );
            stack.extend(succ);
        }
    }
}

/// Exhaustively explores every interleaving of `prog` on the configured
/// machine and returns all reachable outcomes.
///
/// With `cfg.memoize` (the default) revisited states prune their
/// subtree, so the walk does work proportional to *distinct states*;
/// with it disabled every path is re-walked. Both modes return the
/// identical [`ExplorationResult`]: outcomes, distinct-state count, and
/// exception counters are all properties of the state graph, not of the
/// traversal (DESIGN.md §9).
///
/// # Panics
///
/// Panics if the state space exceeds `cfg.max_states`.
pub fn explore(prog: &LitmusProgram, cfg: &MachineConfig) -> ExplorationResult {
    let compiled = compile(prog);
    let max_reg = prog
        .threads
        .iter()
        .flatten()
        .filter_map(|s| match s.op {
            StmtOp::Read { dst, .. } | StmtOp::Amo { dst, .. } => Some(dst.0),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let init = State {
        cores: (0..prog.threads.len())
            .map(|_| CoreSt {
                pc: 0,
                regs: vec![0; max_reg as usize + 1],
                sb: Vec::new(),
                fsb: Vec::new(),
                faulted: false,
            })
            .collect(),
        mem: vec![0; compiled.locs.len()],
        faulting: compiled
            .locs
            .iter()
            .map(|l| cfg.faulting.contains(l))
            .collect(),
    };
    let mut ex = Explorer {
        compiled: &compiled,
        cfg,
        visited: HashSet::new(),
        outcomes: BTreeSet::new(),
        imprecise: 0,
        precise: 0,
        mem_values: vec![BTreeSet::new(); compiled.locs.len()],
    };
    ex.run(init);
    ExplorationResult {
        outcomes: ex.outcomes,
        states: ex.visited.len(),
        imprecise_detections: ex.imprecise,
        precise_exceptions: ex.precise,
        mem_values: ex.mem_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_consistency::program::Stmt;

    const A: Loc = Loc(0);
    const B: Loc = Loc(1);
    const R0: Reg = Reg(0);
    const R1: Reg = Reg(1);

    fn outcome(pairs: &[(usize, Reg, u64)]) -> Outcome {
        pairs.iter().map(|&(t, r, v)| ((t, r), v)).collect()
    }

    fn mp() -> LitmusProgram {
        LitmusProgram::new(vec![
            vec![Stmt::write(B, 1), Stmt::write(A, 1)],
            vec![Stmt::read(A, R0), Stmt::read(B, R1)],
        ])
    }

    #[test]
    fn pc_machine_preserves_mp_without_faults() {
        let r = explore(&mp(), &MachineConfig::baseline(ConsistencyModel::Pc));
        let bad = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(
            !r.outcomes.contains(&bad),
            "PC machine must not reorder stores"
        );
        assert!(r.outcomes.contains(&outcome(&[(1, R0, 1), (1, R1, 1)])));
        assert!(r.outcomes.contains(&outcome(&[(1, R0, 0), (1, R1, 0)])));
        assert_eq!(r.imprecise_detections, 0);
    }

    #[test]
    fn wc_machine_can_reorder_stores() {
        let r = explore(&mp(), &MachineConfig::baseline(ConsistencyModel::Wc));
        let reordered = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(
            r.outcomes.contains(&reordered),
            "WC drains out of order: the relaxed outcome must be reachable"
        );
    }

    #[test]
    fn pc_machine_with_faults_still_preserves_mp() {
        let cfg = MachineConfig::baseline(ConsistencyModel::Pc).with_all_faulting(&mp());
        let r = explore(&mp(), &cfg);
        let bad = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(
            !r.outcomes.contains(&bad),
            "same-stream imprecise handling must not break PC (Proof 1)"
        );
        assert!(r.imprecise_detections > 0, "faults must actually fire");
        assert!(r.precise_exceptions > 0, "loads fault precisely too");
    }

    #[test]
    fn split_stream_exhibits_fig2a_violation() {
        // Only A faulting, B clean: §4.5's race.
        let mut cfg =
            MachineConfig::baseline(ConsistencyModel::Pc).with_policy(DrainPolicy::SplitStream);
        cfg.faulting = [A].into_iter().collect();
        // Program: T0 stores A then B; T1 reads B then A (observer order
        // chosen to witness S(B) <m S_OS(A)).
        let prog = LitmusProgram::new(vec![
            vec![Stmt::write(A, 1), Stmt::write(B, 1)],
            vec![Stmt::read(B, R0), Stmt::read(A, R1)],
        ]);
        let r = explore(&prog, &cfg);
        let violation = outcome(&[(1, R0, 1), (1, R1, 0)]);
        assert!(
            r.outcomes.contains(&violation),
            "split-stream must expose the PC violation of Fig. 2a; got {:?}",
            r.outcomes
        );
        // Same-stream on the identical program forbids it.
        let cfg2 = MachineConfig {
            policy: DrainPolicy::SameStream,
            ..cfg
        };
        let r2 = explore(&prog, &cfg2);
        assert!(
            !r2.outcomes.contains(&violation),
            "same-stream must hide the violation (Fig. 2b)"
        );
    }

    #[test]
    fn sc_machine_is_sequentially_consistent() {
        // Dekker: r0 = r1 = 0 must be unreachable under SC.
        let prog = LitmusProgram::new(vec![
            vec![Stmt::write(A, 1), Stmt::read(B, R0)],
            vec![Stmt::write(B, 1), Stmt::read(A, R1)],
        ]);
        let r = explore(&prog, &MachineConfig::baseline(ConsistencyModel::Sc));
        assert!(!r.outcomes.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
    }

    #[test]
    fn pc_machine_allows_dekker_relaxation() {
        let prog = LitmusProgram::new(vec![
            vec![Stmt::write(A, 1), Stmt::read(B, R0)],
            vec![Stmt::write(B, 1), Stmt::read(A, R1)],
        ]);
        let r = explore(&prog, &MachineConfig::baseline(ConsistencyModel::Pc));
        assert!(r.outcomes.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
    }

    #[test]
    fn forwarding_works_even_on_faulting_pages() {
        // The core reads its own buffered store without touching memory,
        // so no exception fires for the forwarded load.
        let prog = LitmusProgram::new(vec![vec![Stmt::write(A, 7), Stmt::read(A, R0)]]);
        let cfg = MachineConfig::baseline(ConsistencyModel::Wc).with_all_faulting(&prog);
        let r = explore(&prog, &cfg);
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.outcomes.contains(&outcome(&[(0, R0, 7)])));
    }

    #[test]
    fn fence_blocks_until_drain() {
        let prog = LitmusProgram::new(vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(A, 1),
            ],
            vec![
                Stmt::read(A, R0),
                Stmt::fence(FenceKind::Full),
                Stmt::read(B, R1),
            ],
        ]);
        for model in [ConsistencyModel::Pc, ConsistencyModel::Wc] {
            for faults in [false, true] {
                let mut cfg = MachineConfig::baseline(model);
                if faults {
                    cfg = cfg.with_all_faulting(&prog);
                }
                let r = explore(&prog, &cfg);
                assert!(
                    !r.outcomes.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])),
                    "{model} faults={faults}: fenced MP must hold"
                );
            }
        }
    }

    #[test]
    fn atomics_are_atomic_under_faults() {
        let prog = LitmusProgram::new(vec![vec![Stmt::amo(A, 1, R0)], vec![Stmt::amo(A, 1, R1)]]);
        let cfg = MachineConfig::baseline(ConsistencyModel::Wc).with_all_faulting(&prog);
        let r = explore(&prog, &cfg);
        assert!(!r.outcomes.contains(&outcome(&[(0, R0, 0), (1, R1, 0)])));
        assert_eq!(r.outcomes.len(), 2);
    }

    #[test]
    fn mem_values_cover_every_store_value_and_the_initial_zero() {
        let r = explore(&mp(), &MachineConfig::baseline(ConsistencyModel::Wc));
        // locations() order: A then B; both hold 0 initially and 1 after
        // their store drains on some path.
        let expect: BTreeSet<u64> = [0, 1].into_iter().collect();
        assert_eq!(r.mem_values, vec![expect.clone(), expect]);
    }

    #[test]
    fn seeded_pc_drain_bug_reorders_mp_stores() {
        // The faithful PC machine forbids the MP relaxation; the seeded
        // mutation drains like WC and exhibits it — the signal the fuzz
        // harness' self-test relies on.
        let cfg = MachineConfig::baseline(ConsistencyModel::Pc)
            .with_seeded_bug(SeededBug::PcDrainReorder);
        let r = explore(&mp(), &cfg);
        assert!(r.outcomes.contains(&outcome(&[(1, R0, 1), (1, R1, 0)])));
    }

    #[test]
    fn seeded_fence_bug_breaks_ww_fences_only() {
        let prog = LitmusProgram::new(vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::StoreStore),
                Stmt::write(A, 1),
            ],
            vec![Stmt::read(A, R0), Stmt::read(B, R1)],
        ]);
        let bad = outcome(&[(1, R0, 1), (1, R1, 0)]);
        let faithful = explore(&prog, &MachineConfig::baseline(ConsistencyModel::Wc));
        assert!(!faithful.outcomes.contains(&bad));
        let mutated = explore(
            &prog,
            &MachineConfig::baseline(ConsistencyModel::Wc)
                .with_seeded_bug(SeededBug::FenceIgnoresStoreBuffer),
        );
        assert!(mutated.outcomes.contains(&bad), "F.ww must stop fencing");
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&mp(), &MachineConfig::baseline(ConsistencyModel::Wc));
        let b = explore(&mp(), &MachineConfig::baseline(ConsistencyModel::Wc));
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.states, b.states);
    }

    #[test]
    fn memoization_prunes_without_changing_results() {
        for model in [
            ConsistencyModel::Sc,
            ConsistencyModel::Pc,
            ConsistencyModel::Wc,
        ] {
            for faults in [false, true] {
                let mut cfg = MachineConfig::baseline(model);
                if faults {
                    cfg = cfg.with_all_faulting(&mp());
                }
                let memo = explore(&mp(), &cfg);
                let bare = explore(&mp(), &cfg.clone().with_memoize(false));
                assert_eq!(memo.outcomes, bare.outcomes, "{model} faults={faults}");
                assert_eq!(memo.states, bare.states, "{model} faults={faults}");
                assert_eq!(
                    memo.imprecise_detections, bare.imprecise_detections,
                    "{model} faults={faults}"
                );
                assert_eq!(
                    memo.precise_exceptions, bare.precise_exceptions,
                    "{model} faults={faults}"
                );
            }
        }
    }

    #[test]
    fn canonical_key_separates_sb_from_fsb() {
        // The length prefixes are load-bearing: a store sitting in the SB
        // is a different observable state from the same store already
        // supplied to the FSB, even though the flattened entry bytes are
        // identical.
        let core = |sb: Vec<(u8, u64)>, fsb: Vec<(u8, u64)>| CoreSt {
            pc: 1,
            regs: vec![0],
            sb,
            fsb,
            faulted: false,
        };
        let mk = |sb, fsb| State {
            cores: vec![core(sb, fsb)],
            mem: vec![0],
            faulting: vec![true],
        };
        let in_sb = mk(vec![(0, 7)], vec![]);
        let in_fsb = mk(vec![], vec![(0, 7)]);
        assert_ne!(canonicalize(&in_sb), canonicalize(&in_fsb));
    }

    /// A random but well-formed machine state over fixed dimensions
    /// (2 cores × 2 regs × 2 locations), the shape one mp/sb-sized
    /// exploration works in.
    fn random_state(g: &mut quickprop::Gen) -> State {
        let entry = |g: &mut quickprop::Gen| (g.range_u64(0, 2) as u8, g.range_u64(0, 3));
        let cores = (0..2)
            .map(|_| {
                let sb_len = g.range_usize(0, 3);
                let fsb_len = g.range_usize(0, 3);
                CoreSt {
                    pc: g.range_u64(0, 4) as u16,
                    regs: g.vec_of(2, |g| g.range_u64(0, 3)),
                    sb: g.vec_of(sb_len, entry),
                    fsb: g.vec_of(fsb_len, entry),
                    faulted: g.bool(),
                }
            })
            .collect();
        State {
            cores,
            mem: g.vec_of(2, |g| g.range_u64(0, 3)),
            faulting: g.vec_of(2, |g| g.bool()),
        }
    }

    #[test]
    fn prop_canonicalization_is_injective_on_observable_states() {
        quickprop::check(512, |g| {
            let a = random_state(g);
            // Half the cases compare against an equal state, half
            // against an independently drawn one.
            let b = if g.bool() { a.clone() } else { random_state(g) };
            assert_eq!(
                a == b,
                canonicalize(&a) == canonicalize(&b),
                "canonical keys must collide exactly on equal states:\n{a:?}\n{b:?}"
            );
        });
    }

    /// A random small program: 1–2 threads × 1–3 statements over two
    /// locations, all four statement kinds represented.
    fn random_program(g: &mut quickprop::Gen) -> LitmusProgram {
        let threads = g.range_usize(1, 3);
        let stmts = (0..threads)
            .map(|_| {
                let len = g.range_usize(1, 4);
                g.vec_of(len, |g| {
                    let loc = Loc(g.range_u64(0, 2) as u8);
                    match g.range_usize(0, 4) {
                        0 => Stmt::write(loc, g.range_u64(1, 4)),
                        1 => Stmt::read(loc, Reg(g.range_u64(0, 2) as u8)),
                        2 => Stmt::fence(*g.choose(&[
                            FenceKind::Full,
                            FenceKind::StoreStore,
                            FenceKind::LoadLoad,
                        ])),
                        _ => Stmt::amo(loc, g.range_u64(1, 3), Reg(g.range_u64(0, 2) as u8)),
                    }
                })
            })
            .collect();
        LitmusProgram::new(stmts)
    }

    #[test]
    fn prop_memoized_explore_matches_unmemoized_reference() {
        quickprop::check(96, |g| {
            let prog = random_program(g);
            let model = *g.choose(&[
                ConsistencyModel::Sc,
                ConsistencyModel::Pc,
                ConsistencyModel::Wc,
            ]);
            let policy = *g.choose(&[DrainPolicy::SameStream, DrainPolicy::SplitStream]);
            let mut cfg = MachineConfig::baseline(model).with_policy(policy);
            // A random subset of the touched locations starts faulting.
            cfg.faulting = prog.locations().into_iter().filter(|_| g.bool()).collect();
            let memo = explore(&prog, &cfg);
            let bare = explore(&prog, &cfg.clone().with_memoize(false));
            assert_eq!(memo.outcomes, bare.outcomes, "cfg {cfg:?} prog {prog:?}");
            assert_eq!(memo.states, bare.states, "cfg {cfg:?} prog {prog:?}");
            assert_eq!(
                memo.mem_values, bare.mem_values,
                "cfg {cfg:?} prog {prog:?}"
            );
            assert_eq!(
                memo.imprecise_detections, bare.imprecise_detections,
                "cfg {cfg:?} prog {prog:?}"
            );
            assert_eq!(
                memo.precise_exceptions, bare.precise_exceptions,
                "cfg {cfg:?} prog {prog:?}"
            );
        });
    }
}
