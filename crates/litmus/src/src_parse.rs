//! A text dialect for *source-level* (C11-like) litmus tests.
//!
//! ```text
//! # a message-passing reproducer
//! name: trisect/mp
//! model: wc
//! P0: W.rlx B 1 ; W.rel A 1
//! P1: R.acq A r0 ; R.rlx B r1 @r0
//! forbid: 1:r0=1 & 1:r1=0
//! ```
//!
//! The dialect mirrors the hardware one ([`parse`](crate::parse)) with
//! memory-order annotations instead of bare opcodes:
//!
//! * Statements: `W.<ord> <loc> <value>`, `R.<ord> <loc> <reg>`,
//!   `F.<ord>`, with `<ord>` one of `rlx`, `acq`, `rel`, `sc` —
//!   constrained per operation exactly as [`SrcProgram`] is (no
//!   `W.acq`, no `R.rel`, no `F.rlx`). `@<reg>` appends a dependency.
//! * `model:` names the hardware model the reproducer was found
//!   against (`sc` | `pc` | `wc`) — the trisection replay lowers the
//!   program through that model's mapping table.
//! * `forbid:` lines list *language-forbidden* outcomes that were
//!   observed through a buggy mapping; replay asserts they stay
//!   unobservable through the correct one.
//!
//! Files use the `.srclitmus` extension so the hardware-dialect corpus
//! loader ([`load_litmus_dir`](crate::parse::load_litmus_dir)) skips
//! them and [`load_src_litmus_dir`] picks them up.

use crate::parse::ParseError;
use ise_consistency::program::{Loc, Outcome};
use ise_consistency::source::{MemOrder, SrcProgram, SrcStmt};
use ise_types::instr::Reg;
use ise_types::model::ConsistencyModel;

/// A parsed source-level test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSrcLitmus {
    /// Test name (`anonymous` when the file has no `name:` line).
    pub name: String,
    /// The hardware model the program is lowered to on replay.
    pub model: ConsistencyModel,
    /// The source program.
    pub program: SrcProgram,
    /// Language-forbidden outcomes the reproducer once exhibited.
    pub forbidden: Vec<Outcome>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn loc_limit_letter() -> char {
    (b'A' + Loc::LIMIT - 1) as char
}

fn parse_loc(tok: &str, line: usize) -> Result<Loc, ParseError> {
    let mut chars = tok.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if c.is_ascii_uppercase() => {
            let loc = Loc(c as u8 - b'A');
            if loc.0 < Loc::LIMIT {
                Ok(loc)
            } else {
                Err(err(
                    line,
                    format!(
                        "location `{c}` is out of range: the machine supports {} locations \
                         (A..{})",
                        Loc::LIMIT,
                        loc_limit_letter()
                    ),
                ))
            }
        }
        _ => Err(err(
            line,
            format!("expected a location A..{}, got `{tok}`", loc_limit_letter()),
        )),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .map(Reg)
        .ok_or_else(|| err(line, format!("expected a register r0..r31, got `{tok}`")))
}

fn parse_value(tok: &str, line: usize) -> Result<u64, ParseError> {
    tok.parse::<u64>()
        .map_err(|_| err(line, format!("expected a value, got `{tok}`")))
}

fn parse_order(tok: &str, line: usize) -> Result<MemOrder, ParseError> {
    match tok {
        "rlx" => Ok(MemOrder::Relaxed),
        "acq" => Ok(MemOrder::Acquire),
        "rel" => Ok(MemOrder::Release),
        "sc" => Ok(MemOrder::SeqCst),
        other => Err(err(
            line,
            format!("unknown memory order `{other}` (rlx|acq|rel|sc)"),
        )),
    }
}

/// Splits `W.rel` into (`W`, order), validating the annotation exists.
fn parse_opcode(tok: &str, line: usize) -> Result<(&str, MemOrder), ParseError> {
    let (op, ord) = tok.split_once('.').ok_or_else(|| {
        err(
            line,
            format!("`{tok}` needs a memory-order suffix (e.g. `{tok}.rlx`)"),
        )
    })?;
    Ok((op, parse_order(ord, line)?))
}

fn parse_src_stmt(text: &str, line: usize) -> Result<SrcStmt, ParseError> {
    let (body, dep) = match text.rsplit_once('@') {
        Some((body, dep_tok)) => (body.trim(), Some(parse_reg(dep_tok.trim(), line)?)),
        None => (text.trim(), None),
    };
    let toks: Vec<&str> = body.split_whitespace().collect();
    let mut stmt = match toks.as_slice() {
        [op, loc, value_or_reg] => {
            let (opcode, order) = parse_opcode(op, line)?;
            match opcode {
                "W" => {
                    if order == MemOrder::Acquire {
                        return Err(err(line, "a store cannot be acquire (`W.acq`)"));
                    }
                    SrcStmt::store(
                        parse_loc(loc, line)?,
                        parse_value(value_or_reg, line)?,
                        order,
                    )
                }
                "R" => {
                    if order == MemOrder::Release {
                        return Err(err(line, "a load cannot be release (`R.rel`)"));
                    }
                    SrcStmt::load(parse_loc(loc, line)?, parse_reg(value_or_reg, line)?, order)
                }
                other => return Err(err(line, format!("unrecognized opcode `{other}`"))),
            }
        }
        [op] => {
            let (opcode, order) = parse_opcode(op, line)?;
            if opcode != "F" {
                return Err(err(line, format!("unrecognized statement `{body}`")));
            }
            if order == MemOrder::Relaxed {
                return Err(err(line, "a relaxed fence is a no-op (`F.rlx`)"));
            }
            SrcStmt::fence(order)
        }
        _ => return Err(err(line, format!("unrecognized statement `{body}`"))),
    };
    if let Some(r) = dep {
        if matches!(stmt.op, ise_consistency::source::SrcOp::Fence { .. }) {
            return Err(err(line, "a fence cannot carry a dependency"));
        }
        stmt = stmt.depending_on(r);
    }
    Ok(stmt)
}

fn parse_model(tok: &str, line: usize) -> Result<ConsistencyModel, ParseError> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "sc" => Ok(ConsistencyModel::Sc),
        "pc" | "tso" => Ok(ConsistencyModel::Pc),
        "wc" => Ok(ConsistencyModel::Wc),
        other => Err(err(line, format!("unknown model `{other}` (sc|pc|wc)"))),
    }
}

fn parse_outcome(text: &str, line: usize) -> Result<Outcome, ParseError> {
    let mut outcome = Outcome::new();
    for clause in text.split('&') {
        let clause = clause.trim();
        let (lhs, value) = clause
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `<t>:<reg>=<v>`, got `{clause}`")))?;
        let (thread, reg) = lhs
            .split_once(':')
            .ok_or_else(|| err(line, format!("expected `<t>:<reg>`, got `{lhs}`")))?;
        let t: usize = thread
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad thread id `{thread}`")))?;
        let r = parse_reg(reg.trim(), line)?;
        let v = parse_value(value.trim(), line)?;
        outcome.insert((t, r), v);
    }
    if outcome.is_empty() {
        return Err(err(line, "empty outcome"));
    }
    Ok(outcome)
}

/// Parses one source-level litmus test from its text form.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_src_litmus(src: &str) -> Result<ParsedSrcLitmus, ParseError> {
    let mut name: Option<String> = None;
    let mut model = ConsistencyModel::Wc;
    let mut threads: Vec<(usize, Vec<SrcStmt>)> = Vec::new();
    let mut forbidden = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `key: value`"))?;
        let key = key.trim();
        let rest = rest.trim();
        match key {
            "name" => name = Some(rest.to_string()),
            "model" => model = parse_model(rest, lineno)?,
            "forbid" => forbidden.push(parse_outcome(rest, lineno)?),
            k if k.starts_with('P') => {
                let tid: usize = k[1..]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad thread label `{k}`")))?;
                let stmts = rest
                    .split(';')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_src_stmt(s, lineno))
                    .collect::<Result<Vec<_>, _>>()?;
                if stmts.is_empty() {
                    return Err(err(lineno, "thread with no statements"));
                }
                threads.push((tid, stmts));
            }
            other => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }

    if threads.is_empty() {
        return Err(err(0, "no threads (P0:, P1:, ...) found"));
    }
    threads.sort_by_key(|&(tid, _)| tid);
    for (expect, &(tid, _)) in threads.iter().enumerate() {
        if tid != expect {
            return Err(err(
                0,
                format!("thread ids must be dense from P0; missing P{expect}"),
            ));
        }
    }
    // Dangling dependencies panic in SrcProgram::new; surface them as a
    // parse error instead.
    let stmt_lists: Vec<Vec<SrcStmt>> = threads.into_iter().map(|(_, s)| s).collect();
    for (t, stmts) in stmt_lists.iter().enumerate() {
        let mut produced: Vec<Reg> = Vec::new();
        for s in stmts {
            if let Some(r) = s.dep {
                if !produced.contains(&r) {
                    return Err(err(
                        0,
                        format!("thread {t}: dependency on {r} not produced by an earlier load"),
                    ));
                }
            }
            if let Some(dst) = s.produced() {
                produced.push(dst);
            }
        }
    }
    let program = SrcProgram::new(stmt_lists);
    Ok(ParsedSrcLitmus {
        name: name.unwrap_or_else(|| "anonymous".into()),
        model,
        program,
        forbidden,
    })
}

/// The canonical `model:` token.
fn model_token(model: ConsistencyModel) -> &'static str {
    match model {
        ConsistencyModel::Sc => "sc",
        ConsistencyModel::Pc => "pc",
        ConsistencyModel::Wc => "wc",
    }
}

fn render_src_stmt(s: &SrcStmt, out: &mut String) {
    use ise_consistency::source::SrcOp;
    use std::fmt::Write;
    let loc_name = |loc: Loc| {
        assert!(
            loc.0 < Loc::LIMIT,
            "the source dialect only names locations A..{}",
            loc_limit_letter()
        );
        (b'A' + loc.0) as char
    };
    match s.op {
        SrcOp::Store { loc, value, order } => {
            write!(out, "W.{} {} {value}", order.token(), loc_name(loc)).unwrap()
        }
        SrcOp::Load { loc, dst, order } => {
            write!(out, "R.{} {} {dst}", order.token(), loc_name(loc)).unwrap()
        }
        SrcOp::Fence { order } => write!(out, "F.{}", order.token()).unwrap(),
    }
    if let Some(r) = s.dep {
        use std::fmt::Write;
        write!(out, " @{r}").unwrap();
    }
}

/// Pretty-prints a parsed source test back into the dialect.
///
/// Canonical (fixed point under `parse ∘ render`), like
/// [`render_litmus`](crate::parse::render_litmus).
///
/// # Panics
///
/// Panics if the program uses a location at or beyond [`Loc::LIMIT`].
pub fn render_src_litmus(p: &ParsedSrcLitmus) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "name: {}", p.name).unwrap();
    writeln!(out, "model: {}", model_token(p.model)).unwrap();
    for (t, stmts) in p.program.threads.iter().enumerate() {
        write!(out, "P{t}:").unwrap();
        for (i, s) in stmts.iter().enumerate() {
            out.push_str(if i == 0 { " " } else { " ; " });
            render_src_stmt(s, &mut out);
        }
        out.push('\n');
    }
    for f in &p.forbidden {
        let clauses: Vec<String> = f.iter().map(|((t, r), v)| format!("{t}:{r}={v}")).collect();
        writeln!(out, "forbid: {}", clauses.join(" & ")).unwrap();
    }
    out
}

/// Parses every `*.srclitmus` file directly inside `dir`, sorted by
/// file name — the source-level regression corpus loader. A missing
/// directory is an empty corpus.
///
/// # Errors
///
/// Returns a message naming the unreadable or unparseable file.
pub fn load_src_litmus_dir(
    dir: &std::path::Path,
) -> Result<Vec<(String, ParsedSrcLitmus)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut files: Vec<std::path::PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    files.retain(|p| p.extension().is_some_and(|x| x == "srclitmus"));
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let parsed = parse_src_litmus(&src).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok((name, parsed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_consistency::source::SrcOp;

    const MP: &str = r#"
# release/acquire message passing
name: trisect/mp
model: wc
P0: W.rlx B 1 ; W.rel A 1
P1: R.acq A r0 ; R.rlx B r1 @r0
forbid: 1:r0=1 & 1:r1=0
"#;

    #[test]
    fn parses_the_annotated_mp_test() {
        let p = parse_src_litmus(MP).expect("parses");
        assert_eq!(p.name, "trisect/mp");
        assert_eq!(p.model, ConsistencyModel::Wc);
        assert_eq!(p.program.threads.len(), 2);
        assert_eq!(
            p.program.threads[0][1].op,
            SrcOp::Store {
                loc: Loc(0),
                value: 1,
                order: MemOrder::Release
            }
        );
        assert_eq!(
            p.program.threads[1][0].op,
            SrcOp::Load {
                loc: Loc(0),
                dst: Reg(0),
                order: MemOrder::Acquire
            }
        );
        assert_eq!(p.program.threads[1][1].dep, Some(Reg(0)));
        assert_eq!(p.forbidden.len(), 1);
    }

    #[test]
    fn round_trips_canonically() {
        let first = parse_src_litmus(MP).unwrap();
        let rendered = render_src_litmus(&first);
        let second = parse_src_litmus(&rendered)
            .unwrap_or_else(|e| panic!("rendered text must re-parse: {e}\n{rendered}"));
        assert_eq!(first.program, second.program);
        assert_eq!(first.model, second.model);
        assert_eq!(first.forbidden, second.forbidden);
        assert_eq!(rendered, render_src_litmus(&second));
    }

    #[test]
    fn every_order_token_parses_where_legal() {
        let src = "model: pc\nP0: W.rlx A 1 ; W.rel A 2 ; W.sc A 3 ; F.acq ; F.rel ; F.sc\n\
                   P1: R.rlx A r0 ; R.acq A r1 ; R.sc A r2\n";
        let p = parse_src_litmus(src).expect("parses");
        assert_eq!(p.model, ConsistencyModel::Pc);
        assert_eq!(p.program.len(), 9);
    }

    #[test]
    fn missing_annotation_is_an_error() {
        let e = parse_src_litmus("P0: W A 1\n").unwrap_err();
        assert!(
            e.message.contains("memory-order suffix"),
            "got: {}",
            e.message
        );
        assert_eq!(e.line, 1);
    }

    #[test]
    fn malformed_annotations_are_errors() {
        for (bad, needle) in [
            ("P0: W.foo A 1\n", "unknown memory order"),
            ("P0: W.acq A 1\n", "store cannot be acquire"),
            ("P0: R.rel A r0\n", "load cannot be release"),
            ("P0: F.rlx\n", "relaxed fence"),
            ("P0: X.rlx A 1\n", "unrecognized opcode"),
        ] {
            let e = parse_src_litmus(bad).unwrap_err();
            assert!(
                e.message.contains(needle),
                "`{}` should fail with `{needle}`, got: {}",
                bad.trim(),
                e.message
            );
        }
    }

    #[test]
    fn out_of_range_locations_are_rejected() {
        for bad in ["P0: W.rlx I 1\n", "P0: R.acq Z r0\n"] {
            let e = parse_src_litmus(bad).unwrap_err();
            assert!(e.message.contains("out of range"), "got: {}", e.message);
        }
    }

    #[test]
    fn unknown_model_is_an_error() {
        let e = parse_src_litmus("model: x86\nP0: W.rlx A 1\n").unwrap_err();
        assert!(e.message.contains("unknown model"), "got: {}", e.message);
    }

    #[test]
    fn fence_with_dependency_is_an_error() {
        let src = "P0: R.rlx A r0 ; F.sc @r0\n";
        let e = parse_src_litmus(src).unwrap_err();
        assert!(
            e.message.contains("fence cannot carry"),
            "got: {}",
            e.message
        );
    }

    #[test]
    fn dangling_dependency_is_an_error_not_a_panic() {
        let e = parse_src_litmus("P0: W.rlx A 1 @r5\n").unwrap_err();
        assert!(e.message.contains("not produced"), "got: {}", e.message);
    }

    #[test]
    fn model_line_tokens_round_trip() {
        for model in ConsistencyModel::ALL {
            let src = format!("model: {}\nP0: W.rlx A 1\n", model_token(model));
            assert_eq!(parse_src_litmus(&src).unwrap().model, model);
        }
    }

    #[test]
    fn loader_skips_hardware_dialect_files() {
        // The `.srclitmus` loader must not pick up the `.litmus`
        // regression corpus sitting in the same directory (and vice
        // versa — `load_litmus_dir` filters on `.litmus`).
        let dir = std::env::temp_dir().join("ise-srclitmus-loader-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("hw.litmus"), "P0: W A 1\n").unwrap();
        std::fs::write(dir.join("src.srclitmus"), "model: wc\nP0: W.rel A 1\n").unwrap();
        let loaded = load_src_litmus_dir(&dir).expect("loads");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "src.srclitmus");
        let hw = crate::parse::load_litmus_dir(&dir).expect("loads");
        assert_eq!(hw.len(), 1);
        assert_eq!(hw[0].0, "hw.litmus");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let loaded =
            load_src_litmus_dir(std::path::Path::new("/nonexistent/src-regressions")).unwrap();
        assert!(loaded.is_empty());
    }
}
