//! The generated litmus corpus, organized by the eight ordering-relation
//! families of Table 6.
//!
//! Each test is a small multi-threaded program; the runner checks that
//! every outcome the operational machine can reach — with and without
//! EInject faults on every location — is allowed by the axiomatic model.
//! The classic named shapes (MP, SB/Dekker, LB, S, R, WRC, IRIW, CoRR,
//! 2+2W, ...) appear with systematic fence/dependency/atomic variants.

use ise_consistency::program::{LitmusProgram, Loc, Stmt};
use ise_types::instr::{FenceKind, Reg};
use std::fmt;

const A: Loc = Loc(0);
const B: Loc = Loc(1);
const C: Loc = Loc(2);
const R0: Reg = Reg(0);
const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);

/// Table 6's ordering-relation families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Register dependencies for addr, data, and ctrl.
    Dependencies,
    /// Rd-Rd / Wr-Wr to the same address from the same core.
    PoSameLocation,
    /// Instruction pairs maintained in program order (atomics, LR/SC).
    PreservedPo,
    /// Wr-Rd to the same address from different cores.
    ExternalReadFrom,
    /// Wr-Rd to the same address from the same core.
    InternalReadFrom,
    /// Wr-Wr total order to the same address.
    CoherenceOrder,
    /// Rd-Wr to the same address.
    FromRead,
    /// Ordering imposed by barriers.
    Barriers,
}

impl Family {
    /// All families, in Table 6 order.
    pub const ALL: [Family; 8] = [
        Family::Dependencies,
        Family::PoSameLocation,
        Family::PreservedPo,
        Family::ExternalReadFrom,
        Family::InternalReadFrom,
        Family::CoherenceOrder,
        Family::FromRead,
        Family::Barriers,
    ];

    /// The family's metric-key slug (`family.<key>.cases` in the
    /// telemetry registry).
    pub fn key(self) -> &'static str {
        match self {
            Family::Dependencies => "dependencies",
            Family::PoSameLocation => "po_same_location",
            Family::PreservedPo => "preserved_po",
            Family::ExternalReadFrom => "external_read_from",
            Family::InternalReadFrom => "internal_read_from",
            Family::CoherenceOrder => "coherence_order",
            Family::FromRead => "from_read",
            Family::Barriers => "barriers",
        }
    }

    /// The Table 6 row label.
    pub fn label(self) -> &'static str {
        match self {
            Family::Dependencies => "Dependencies",
            Family::PoSameLocation => "Program order (same location)",
            Family::PreservedPo => "Preserved program order",
            Family::ExternalReadFrom => "External read-from order",
            Family::InternalReadFrom => "Internal read-from order",
            Family::CoherenceOrder => "Coherence order",
            Family::FromRead => "From-read order",
            Family::Barriers => "Barriers",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusTest {
    /// Unique test name (`family/shape+variant`).
    pub name: String,
    /// Table 6 family.
    pub family: Family,
    /// The program.
    pub program: LitmusProgram,
}

fn t(family: Family, name: impl Into<String>, threads: Vec<Vec<Stmt>>) -> LitmusTest {
    LitmusTest {
        name: name.into(),
        family,
        program: LitmusProgram::new(threads),
    }
}

fn maybe_fence(kind: Option<FenceKind>) -> Vec<Stmt> {
    kind.map(Stmt::fence).into_iter().collect()
}

fn fence_name(kind: Option<FenceKind>) -> &'static str {
    match kind {
        None => "po",
        Some(FenceKind::Full) => "fence",
        Some(FenceKind::StoreStore) => "fence.ww",
        Some(FenceKind::LoadLoad) => "fence.rr",
    }
}

/// Message passing: T0 publishes B then flags A; T1 polls A then reads B.
fn mp(f0: Option<FenceKind>, f1: Option<FenceKind>) -> Vec<Vec<Stmt>> {
    let mut t0 = vec![Stmt::write(B, 1)];
    t0.extend(maybe_fence(f0));
    t0.push(Stmt::write(A, 1));
    let mut t1 = vec![Stmt::read(A, R0)];
    t1.extend(maybe_fence(f1));
    t1.push(Stmt::read(B, R1));
    vec![t0, t1]
}

/// Store buffering (Dekker).
fn sb(f0: Option<FenceKind>, f1: Option<FenceKind>) -> Vec<Vec<Stmt>> {
    let mut t0 = vec![Stmt::write(A, 1)];
    t0.extend(maybe_fence(f0));
    t0.push(Stmt::read(B, R0));
    let mut t1 = vec![Stmt::write(B, 1)];
    t1.extend(maybe_fence(f1));
    t1.push(Stmt::read(A, R1));
    vec![t0, t1]
}

/// The S shape: Wr-Wr vs Rd-Wr.
fn s_shape(f0: Option<FenceKind>) -> Vec<Vec<Stmt>> {
    let mut t0 = vec![Stmt::write(A, 2)];
    t0.extend(maybe_fence(f0));
    t0.push(Stmt::write(B, 1));
    let t1 = vec![Stmt::read(B, R0), Stmt::write(A, 1)];
    vec![t0, t1]
}

/// The R shape: Wr-Wr vs Wr-Rd.
fn r_shape(f0: Option<FenceKind>) -> Vec<Vec<Stmt>> {
    let mut t0 = vec![Stmt::write(A, 1)];
    t0.extend(maybe_fence(f0));
    t0.push(Stmt::write(B, 1));
    let t1 = vec![Stmt::write(B, 2), Stmt::read(A, R0)];
    vec![t0, t1]
}

/// Load buffering with dependencies on both sides: forbidden under every
/// model with dependency order (no out-of-thin-air).
fn lb_deps() -> Vec<Vec<Stmt>> {
    vec![
        vec![Stmt::read(A, R0), Stmt::write(B, 1).depending_on(R0)],
        vec![Stmt::read(B, R1), Stmt::write(A, 1).depending_on(R1)],
    ]
}

fn external_read_from() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    let fences = [None, Some(FenceKind::Full)];
    for f0 in fences {
        for f1 in fences {
            out.push(t(
                Family::ExternalReadFrom,
                format!("erf/MP+{}+{}", fence_name(f0), fence_name(f1)),
                mp(f0, f1),
            ));
        }
    }
    // WRC: write-to-read causality across three threads.
    out.push(t(
        Family::ExternalReadFrom,
        "erf/WRC",
        vec![
            vec![Stmt::write(A, 1)],
            vec![
                Stmt::read(A, R0),
                Stmt::fence(FenceKind::Full),
                Stmt::write(B, 1),
            ],
            vec![
                Stmt::read(B, R1),
                Stmt::fence(FenceKind::Full),
                Stmt::read(A, R2),
            ],
        ],
    ));
    // IRIW: independent reads of independent writes.
    out.push(t(
        Family::ExternalReadFrom,
        "erf/IRIW+fences",
        vec![
            vec![Stmt::write(A, 1)],
            vec![Stmt::write(B, 1)],
            vec![
                Stmt::read(A, R0),
                Stmt::fence(FenceKind::Full),
                Stmt::read(B, R1),
            ],
            vec![
                Stmt::read(B, R2),
                Stmt::fence(FenceKind::Full),
                Stmt::read(A, R3),
            ],
        ],
    ));
    // LB: load buffering (our in-order machine never produces it, but the
    // axiomatic set must contain whatever it observes).
    out.push(t(
        Family::ExternalReadFrom,
        "erf/LB",
        vec![
            vec![Stmt::read(A, R0), Stmt::write(B, 1)],
            vec![Stmt::read(B, R1), Stmt::write(A, 1)],
        ],
    ));
    // ISA2: transitive message passing across three threads.
    out.push(t(
        Family::ExternalReadFrom,
        "erf/ISA2",
        vec![
            vec![
                Stmt::write(A, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(B, 1),
            ],
            vec![
                Stmt::read(B, R0),
                Stmt::fence(FenceKind::Full),
                Stmt::write(C, 1),
            ],
            vec![
                Stmt::read(C, R1),
                Stmt::fence(FenceKind::Full),
                Stmt::read(A, R2),
            ],
        ],
    ));
    // W+RWC: a write racing a read-write-chain.
    out.push(t(
        Family::ExternalReadFrom,
        "erf/W+RWC",
        vec![
            vec![Stmt::write(A, 2)],
            vec![
                Stmt::read(A, R0),
                Stmt::fence(FenceKind::Full),
                Stmt::read(B, R1),
            ],
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(A, 1),
            ],
        ],
    ));
    out
}

fn internal_read_from() -> Vec<LitmusTest> {
    vec![
        t(
            Family::InternalReadFrom,
            "irf/forward",
            vec![vec![Stmt::write(A, 1), Stmt::read(A, R0)]],
        ),
        t(
            Family::InternalReadFrom,
            "irf/forward-twice",
            vec![vec![
                Stmt::write(A, 1),
                Stmt::read(A, R0),
                Stmt::read(A, R1),
            ]],
        ),
        t(
            Family::InternalReadFrom,
            "irf/forward-latest",
            vec![vec![
                Stmt::write(A, 1),
                Stmt::write(A, 2),
                Stmt::read(A, R0),
            ]],
        ),
        t(
            Family::InternalReadFrom,
            "irf/forward-vs-remote",
            vec![
                vec![Stmt::write(A, 1), Stmt::read(A, R0), Stmt::read(B, R1)],
                vec![Stmt::write(B, 1), Stmt::read(B, R2), Stmt::read(A, R3)],
            ],
        ),
        t(
            Family::InternalReadFrom,
            "irf/SB+forwards",
            vec![
                vec![Stmt::write(A, 1), Stmt::read(A, R0), Stmt::read(B, R1)],
                vec![Stmt::write(B, 1), Stmt::read(A, R2)],
            ],
        ),
    ]
}

fn po_same_location() -> Vec<LitmusTest> {
    vec![
        t(
            Family::PoSameLocation,
            "poloc/CoRR",
            vec![
                vec![Stmt::write(A, 1)],
                vec![Stmt::read(A, R0), Stmt::read(A, R1)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoRR2",
            vec![
                vec![Stmt::write(A, 1)],
                vec![Stmt::read(A, R0), Stmt::read(A, R1)],
                vec![Stmt::read(A, R2), Stmt::read(A, R3)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoWW",
            vec![
                vec![Stmt::write(A, 1), Stmt::write(A, 2)],
                vec![Stmt::read(A, R0), Stmt::read(A, R1)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoWR",
            vec![
                vec![Stmt::write(A, 1), Stmt::read(A, R0)],
                vec![Stmt::write(A, 2)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoRW",
            vec![
                vec![Stmt::read(A, R0), Stmt::write(A, 1)],
                vec![Stmt::write(A, 2)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoRW2",
            vec![
                vec![Stmt::read(A, R0), Stmt::write(A, 1)],
                vec![Stmt::read(A, R1), Stmt::write(A, 2)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoWR-other-writer",
            vec![
                vec![Stmt::write(A, 1), Stmt::read(A, R0), Stmt::read(A, R1)],
                vec![Stmt::write(A, 2), Stmt::read(A, R2)],
            ],
        ),
        t(
            Family::PoSameLocation,
            "poloc/CoWW-third-observer",
            vec![
                vec![Stmt::write(A, 1), Stmt::write(A, 2), Stmt::write(B, 1)],
                vec![Stmt::read(B, R0), Stmt::read(A, R1)],
            ],
        ),
    ]
}

fn coherence_order() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    for f in [None, Some(FenceKind::StoreStore), Some(FenceKind::Full)] {
        let mut t0 = vec![Stmt::write(A, 1)];
        t0.extend(maybe_fence(f));
        t0.push(Stmt::write(B, 1));
        let mut t1 = vec![Stmt::write(B, 2)];
        t1.extend(maybe_fence(f));
        t1.push(Stmt::write(A, 2));
        out.push(t(
            Family::CoherenceOrder,
            format!("co/2+2W+{}", fence_name(f)),
            vec![t0, t1, vec![Stmt::read(A, R0), Stmt::read(B, R1)]],
        ));
    }
    out.push(t(
        Family::CoherenceOrder,
        "co/WW-race-two-observers",
        vec![
            vec![Stmt::write(A, 1)],
            vec![Stmt::write(A, 2)],
            vec![Stmt::read(A, R0), Stmt::read(A, R1)],
            vec![Stmt::read(A, R2), Stmt::read(A, R3)],
        ],
    ));
    out.push(t(
        Family::CoherenceOrder,
        "co/2+2W+amo",
        vec![
            vec![Stmt::amo(A, 1, R0), Stmt::write(B, 1)],
            vec![Stmt::amo(B, 2, R1), Stmt::write(A, 2)],
            vec![Stmt::read(A, R2), Stmt::read(B, R3)],
        ],
    ));
    out.push(t(
        Family::CoherenceOrder,
        "co/three-writes",
        vec![
            vec![Stmt::write(A, 1), Stmt::write(A, 2)],
            vec![Stmt::write(A, 3)],
            vec![Stmt::read(A, R0), Stmt::read(A, R1)],
        ],
    ));
    out
}

fn from_read() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    for f in [None, Some(FenceKind::Full)] {
        out.push(t(
            Family::FromRead,
            format!("fr/S+{}", fence_name(f)),
            s_shape(f),
        ));
        out.push(t(
            Family::FromRead,
            format!("fr/R+{}", fence_name(f)),
            r_shape(f),
        ));
    }
    out.push(t(
        Family::FromRead,
        "fr/read-then-overwrite",
        vec![
            vec![Stmt::read(A, R0), Stmt::write(A, 1)],
            vec![Stmt::read(A, R1)],
        ],
    ));
    // SB shape seen from the from-read side: each thread's read
    // fr-precedes the other's write.
    out.push(t(
        Family::FromRead,
        "fr/SB-as-fr",
        vec![
            vec![Stmt::read(B, R0), Stmt::write(A, 1)],
            vec![Stmt::read(A, R1), Stmt::write(B, 1)],
        ],
    ));
    // fr through an AMO.
    out.push(t(
        Family::FromRead,
        "fr/amo-observes-then-writes",
        vec![
            vec![Stmt::amo(A, 10, R0), Stmt::write(B, 1)],
            vec![Stmt::read(B, R1), Stmt::write(A, 1)],
        ],
    ));
    out
}

fn dependencies() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    // MP with a consumer-side address dependency: the canonical use.
    for f0 in [Some(FenceKind::StoreStore), Some(FenceKind::Full)] {
        let mut t0 = vec![Stmt::write(B, 1)];
        t0.extend(maybe_fence(f0));
        t0.push(Stmt::write(A, 1));
        out.push(t(
            Family::Dependencies,
            format!("dep/MP+{}+addr-dep", fence_name(f0)),
            vec![
                t0,
                vec![Stmt::read(A, R0), Stmt::read(B, R1).depending_on(R0)],
            ],
        ));
    }
    // Data dependency into a store.
    out.push(t(
        Family::Dependencies,
        "dep/MP+data-dep-store",
        vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(A, 1),
            ],
            vec![Stmt::read(A, R0), Stmt::write(C, 1).depending_on(R0)],
            vec![
                Stmt::read(C, R1),
                Stmt::fence(FenceKind::Full),
                Stmt::read(B, R2),
            ],
        ],
    ));
    // Control dependency into a second load.
    out.push(t(
        Family::Dependencies,
        "dep/ctrl-dep-chain",
        vec![
            vec![Stmt::write(A, 1)],
            vec![
                Stmt::read(A, R0),
                Stmt::read(B, R1).depending_on(R0),
                Stmt::read(A, R2).depending_on(R1),
            ],
        ],
    ));
    // LB with dependencies on both sides: no out-of-thin-air values.
    out.push(t(Family::Dependencies, "dep/LB+deps", lb_deps()));
    // Dependency through an AMO's result.
    out.push(t(
        Family::Dependencies,
        "dep/amo-result-dep",
        vec![
            vec![
                Stmt::write(B, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(A, 1),
            ],
            vec![Stmt::amo(A, 0, R0), Stmt::read(B, R1).depending_on(R0)],
        ],
    ));
    out
}

fn preserved_po() -> Vec<LitmusTest> {
    vec![
        t(
            Family::PreservedPo,
            "ppo/amo-lost-update",
            vec![vec![Stmt::amo(A, 1, R0)], vec![Stmt::amo(A, 1, R1)]],
        ),
        t(
            Family::PreservedPo,
            "ppo/MP+amo-publish",
            vec![
                vec![Stmt::write(B, 1), Stmt::amo(A, 1, R2)],
                vec![Stmt::read(A, R0), Stmt::read(B, R1)],
            ],
        ),
        t(
            Family::PreservedPo,
            "ppo/amo-consumer",
            vec![
                vec![
                    Stmt::write(B, 1),
                    Stmt::fence(FenceKind::Full),
                    Stmt::write(A, 1),
                ],
                vec![Stmt::amo(A, 0, R0), Stmt::read(B, R1)],
            ],
        ),
        t(
            Family::PreservedPo,
            "ppo/amo-as-fence",
            // An AMO between two stores orders them like a fence would.
            vec![
                vec![Stmt::write(B, 1), Stmt::amo(C, 1, R2), Stmt::write(A, 1)],
                vec![Stmt::read(A, R0), Stmt::read(B, R1)],
            ],
        ),
        t(
            Family::PreservedPo,
            "ppo/amo-three-way-count",
            vec![
                vec![Stmt::amo(A, 1, R0)],
                vec![Stmt::amo(A, 1, R1)],
                vec![Stmt::amo(A, 1, R2)],
            ],
        ),
        t(
            Family::PreservedPo,
            "ppo/amo-chain",
            vec![
                vec![Stmt::amo(A, 1, R0), Stmt::amo(B, 1, R1)],
                vec![Stmt::amo(B, 1, R2), Stmt::amo(A, 1, R3)],
            ],
        ),
    ]
}

fn barriers() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    for (f0, f1) in [
        (Some(FenceKind::StoreStore), Some(FenceKind::LoadLoad)),
        (Some(FenceKind::StoreStore), Some(FenceKind::Full)),
        (Some(FenceKind::Full), Some(FenceKind::LoadLoad)),
        (Some(FenceKind::LoadLoad), Some(FenceKind::StoreStore)),
    ] {
        out.push(t(
            Family::Barriers,
            format!("barrier/MP+{}+{}", fence_name(f0), fence_name(f1)),
            mp(f0, f1),
        ));
    }
    for f in [
        Some(FenceKind::Full),
        Some(FenceKind::StoreStore),
        Some(FenceKind::LoadLoad),
    ] {
        out.push(t(
            Family::Barriers,
            format!("barrier/SB+{}+{}", fence_name(f), fence_name(f)),
            sb(f, f),
        ));
    }
    // A fence with an empty store buffer is a no-op that must not deadlock.
    out.push(t(
        Family::Barriers,
        "barrier/leading-fence",
        vec![vec![
            Stmt::fence(FenceKind::Full),
            Stmt::write(A, 1),
            Stmt::fence(FenceKind::Full),
        ]],
    ));
    // 2+2W fully fenced: writes to each location globally ordered.
    out.push(t(
        Family::Barriers,
        "barrier/2+2W+fences",
        vec![
            vec![
                Stmt::write(A, 1),
                Stmt::fence(FenceKind::Full),
                Stmt::write(B, 1),
            ],
            vec![
                Stmt::write(B, 2),
                Stmt::fence(FenceKind::Full),
                Stmt::write(A, 2),
            ],
            vec![Stmt::read(A, R0), Stmt::read(B, R1)],
        ],
    ));
    // Back-to-back fences collapse to one.
    out.push(t(
        Family::Barriers,
        "barrier/double-fence",
        mp(Some(FenceKind::Full), Some(FenceKind::Full))
            .into_iter()
            .map(|mut thread| {
                // Duplicate every fence.
                let mut out = Vec::new();
                for s in thread.drain(..) {
                    let is_fence = matches!(s.op, ise_consistency::program::StmtOp::Fence(_));
                    out.push(s);
                    if is_fence {
                        out.push(s);
                    }
                }
                out
            })
            .collect(),
    ));
    out
}

/// The full corpus, every family represented.
pub fn corpus() -> Vec<LitmusTest> {
    let mut all = Vec::new();
    all.extend(dependencies());
    all.extend(po_same_location());
    all.extend(preserved_po());
    all.extend(external_read_from());
    all.extend(internal_read_from());
    all.extend(coherence_order());
    all.extend(from_read());
    all.extend(barriers());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn every_family_is_represented() {
        let mut counts: BTreeMap<Family, usize> = BTreeMap::new();
        for t in corpus() {
            *counts.entry(t.family).or_insert(0) += 1;
        }
        for fam in Family::ALL {
            assert!(
                counts.get(&fam).copied().unwrap_or(0) >= 3,
                "family {fam} under-represented: {counts:?}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let tests = corpus();
        let mut names: Vec<&str> = tests.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate test names");
    }

    #[test]
    fn corpus_is_reasonably_sized() {
        let n = corpus().len();
        assert!(n >= 35, "corpus too small: {n}");
    }

    #[test]
    fn programs_are_well_formed() {
        for t in corpus() {
            assert!(!t.program.is_empty(), "{} is empty", t.name);
            assert!(t.program.threads.len() <= 4, "{} too wide", t.name);
        }
    }
}
