//! The OS half of the hardware-software co-design (paper §5.3–§5.4).
//!
//! [`handler::OsKernel`] implements the minimal Linux handler of §6.2: on
//! an imprecise store exception it walks the core's FSB from head to tail,
//! resolves each exception cause (clearing EInject pages, scheduling
//! demand-paging IO), applies every retrieved store to memory **in the
//! retrieved order**, advances the head pointer, and only then lets the
//! program resume — the three OS rules of Table 5. It reports the Fig. 5
//! cost breakdown (µarch / apply / other-OS) per invocation so the
//! batching experiments can aggregate it.
//!
//! [`paging`] models the batching win for demand paging: one handler
//! invocation can schedule many overlapping IOs instead of serializing
//! page faults. [`process`] models process termination on irrecoverable
//! exceptions and the Interrupt-Enable-bit serialization of §5.3.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod handler;
pub mod kernel;
pub mod paging;
pub mod process;

pub use handler::{HandlerOutcome, OsKernel, OverheadBreakdown};
pub use kernel::{ContainedKernelCopy, KernelCopyOutcome};
pub use paging::IoScheduler;
pub use process::{InterruptControl, Process, ProcessState};
