//! The imprecise store exception handler.

use crate::paging::IoScheduler;
use ise_core::{ContractMonitor, FaultResolver, Fsb, OrderEvent};
use ise_engine::Cycle;
use ise_mem::FlatMemory;
use ise_types::config::OsCostConfig;
use ise_types::exception::{ErrorCode, ExceptionKind};
use ise_types::json::{Json, ToJson};
use ise_types::{CoreId, FaultingStoreEntry, PageId, SimError};
use std::collections::HashSet;

/// The Fig. 5 cost decomposition of one handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverheadBreakdown {
    /// Microarchitectural cycles (FSB drain + pipeline flush) — charged
    /// by the FSBC, folded in here by the caller for reporting.
    pub uarch: Cycle,
    /// Cycles spent applying faulting stores (`S_OS`).
    pub apply: Cycle,
    /// Everything else the OS does: dispatch, context switch, cause
    /// resolution.
    pub other_os: Cycle,
}

impl OverheadBreakdown {
    /// Total cycles.
    pub fn total(&self) -> Cycle {
        self.uarch + self.apply + self.other_os
    }

    /// Per-store average over `n` faulting stores.
    pub fn per_store(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.total() as f64 / n as f64
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &OverheadBreakdown) {
        self.uarch += other.uarch;
        self.apply += other.apply;
        self.other_os += other.other_os;
    }
}

impl ToJson for OverheadBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("uarch", Json::from(self.uarch)),
            ("apply", Json::from(self.apply)),
            ("other_os", Json::from(self.other_os)),
        ])
    }
}

impl ise_types::persist::Persist for OverheadBreakdown {
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.u64(self.uarch);
        w.u64(self.apply);
        w.u64(self.other_os);
    }

    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        Ok(OverheadBreakdown {
            uarch: r.u64()?,
            apply: r.u64()?,
            other_os: r.u64()?,
        })
    }
}

/// The result of one handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerOutcome {
    /// Cycle at which the interrupted program may resume.
    pub resume_at: Cycle,
    /// Stores applied to memory.
    pub applied: usize,
    /// Distinct faulting pages resolved.
    pub pages_resolved: usize,
    /// Cost decomposition (OS parts only; add the FSBC receipt's µarch
    /// cycles for the full Fig. 5 bar).
    pub breakdown: OverheadBreakdown,
    /// Whether the exception was irrecoverable and the process was
    /// terminated (remaining faulting stores discarded, §5.3).
    pub terminated: bool,
    /// FSB entries discarded by this invocation's kill path: the
    /// triggering entry plus the drained remainder. Zero unless
    /// `terminated`.
    pub discarded: usize,
    /// Demand-paging IO cycles overlapped within this invocation (zero
    /// unless [`OsKernel::with_demand_paging_io`] is enabled).
    pub io_cycles: Cycle,
}

/// The OS kernel model.
#[derive(Debug, Clone)]
pub struct OsKernel {
    costs: OsCostConfig,
    /// When set, each resolved page schedules a demand-paging IO of this
    /// latency; IOs within one invocation overlap (§5.3 batching).
    demand_io: Option<IoScheduler>,
    invocations: u64,
    stores_applied: u64,
    faulting_applied: u64,
    pages_resolved: u64,
    processes_killed: u64,
    transient_retries: u64,
    transient_recovered: u64,
    backoff_cycles: u64,
    retry_exhausted: u64,
    kill_discarded: u64,
    silently_dropped: u64,
    continuation_invocations: u64,
    continuation_dispatch_cycles: u64,
}

/// Backoff before retry number `attempt` (1-based): exponential from
/// `retry_backoff_base`, saturating at `u64::MAX` instead of shifting
/// past the value's width (an attacker-chosen base/budget pair must not
/// overflow into a *tiny* backoff, and a shift ≥ 64 is outright UB).
/// With [`RecoveryHardening::jittered_backoff`] set, a deterministic
/// per-(core, addr, attempt) jitter in `[0, base)` is added so that
/// colliding victims do not re-issue in lockstep.
///
/// Public so exact-cycle tests and the adversary's objective scoring can
/// compute the same ladder the kernel charges.
pub fn retry_backoff(
    costs: &OsCostConfig,
    core: CoreId,
    addr: ise_types::addr::Addr,
    attempt: u32,
) -> Cycle {
    let base = costs.retry_backoff_base;
    let shift = attempt.saturating_sub(1);
    let exp = if base == 0 {
        0
    } else if shift > base.leading_zeros() {
        u64::MAX
    } else {
        base << shift
    };
    if costs.hardening.jittered_backoff && base > 0 {
        exp.saturating_add(backoff_jitter(core, addr, attempt) % base)
    } else {
        exp
    }
}

/// Deterministic jitter hash (splitmix64 finalizer over the retry
/// coordinates). No RNG state: the same (core, addr, attempt) always
/// jitters identically, keeping every differential leg byte-stable.
fn backoff_jitter(core: CoreId, addr: ise_types::addr::Addr, attempt: u32) -> u64 {
    let mut x = (core.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ addr.raw().rotate_left(17)
        ^ u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl OsKernel {
    /// Creates a kernel with the given cost parameters.
    pub fn new(costs: OsCostConfig) -> Self {
        OsKernel {
            costs,
            demand_io: None,
            invocations: 0,
            stores_applied: 0,
            faulting_applied: 0,
            pages_resolved: 0,
            processes_killed: 0,
            transient_retries: 0,
            transient_recovered: 0,
            backoff_cycles: 0,
            retry_exhausted: 0,
            kill_discarded: 0,
            silently_dropped: 0,
            continuation_invocations: 0,
            continuation_dispatch_cycles: 0,
        }
    }

    /// Enables demand-paging IO: resolving a faulting page schedules a
    /// page-in of `io_latency` cycles on the backing device. All page-ins
    /// of one handler invocation are submitted back to back and overlap —
    /// the paper's §5.3 batching argument ("the OS can schedule multiple
    /// IO requests for all the faulting stores covered by the exception").
    ///
    /// # Panics
    ///
    /// Panics if `io_latency` is zero.
    pub fn with_demand_paging_io(mut self, io_latency: Cycle) -> Self {
        self.demand_io = Some(IoScheduler::new(io_latency));
        self
    }

    /// Demand-paging IOs issued so far (zero unless enabled).
    pub fn ios_issued(&self) -> u64 {
        self.demand_io.as_ref().map_or(0, |s| s.ios_issued())
    }

    /// Handler invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Stores applied so far (faulting + same-stream companions).
    pub fn stores_applied(&self) -> u64 {
        self.stores_applied
    }

    /// Applied stores that were actually faulting: a nonzero error code,
    /// or a target page still marked faulting when applied (a same-stream
    /// companion whose own drain would also have been denied).
    pub fn faulting_applied(&self) -> u64 {
        self.faulting_applied
    }

    /// Pages resolved so far.
    pub fn pages_resolved(&self) -> u64 {
        self.pages_resolved
    }

    /// Processes terminated on irrecoverable exceptions.
    pub fn processes_killed(&self) -> u64 {
        self.processes_killed
    }

    /// Kernel store re-issues that still found the cause present and
    /// backed off (transient bus errors).
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Stores that eventually applied after at least one retry — the
    /// recovery path working as intended.
    pub fn transient_recovered(&self) -> u64 {
        self.transient_recovered
    }

    /// Total backoff cycles charged across all retries (the adversary's
    /// objective-3 damage metric).
    pub fn backoff_cycles(&self) -> Cycle {
        self.backoff_cycles
    }

    /// Stores whose full retry budget ran dry, regardless of whether the
    /// kernel then killed the process or (unhardened) dropped the store.
    pub fn retry_exhausted(&self) -> u64 {
        self.retry_exhausted
    }

    /// FSB entries discarded by kill paths: the triggering entry plus the
    /// drained remainder of each killed episode.
    pub fn kill_discarded(&self) -> u64 {
        self.kill_discarded
    }

    /// Stores the *unhardened* kernel silently counted as applied after
    /// retry exhaustion without ever writing memory. Always zero with
    /// [`RecoveryHardening::kill_on_retry_exhaustion`] set. Deliberately
    /// not exported to telemetry — the lie is consistent there; only the
    /// applied-visibility audit (and this accessor, for tests) sees it.
    pub fn silently_dropped(&self) -> u64 {
        self.silently_dropped
    }

    /// Early-drain continuation chunks handled (invocations past the
    /// first chunk of an episode).
    pub fn continuation_invocations(&self) -> u64 {
        self.continuation_invocations
    }

    /// Dispatch cycles charged to continuation chunks — the adversary's
    /// objective-2 stall metric, and the quantity
    /// [`RecoveryHardening::chunk_continuation`] shrinks 8×.
    pub fn continuation_dispatch_cycles(&self) -> Cycle {
        self.continuation_dispatch_cycles
    }

    /// Exports the kernel's handler counters into the shared telemetry
    /// registry under the `os.` prefix.
    pub fn export_telemetry(&self, reg: &mut ise_telemetry::Registry) {
        reg.add("os.invocations", self.invocations);
        reg.add("os.stores_applied", self.stores_applied);
        reg.add("os.faulting_applied", self.faulting_applied);
        reg.add("os.pages_resolved", self.pages_resolved);
        reg.add("os.processes_killed", self.processes_killed);
        reg.add("os.transient_retries", self.transient_retries);
        reg.add("os.transient_recovered", self.transient_recovered);
        reg.add("os.backoff_cycles", self.backoff_cycles);
        reg.add("os.retry_exhausted", self.retry_exhausted);
        reg.add("os.kill_discarded", self.kill_discarded);
        reg.add("os.continuation_invocations", self.continuation_invocations);
        reg.add(
            "os.continuation_dispatch_cycles",
            self.continuation_dispatch_cycles,
        );
        reg.add("os.ios_issued", self.ios_issued());
    }

    /// Saves the kernel's dynamic state under an `OSKN` section: every
    /// handler counter plus the demand-paging device's issue counter.
    /// The cost configuration and the IO device's latency are rebuilt by
    /// the embedder; the saved IO-presence flag is validated against that
    /// reconstruction on restore.
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"OSKN", |w| {
            w.bool(self.demand_io.is_some());
            if let Some(io) = &self.demand_io {
                io.save_state(w);
            }
            w.u64(self.invocations);
            w.u64(self.stores_applied);
            w.u64(self.faulting_applied);
            w.u64(self.pages_resolved);
            w.u64(self.processes_killed);
            w.u64(self.transient_retries);
            w.u64(self.transient_recovered);
            w.u64(self.backoff_cycles);
            w.u64(self.retry_exhausted);
            w.u64(self.kill_discarded);
            w.u64(self.silently_dropped);
            w.u64(self.continuation_invocations);
            w.u64(self.continuation_dispatch_cycles);
        });
    }

    /// Restores the kernel's counters in place. The kernel must have been
    /// built with the same cost configuration (and the same
    /// [`OsKernel::with_demand_paging_io`] choice) as the snapshot.
    pub fn restore_state(
        &mut self,
        r: &mut ise_types::persist::Reader,
    ) -> Result<(), ise_types::persist::PersistError> {
        use ise_types::persist::PersistError;
        r.section(*b"OSKN", |r| {
            let has_io = r.bool()?;
            if has_io != self.demand_io.is_some() {
                return Err(PersistError::Corrupt("demand-IO configuration mismatch"));
            }
            if let Some(io) = self.demand_io.as_mut() {
                io.restore_state(r)?;
            }
            self.invocations = r.u64()?;
            self.stores_applied = r.u64()?;
            self.faulting_applied = r.u64()?;
            self.pages_resolved = r.u64()?;
            self.processes_killed = r.u64()?;
            self.transient_retries = r.u64()?;
            self.transient_recovered = r.u64()?;
            self.backoff_cycles = r.u64()?;
            self.retry_exhausted = r.u64()?;
            self.kill_discarded = r.u64()?;
            self.silently_dropped = r.u64()?;
            self.continuation_invocations = r.u64()?;
            self.continuation_dispatch_cycles = r.u64()?;
            Ok(())
        })
    }

    /// Handles one imprecise store exception for `core`, starting at
    /// `now` (which should already include the FSBC drain receipt's
    /// `ready_at`).
    ///
    /// Implements §6.2's minimal handler: for each FSB entry, mark the
    /// corresponding EInject page non-faulting, perform the store with a
    /// normal store instruction (functionally: write `mem`), and
    /// increment the head pointer; repeat until head catches tail.
    /// Entries whose error code is [`irrecoverable`](ExceptionKind) kill
    /// the process: remaining stores are discarded. A store whose
    /// re-issue is *still* denied after resolution (a transient bus
    /// error) is retried with exponential backoff; exhausting the budget
    /// also kills the process.
    ///
    /// Events are recorded into `monitor` (GET, S_OS, RESOLVE) when one is
    /// supplied, so the Table 5 contract can be audited after the run.
    pub fn handle_imprecise(
        &mut self,
        core: CoreId,
        fsb: &mut Fsb,
        resolver: &dyn FaultResolver,
        mem: &mut FlatMemory,
        now: Cycle,
        monitor: Option<&mut ContractMonitor>,
    ) -> HandlerOutcome {
        self.handle_imprecise_chunk(core, fsb, resolver, mem, now, monitor, false)
    }

    /// [`handle_imprecise`] with explicit chunk position: `continuation`
    /// marks an invocation past the first chunk of one early-drain
    /// episode. With [`RecoveryHardening::chunk_continuation`] set,
    /// continuations re-enter through a warm handler path and pay only
    /// `dispatch_overhead / 8` — the episode state is already pinned, so
    /// the full dispatch/context-switch bill would be pure stall
    /// amplification for an attacker who forces many tiny chunks.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_imprecise_chunk(
        &mut self,
        core: CoreId,
        fsb: &mut Fsb,
        resolver: &dyn FaultResolver,
        mem: &mut FlatMemory,
        now: Cycle,
        mut monitor: Option<&mut ContractMonitor>,
        continuation: bool,
    ) -> HandlerOutcome {
        self.invocations += 1;
        let dispatch = if continuation && self.costs.hardening.chunk_continuation {
            self.costs.dispatch_overhead / 8
        } else {
            self.costs.dispatch_overhead
        };
        if continuation {
            self.continuation_invocations += 1;
            self.continuation_dispatch_cycles += dispatch;
        }
        let mut t = now + dispatch;
        let mut breakdown = OverheadBreakdown {
            uarch: 0,
            apply: 0,
            other_os: dispatch,
        };
        let mut applied = 0usize;
        let mut resolved_pages: HashSet<PageId> = HashSet::new();
        let mut terminated = false;
        let mut discarded = 0usize;

        while let Some(entry) = fsb.pop_head() {
            if let Some(m) = monitor.as_deref_mut() {
                m.record(OrderEvent::Get { core, entry });
            }
            if entry.error == ExceptionKind::SegmentationFault.error_code()
                || entry.error == ExceptionKind::MachineCheck.error_code()
            {
                // Irrecoverable: terminate; discard the rest (§5.3).
                terminated = true;
                self.processes_killed += 1;
                discarded += 1;
                while fsb.pop_head().is_some() {
                    discarded += 1;
                }
                break;
            }
            // Resolve the cause once per distinct page. Entries with a
            // zero error code were drained alongside a faulting store
            // (same-stream) — their target page may nonetheless be
            // faulting, and applying them with a normal kernel store
            // would fault precisely, so the kernel resolves first.
            let page = entry.addr.page();
            let was_faulting = entry.error != ErrorCode(0) || resolver.is_faulting(entry.addr);
            if was_faulting {
                self.faulting_applied += 1;
                if resolved_pages.insert(page) {
                    resolver.resolve(entry.addr);
                    t += self.costs.resolve_per_page;
                    breakdown.other_os += self.costs.resolve_per_page;
                }
            }
            // Apply the store in retrieved order (Table 5 rule 3). The
            // kernel's store is itself a memory access: if the cause is
            // still present (a transient bus error resolution cannot
            // clear), retry with exponential backoff before giving up.
            match self.apply_with_retry(core, &entry, resolver, mem, &mut t, &mut breakdown) {
                Ok(()) => {
                    applied += 1;
                    self.stores_applied += 1;
                    if let Some(m) = monitor.as_deref_mut() {
                        m.record(OrderEvent::Sos {
                            core,
                            addr: entry.addr,
                        });
                    }
                }
                Err(_) => {
                    // Retry budget exhausted (or the re-issue came back
                    // irrecoverable): the store cannot be made visible,
                    // so the process dies rather than lose it silently.
                    terminated = true;
                    self.processes_killed += 1;
                    discarded += 1;
                    while fsb.pop_head().is_some() {
                        discarded += 1;
                    }
                    break;
                }
            }
        }
        self.kill_discarded += discarded as u64;
        self.pages_resolved += resolved_pages.len() as u64;
        // Demand-paging: one batched IO submission for every resolved
        // page; the program resumes only when the slowest page-in lands.
        let mut io_cycles = 0;
        if let Some(io) = self.demand_io.as_mut() {
            if !resolved_pages.is_empty() {
                let done = io.batched(resolved_pages.len(), t);
                io_cycles = done - t;
                t = done;
            }
        }
        // A killed process discards its remaining stores, so the episode
        // never reaches the "all faulting stores resolved" state the
        // RESOLVE event asserts — recording it would (correctly) trip the
        // contract monitor's unapplied-stores check.
        if !terminated {
            if let Some(m) = monitor {
                m.record(OrderEvent::Resolve { core });
            }
        }
        HandlerOutcome {
            resume_at: t,
            applied,
            pages_resolved: resolved_pages.len(),
            breakdown,
            terminated,
            discarded,
            io_cycles,
        }
    }

    /// Re-issues one drained store as a kernel store. A denial of the
    /// re-issue is retried up to `retry_attempts` times with exponential
    /// backoff starting at `retry_backoff_base` cycles (saturating, and
    /// jittered under [`RecoveryHardening::jittered_backoff`] — see
    /// [`retry_backoff`]); the cause heals underneath (transient faults
    /// absorb denials) or the budget runs out.
    ///
    /// On exhaustion, behaviour splits on
    /// [`RecoveryHardening::kill_on_retry_exhaustion`]: hardened kernels
    /// return the error and the caller kills the process; the unhardened
    /// kernel *silently drops* the store — it reports success without
    /// writing memory, keeping every counter consistent with the lie.
    /// That is the architectural-corruption seam the adversary's
    /// applied-visibility audit exists to catch.
    ///
    /// # Errors
    ///
    /// [`SimError::RetryExhausted`] when the store still faults after the
    /// full budget (hardened), or immediately if a re-issue comes back
    /// with an irrecoverable exception — either way the caller kills the
    /// process.
    fn apply_with_retry(
        &mut self,
        core: CoreId,
        entry: &FaultingStoreEntry,
        resolver: &dyn FaultResolver,
        mem: &mut FlatMemory,
        t: &mut Cycle,
        breakdown: &mut OverheadBreakdown,
    ) -> Result<(), SimError> {
        let mut attempts = 0u32;
        loop {
            match resolver.check(entry.addr, true) {
                None => {
                    mem.write(entry.addr, entry.data, entry.mask);
                    *t += self.costs.apply_per_store;
                    breakdown.apply += self.costs.apply_per_store;
                    if attempts > 0 {
                        self.transient_recovered += 1;
                    }
                    return Ok(());
                }
                Some(kind) if kind.is_recoverable() => {
                    attempts += 1;
                    self.transient_retries += 1;
                    if attempts > self.costs.retry_attempts {
                        self.retry_exhausted += 1;
                        if self.costs.hardening.kill_on_retry_exhaustion {
                            return Err(SimError::RetryExhausted {
                                core,
                                addr: entry.addr,
                                attempts,
                            });
                        }
                        // Unhardened: pretend the store applied. No
                        // memory write, no error — the caller records
                        // S_OS and bumps `stores_applied` as usual, so
                        // every conservation invariant still balances.
                        self.silently_dropped += 1;
                        *t += self.costs.apply_per_store;
                        breakdown.apply += self.costs.apply_per_store;
                        return Ok(());
                    }
                    let backoff = retry_backoff(&self.costs, core, entry.addr, attempts);
                    self.backoff_cycles = self.backoff_cycles.saturating_add(backoff);
                    *t = t.saturating_add(backoff);
                    breakdown.other_os = breakdown.other_os.saturating_add(backoff);
                }
                Some(_) => {
                    return Err(SimError::RetryExhausted {
                        core,
                        addr: entry.addr,
                        attempts,
                    });
                }
            }
        }
    }

    /// Handles a *precise* exception (faulting load/atomic): resolve the
    /// cause and return the resume time. No stores to apply.
    pub fn handle_precise(
        &mut self,
        _core: CoreId,
        addr: ise_types::addr::Addr,
        kind: ExceptionKind,
        resolver: &dyn FaultResolver,
        now: Cycle,
    ) -> HandlerOutcome {
        self.invocations += 1;
        let mut t = now + self.costs.dispatch_overhead;
        let mut terminated = false;
        if kind.is_recoverable() {
            resolver.resolve(addr);
            self.pages_resolved += 1;
            t += self.costs.resolve_per_page;
        } else {
            terminated = true;
            self.processes_killed += 1;
        }
        let mut io_cycles = 0;
        if kind.is_recoverable() {
            if let Some(io) = self.demand_io.as_mut() {
                let done = io.serial(1, t);
                io_cycles = done - t;
                t = done;
            }
        }
        HandlerOutcome {
            resume_at: t,
            applied: 0,
            pages_resolved: usize::from(kind.is_recoverable()),
            breakdown: OverheadBreakdown {
                uarch: 0,
                apply: 0,
                other_os: t - now - io_cycles,
            },
            terminated,
            discarded: 0,
            io_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_core::EInject;
    use ise_types::addr::{Addr, ByteMask, PAGE_SIZE};
    use ise_types::FaultingStoreEntry;

    fn setup() -> (OsKernel, Fsb, EInject, FlatMemory) {
        (
            OsKernel::new(OsCostConfig::isca23()),
            Fsb::new(Addr::new(0x8000_0000), 32),
            EInject::new(Addr::new(0x10_0000), 64 * PAGE_SIZE),
            FlatMemory::new(),
        )
    }

    fn faulting_entry(addr: Addr, data: u64) -> FaultingStoreEntry {
        FaultingStoreEntry::new(
            addr,
            data,
            ByteMask::FULL,
            ExceptionKind::BusError.error_code(),
        )
    }

    #[test]
    fn handler_applies_all_stores_in_order_and_clears_pages() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a0 = Addr::new(0x10_0000);
        let a1 = Addr::new(0x10_0000 + PAGE_SIZE);
        einject.set_faulting(a0);
        einject.set_faulting(a1);
        fsb.push(faulting_entry(a0, 11)).unwrap();
        fsb.push(FaultingStoreEntry::non_faulting(a1, 22, ByteMask::FULL))
            .unwrap();
        let mut mon = ContractMonitor::new();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, Some(&mut mon));
        assert_eq!(out.applied, 2);
        assert_eq!(
            out.pages_resolved, 2,
            "non-faulting entry on a faulting page resolves too"
        );
        assert!(!out.terminated);
        assert_eq!(mem.read(a0), 11);
        assert_eq!(mem.read(a1), 22);
        assert!(!einject.is_faulting(a0));
        assert!(!einject.is_faulting(a1));
        assert!(fsb.is_empty());
        // The recorded GET/S_OS/RESOLVE sequence satisfies the PC
        // contract (PUTs added here to complete the log).
        let mut full = ContractMonitor::new();
        full.record(OrderEvent::Put {
            core: CoreId(0),
            entry: faulting_entry(a0, 11),
        });
        full.record(OrderEvent::Put {
            core: CoreId(0),
            entry: FaultingStoreEntry::non_faulting(a1, 22, ByteMask::FULL),
        });
        for e in mon.log() {
            full.record(*e);
        }
        assert_eq!(full.check(ise_types::ConsistencyModel::Pc), Ok(()));
    }

    #[test]
    fn resume_only_after_all_work() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        fsb.push(faulting_entry(a, 1)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 100, None);
        let c = OsCostConfig::isca23();
        assert_eq!(
            out.resume_at,
            100 + c.dispatch_overhead + c.resolve_per_page + c.apply_per_store
        );
    }

    #[test]
    fn batching_amortizes_dispatch() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        // 8 faulting stores to the same page: resolved once, applied 8x,
        // dispatched once.
        let base = Addr::new(0x10_0000);
        einject.set_faulting(base);
        for i in 0..8 {
            fsb.push(faulting_entry(base.offset(i * 8), i)).unwrap();
        }
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        let c = OsCostConfig::isca23();
        assert_eq!(out.pages_resolved, 1);
        assert_eq!(
            out.breakdown.other_os,
            c.dispatch_overhead + c.resolve_per_page
        );
        assert_eq!(out.breakdown.apply, 8 * c.apply_per_store);
        // Per-store cost well under the unbatched ~600 cycles.
        assert!(out.breakdown.per_store(8) < 150.0);
    }

    #[test]
    fn unbatched_per_store_cost_near_600_cycles() {
        // One store per invocation, as in Fig. 5's "without batching".
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        fsb.push(faulting_entry(a, 1)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        let total = out.breakdown.total();
        assert!(
            (450..=700).contains(&total),
            "unbatched per-store OS cost should be ≈600 cycles, got {total}"
        );
    }

    #[test]
    fn irrecoverable_kills_and_discards() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a = Addr::new(0x10_0000);
        fsb.push(FaultingStoreEntry::new(
            a,
            1,
            ByteMask::FULL,
            ExceptionKind::SegmentationFault.error_code(),
        ))
        .unwrap();
        fsb.push(faulting_entry(a.offset(8), 2)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        assert!(out.terminated);
        assert_eq!(out.applied, 0);
        assert!(fsb.is_empty(), "remaining stores are discarded");
        assert_eq!(mem.read(a), 0, "discarded stores never reach memory");
        assert_eq!(os.processes_killed(), 1);
    }

    #[test]
    fn transient_bus_error_recovered_by_retry() {
        use ise_core::FaultPlan;
        use ise_types::{FaultKind, FaultSpec};
        let mut os = OsKernel::new(OsCostConfig::isca23());
        let mut fsb = Fsb::new(Addr::new(0x8000_0000), 32);
        let mut mem = FlatMemory::new();
        let a = Addr::new(0x10_0000);
        let inj = FaultPlan::new(1)
            .page(
                a.page(),
                FaultSpec::bus_error(FaultKind::Transient { clears_after: 2 }),
            )
            .build();
        fsb.push(faulting_entry(a, 77)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &inj, &mut mem, 0, None);
        assert!(!out.terminated, "transient faults must not kill");
        assert_eq!(out.applied, 1);
        assert_eq!(mem.read(a), 77);
        assert_eq!(os.transient_retries(), 2);
        assert_eq!(os.transient_recovered(), 1);
        let c = OsCostConfig::isca23();
        // Two backoffs (base then doubled, plus deterministic jitter under
        // the default-hardened config) on top of the usual costs — the
        // public ladder helper computes the exact same cycles the kernel
        // charged.
        let ladder = retry_backoff(&c, CoreId(0), a, 1) + retry_backoff(&c, CoreId(0), a, 2);
        assert_eq!(
            out.breakdown.other_os,
            c.dispatch_overhead + c.resolve_per_page + ladder
        );
        assert_eq!(os.backoff_cycles(), ladder);
        assert!(
            ladder >= c.retry_backoff_base + 2 * c.retry_backoff_base,
            "jitter only ever adds to the exponential floor"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let c = OsCostConfig::isca23();
        let a = Addr::new(0x10_0000);
        let b1 = retry_backoff(&c, CoreId(0), a, 1);
        assert_eq!(b1, retry_backoff(&c, CoreId(0), a, 1));
        assert!(b1 >= c.retry_backoff_base);
        assert!(b1 < 2 * c.retry_backoff_base, "jitter stays under one base");
        // Unhardened config: the bare exponential ladder, no jitter.
        let plain = c.with_hardening(ise_types::RecoveryHardening::unhardened());
        assert_eq!(retry_backoff(&plain, CoreId(0), a, 1), c.retry_backoff_base);
        assert_eq!(
            retry_backoff(&plain, CoreId(0), a, 3),
            4 * c.retry_backoff_base
        );
        // Different cores desynchronise.
        assert_ne!(
            retry_backoff(&c, CoreId(0), a, 1),
            retry_backoff(&c, CoreId(1), a, 1),
        );
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing_the_shift() {
        // Attacker-chosen config: a huge retry budget walks the shift
        // past 63 bits. Before the fix `base << (attempts - 1)` was a
        // shift-width overflow (debug panic, silent wrap in release);
        // now the ladder pins at u64::MAX.
        let mut c = OsCostConfig::isca23();
        c.retry_attempts = 100;
        c.hardening = ise_types::RecoveryHardening::unhardened();
        let a = Addr::new(0x10_0000);
        assert_eq!(retry_backoff(&c, CoreId(0), a, 58), 64 << 57);
        assert_eq!(retry_backoff(&c, CoreId(0), a, 59), u64::MAX);
        assert_eq!(retry_backoff(&c, CoreId(0), a, 65), u64::MAX);
        assert_eq!(retry_backoff(&c, CoreId(0), a, 100), u64::MAX);
        // Value overflow short of shift-width overflow saturates too.
        c.retry_backoff_base = u64::MAX / 2 + 1;
        assert_eq!(retry_backoff(&c, CoreId(0), a, 2), u64::MAX);
        // Degenerate base never shifts at all.
        c.retry_backoff_base = 0;
        assert_eq!(retry_backoff(&c, CoreId(0), a, 100), 0);
    }

    #[test]
    fn saturated_ladder_runs_to_completion_without_panicking() {
        use ise_core::FaultPlan;
        use ise_types::{FaultKind, FaultSpec};
        let mut c = OsCostConfig::isca23();
        c.retry_attempts = 70; // would shift past 63 bits pre-fix
        let mut os = OsKernel::new(c);
        let mut fsb = Fsb::new(Addr::new(0x8000_0000), 32);
        let mut mem = FlatMemory::new();
        let a = Addr::new(0x10_0000);
        let inj = FaultPlan::new(1)
            .page(
                a.page(),
                FaultSpec::bus_error(FaultKind::Transient { clears_after: 1000 }),
            )
            .build();
        fsb.push(faulting_entry(a, 77)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &inj, &mut mem, 0, None);
        assert!(out.terminated, "hardened kernel still kills on exhaustion");
        assert_eq!(os.retry_exhausted(), 1);
        assert_eq!(
            os.backoff_cycles(),
            u64::MAX,
            "accumulated backoff saturates rather than wrapping"
        );
    }

    #[test]
    fn unhardened_kernel_silently_drops_on_exhaustion() {
        use ise_core::FaultPlan;
        use ise_types::{FaultKind, FaultSpec, RecoveryHardening};
        let c = OsCostConfig::isca23().with_hardening(RecoveryHardening::unhardened());
        let mut os = OsKernel::new(c);
        let mut fsb = Fsb::new(Addr::new(0x8000_0000), 32);
        let mut mem = FlatMemory::new();
        let a = Addr::new(0x10_0000);
        let inj = FaultPlan::new(1)
            .page(
                a.page(),
                FaultSpec::bus_error(FaultKind::Transient { clears_after: 100 }),
            )
            .build();
        fsb.push(faulting_entry(a, 77)).unwrap();
        let mut mon = ContractMonitor::new();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &inj, &mut mem, 0, Some(&mut mon));
        // The lie: success reported everywhere...
        assert!(!out.terminated);
        assert_eq!(out.applied, 1);
        assert_eq!(os.stores_applied(), 1);
        assert!(
            mon.log()
                .iter()
                .any(|e| matches!(e, OrderEvent::Sos { .. })),
            "the unhardened kernel records S_OS for the dropped store"
        );
        // ...but memory never saw the value.
        assert_eq!(mem.read(a), 0);
        assert_eq!(os.silently_dropped(), 1);
        assert_eq!(os.retry_exhausted(), 1);
        assert_eq!(os.processes_killed(), 0);
    }

    #[test]
    fn continuation_chunks_pay_reduced_dispatch_when_hardened() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        fsb.push(faulting_entry(a, 1)).unwrap();
        let out = os.handle_imprecise_chunk(CoreId(0), &mut fsb, &einject, &mut mem, 0, None, true);
        let c = OsCostConfig::isca23();
        assert_eq!(
            out.breakdown.other_os,
            c.dispatch_overhead / 8 + c.resolve_per_page,
            "hardened continuation re-enters through the warm path"
        );
        assert_eq!(os.continuation_invocations(), 1);
        assert_eq!(os.continuation_dispatch_cycles(), c.dispatch_overhead / 8);
        // Unhardened: full dispatch on every chunk.
        let plain = c.with_hardening(ise_types::RecoveryHardening::unhardened());
        let mut os2 = OsKernel::new(plain);
        einject.set_faulting(a);
        fsb.push(faulting_entry(a, 1)).unwrap();
        let out2 =
            os2.handle_imprecise_chunk(CoreId(0), &mut fsb, &einject, &mut mem, 0, None, true);
        assert_eq!(
            out2.breakdown.other_os,
            c.dispatch_overhead + c.resolve_per_page
        );
        assert_eq!(os2.continuation_dispatch_cycles(), c.dispatch_overhead);
    }

    #[test]
    fn kill_path_reports_discarded_entries() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a = Addr::new(0x10_0000);
        fsb.push(faulting_entry(a, 1)).unwrap();
        fsb.push(FaultingStoreEntry::new(
            a.offset(8),
            2,
            ByteMask::FULL,
            ExceptionKind::MachineCheck.error_code(),
        ))
        .unwrap();
        fsb.push(faulting_entry(a.offset(16), 3)).unwrap();
        fsb.push(faulting_entry(a.offset(24), 4)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        assert!(out.terminated);
        assert_eq!(out.applied, 1, "entries before the machine check apply");
        assert_eq!(
            out.discarded, 3,
            "the triggering entry plus the drained remainder"
        );
        assert_eq!(os.kill_discarded(), 3);
    }

    #[test]
    fn retry_budget_exhaustion_kills() {
        use ise_core::FaultPlan;
        use ise_types::{FaultKind, FaultSpec};
        let mut os = OsKernel::new(OsCostConfig::isca23());
        let mut fsb = Fsb::new(Addr::new(0x8000_0000), 32);
        let mut mem = FlatMemory::new();
        let a = Addr::new(0x10_0000);
        let inj = FaultPlan::new(1)
            .page(
                a.page(),
                FaultSpec::bus_error(FaultKind::Transient { clears_after: 100 }),
            )
            .build();
        fsb.push(faulting_entry(a, 77)).unwrap();
        fsb.push(faulting_entry(a.offset(8), 78)).unwrap();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &inj, &mut mem, 0, None);
        assert!(out.terminated);
        assert_eq!(out.applied, 0);
        assert!(fsb.is_empty(), "remaining stores discarded on kill");
        assert_eq!(mem.read(a), 0);
        assert_eq!(os.processes_killed(), 1);
        assert_eq!(
            os.transient_retries(),
            u64::from(OsCostConfig::isca23().retry_attempts) + 1
        );
        assert_eq!(os.transient_recovered(), 0);
    }

    #[test]
    fn kill_skips_resolve_event() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        fsb.push(FaultingStoreEntry::new(
            Addr::new(0x10_0000),
            1,
            ByteMask::FULL,
            ExceptionKind::SegmentationFault.error_code(),
        ))
        .unwrap();
        let mut mon = ContractMonitor::new();
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, Some(&mut mon));
        assert!(out.terminated);
        assert!(
            !mon.log()
                .iter()
                .any(|e| matches!(e, OrderEvent::Resolve { .. })),
            "a killed episode never reaches the resolved state"
        );
    }

    #[test]
    fn precise_handler_resolves_recoverable() {
        let (mut os, _fsb, einject, _mem) = setup();
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        let out = os.handle_precise(CoreId(0), a, ExceptionKind::BusError, &einject, 50);
        assert!(!out.terminated);
        assert!(!einject.is_faulting(a));
        assert!(out.resume_at > 50);
    }

    #[test]
    fn precise_handler_kills_on_segfault() {
        let (mut os, _fsb, einject, _mem) = setup();
        let out = os.handle_precise(
            CoreId(0),
            Addr::new(0),
            ExceptionKind::SegmentationFault,
            &einject,
            0,
        );
        assert!(out.terminated);
    }

    #[test]
    fn demand_paging_ios_overlap_within_one_invocation() {
        let (mut os0, _, _, _) = setup();
        let mut os = os0.clone().with_demand_paging_io(20_000);
        let _ = &mut os0;
        let mut fsb = Fsb::new(Addr::new(0x8000_0000), 32);
        let einject = EInject::new(Addr::new(0x10_0000), 64 * PAGE_SIZE);
        let mut mem = FlatMemory::new();
        // 8 faulting stores on 8 distinct pages -> 8 page-ins, batched.
        for i in 0..8u64 {
            let a = Addr::new(0x10_0000 + i * PAGE_SIZE);
            einject.set_faulting(a);
            fsb.push(faulting_entry(a, i)).unwrap();
        }
        let out = os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        assert_eq!(out.pages_resolved, 8);
        assert_eq!(os.ios_issued(), 8);
        // Batched: far less than 8 serial IOs.
        assert!(out.io_cycles >= 20_000);
        assert!(
            out.io_cycles < 8 * 20_000 / 2,
            "io {} not overlapped",
            out.io_cycles
        );
        assert!(out.resume_at >= out.io_cycles);
    }

    #[test]
    fn precise_demand_paging_is_serial() {
        let (os0, _, einject, _) = setup();
        let mut os = os0.clone().with_demand_paging_io(20_000);
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        let out = os.handle_precise(CoreId(0), a, ExceptionKind::PageFault, &einject, 0);
        assert_eq!(out.io_cycles, 20_000, "one precise fault = one full IO");
        assert_eq!(os.ios_issued(), 1);
    }

    #[test]
    fn persist_round_trip_keeps_every_counter() {
        use ise_types::persist::{Reader, Writer};
        let (os0, _, einject, _) = setup();
        let mut os = os0.clone().with_demand_paging_io(20_000);
        let mut fsb = Fsb::new(Addr::new(0x8000_0000), 32);
        let mut mem = FlatMemory::new();
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        fsb.push(faulting_entry(a, 1)).unwrap();
        os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        let mut w = Writer::container();
        os.save_state(&mut w);
        let bytes = w.finish();
        let mut back = OsKernel::new(OsCostConfig::isca23()).with_demand_paging_io(20_000);
        let mut r = Reader::container(&bytes).unwrap();
        back.restore_state(&mut r).unwrap();
        let mut w2 = Writer::container();
        back.save_state(&mut w2);
        assert_eq!(w2.finish(), bytes);
        assert_eq!(back.invocations(), os.invocations());
        assert_eq!(back.stores_applied(), os.stores_applied());
        assert_eq!(back.pages_resolved(), os.pages_resolved());
        assert_eq!(back.ios_issued(), os.ios_issued());
        // Telemetry export of the restored kernel is indistinguishable.
        let mut reg_a = ise_telemetry::Registry::new();
        let mut reg_b = ise_telemetry::Registry::new();
        os.export_telemetry(&mut reg_a);
        back.export_telemetry(&mut reg_b);
        assert_eq!(reg_a.render(), reg_b.render());
        // And the restored kernel keeps handling identically.
        einject.set_faulting(a);
        fsb.push(faulting_entry(a.offset(8), 2)).unwrap();
        let out = back.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        assert_eq!(out.applied, 1);
        assert_eq!(back.invocations(), 2);
    }

    #[test]
    fn persist_restore_rejects_io_configuration_mismatch() {
        use ise_types::persist::{PersistError, Reader, Writer};
        let (os, _, _, _) = setup(); // no demand IO
        let mut w = Writer::container();
        os.save_state(&mut w);
        let bytes = w.finish();
        let mut with_io = OsKernel::new(OsCostConfig::isca23()).with_demand_paging_io(20_000);
        let mut r = Reader::container(&bytes).unwrap();
        assert!(matches!(
            with_io.restore_state(&mut r),
            Err(PersistError::Corrupt("demand-IO configuration mismatch"))
        ));
    }

    #[test]
    fn stats_accumulate() {
        let (mut os, mut fsb, einject, mut mem) = setup();
        let a = Addr::new(0x10_0000);
        einject.set_faulting(a);
        fsb.push(faulting_entry(a, 1)).unwrap();
        os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        fsb.push(faulting_entry(a.offset(8), 2)).unwrap();
        os.handle_imprecise(CoreId(0), &mut fsb, &einject, &mut mem, 0, None);
        assert_eq!(os.invocations(), 2);
        assert_eq!(os.stores_applied(), 2);
    }
}
