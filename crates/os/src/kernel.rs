//! Kernel-side imprecise exceptions and fence containment (paper §5.4).
//!
//! When the OS itself stores into accelerator-backed memory (the paper's
//! example: `copy_to_user` where the user buffer is allocated from the
//! accelerator), the *kernel* can generate imprecise store exceptions.
//! The paper's discipline: enhance each such function with a trailing
//! fence so that "any potential OS imprecise exceptions are properly
//! reported and handled" before the function returns — fully containing
//! them — and issue a fence before returning to user mode so no kernel
//! exception can leak into the application.
//!
//! [`ContainedKernelCopy`] models an enhanced `copy_to_user`: kernel
//! stores are buffered; the closing fence drains them, detects any
//! imprecise exceptions against the fault oracle, routes them through the
//! kernel's own FSB and handler, and only then returns. The outcome
//! proves containment: no pending faulting stores survive the call.

use crate::handler::OsKernel;
use ise_core::{FaultResolver, Fsb};
use ise_engine::Cycle;
use ise_mem::FlatMemory;
use ise_types::addr::{Addr, ByteMask};
use ise_types::{CoreId, FaultingStoreEntry};

/// The result of one contained kernel copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCopyOutcome {
    /// Cycle at which the copy (including the containment fence and any
    /// exception handling) completed.
    pub done_at: Cycle,
    /// Imprecise exceptions the kernel took and contained.
    pub contained_exceptions: u64,
    /// Words written.
    pub words: usize,
}

/// An enhanced, self-containing kernel copy primitive.
pub struct ContainedKernelCopy<'a> {
    os: &'a mut OsKernel,
    fsb: &'a mut Fsb,
    resolver: &'a dyn FaultResolver,
    core: CoreId,
}

impl std::fmt::Debug for ContainedKernelCopy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContainedKernelCopy")
            .field("core", &self.core)
            .finish_non_exhaustive()
    }
}

impl<'a> ContainedKernelCopy<'a> {
    /// Prepares a contained copy executing on `core`, using the kernel's
    /// FSB and the system's fault oracle.
    pub fn new(
        os: &'a mut OsKernel,
        fsb: &'a mut Fsb,
        resolver: &'a dyn FaultResolver,
        core: CoreId,
    ) -> Self {
        ContainedKernelCopy {
            os,
            fsb,
            resolver,
            core,
        }
    }

    /// `copy_to_user(dst, data)` followed by the §5.4 containment fence.
    ///
    /// Kernel stores that hit faulting pages are detected at the fence,
    /// drained (same-stream) into the kernel FSB, and handled *before*
    /// this function returns; the words are guaranteed visible in `mem`
    /// on return.
    ///
    /// # Panics
    ///
    /// Panics if the kernel handler terminates (kernel copies never
    /// target irrecoverable regions by construction).
    pub fn copy_to_user(
        &mut self,
        dst: Addr,
        data: &[u64],
        mem: &mut FlatMemory,
        now: Cycle,
    ) -> KernelCopyOutcome {
        // Kernel store buffer: stores retire, drains detect faults.
        let mut t = now;
        let mut pending: Vec<FaultingStoreEntry> = Vec::new();
        let mut fault_seen = false;
        for (i, &word) in data.iter().enumerate() {
            let addr = dst.offset(i as u64 * 8);
            t += 1; // one store per cycle through the kernel SB
            if let Some(kind) = self.resolver.check(addr, true) {
                debug_assert!(kind.is_recoverable(), "kernel copy hit irrecoverable fault");
                fault_seen = true;
                pending.push(FaultingStoreEntry::new(
                    addr,
                    word,
                    ByteMask::FULL,
                    kind.error_code(),
                ));
            } else if fault_seen {
                // Same-stream: younger kernel stores follow the faulting
                // one through the interface.
                pending.push(FaultingStoreEntry::non_faulting(addr, word, ByteMask::FULL));
            } else {
                mem.write(addr, word, ByteMask::FULL);
            }
        }

        // The §5.4 containment fence: report and handle everything now.
        let mut contained = 0;
        if !pending.is_empty() {
            for e in &pending {
                self.fsb.push(*e).expect("kernel FSB sized for the copy");
            }
            let out = self
                .os
                .handle_imprecise(self.core, self.fsb, self.resolver, mem, t, None);
            assert!(!out.terminated, "kernel containment cannot kill the kernel");
            t = out.resume_at;
            contained = 1;
        }
        debug_assert!(
            self.fsb.is_empty(),
            "containment fence leaves nothing pending"
        );
        KernelCopyOutcome {
            done_at: t,
            contained_exceptions: contained,
            words: data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_core::EInject;
    use ise_types::addr::PAGE_SIZE;
    use ise_types::config::OsCostConfig;

    fn setup() -> (OsKernel, Fsb, EInject) {
        (
            OsKernel::new(OsCostConfig::isca23()),
            Fsb::new(Addr::new(0x2000_0000), 64),
            EInject::new(Addr::new(0x4000_0000), 16 * PAGE_SIZE),
        )
    }

    #[test]
    fn clean_copy_is_plain_stores() {
        let (mut os, mut fsb, einject) = setup();
        let mut mem = FlatMemory::new();
        let mut k = ContainedKernelCopy::new(&mut os, &mut fsb, &einject, CoreId(0));
        let out = k.copy_to_user(Addr::new(0x4000_0000), &[1, 2, 3], &mut mem, 100);
        assert_eq!(out.contained_exceptions, 0);
        assert_eq!(out.words, 3);
        assert_eq!(out.done_at, 103);
        assert_eq!(mem.read(Addr::new(0x4000_0010)), 3);
    }

    #[test]
    fn faulting_copy_is_contained_by_the_fence() {
        let (mut os, mut fsb, einject) = setup();
        let dst = Addr::new(0x4000_0000);
        einject.set_faulting(dst);
        let mut mem = FlatMemory::new();
        let mut k = ContainedKernelCopy::new(&mut os, &mut fsb, &einject, CoreId(0));
        let out = k.copy_to_user(dst, &[7, 8, 9], &mut mem, 0);
        assert_eq!(out.contained_exceptions, 1);
        // All words visible on return: the handler applied them in order.
        assert_eq!(mem.read(dst), 7);
        assert_eq!(mem.read(dst.offset(8)), 8);
        assert_eq!(mem.read(dst.offset(16)), 9);
        // And the cause is resolved: a second copy is clean.
        let out2 = k.copy_to_user(dst, &[10], &mut mem, out.done_at);
        assert_eq!(out2.contained_exceptions, 0);
        assert!(!einject.is_faulting(dst));
    }

    #[test]
    fn containment_pays_handler_latency() {
        let (mut os, mut fsb, einject) = setup();
        let dst = Addr::new(0x4000_0000);
        let mut mem = FlatMemory::new();
        let clean = ContainedKernelCopy::new(&mut os, &mut fsb, &einject, CoreId(0))
            .copy_to_user(dst, &[1; 8], &mut mem, 0)
            .done_at;
        einject.set_faulting(dst);
        let faulting = ContainedKernelCopy::new(&mut os, &mut fsb, &einject, CoreId(0))
            .copy_to_user(dst, &[1; 8], &mut mem, 0)
            .done_at;
        assert!(
            faulting > clean + OsCostConfig::isca23().dispatch_overhead / 2,
            "containment must cost handler time: {faulting} vs {clean}"
        );
    }

    #[test]
    fn same_stream_order_holds_across_the_fault() {
        // Words before the fault go straight to memory; the faulting word
        // and everything after it flow through the FSB — and the final
        // memory image is still exactly the copied data.
        let (mut os, mut fsb, einject) = setup();
        let dst = Addr::new(0x4000_0000);
        // Only the second page faults.
        einject.set_faulting(dst.offset(PAGE_SIZE));
        let data: Vec<u64> = (0..PAGE_SIZE / 8 + 4).collect();
        let mut mem = FlatMemory::new();
        let mut k = ContainedKernelCopy::new(&mut os, &mut fsb, &einject, CoreId(0));
        let out = k.copy_to_user(dst, &data, &mut mem, 0);
        assert_eq!(out.contained_exceptions, 1);
        for (i, &w) in data.iter().enumerate() {
            assert_eq!(mem.read(dst.offset(i as u64 * 8)), w, "word {i}");
        }
    }
}
