//! Demand-paging IO and the batching optimization (paper §5.3).
//!
//! "Within a single invocation of the imprecise store exception handler,
//! the OS can schedule multiple IO requests for all the faulting stores
//! covered by the exception, effectively overlapping IO latencies and
//! improving IO throughput." [`IoScheduler`] models both regimes: serial
//! (one precise page fault at a time) and batched (one handler invocation
//! issuing overlapping IOs).

use ise_engine::Cycle;

/// Cycles between consecutive IO submissions within one batch (queueing
/// one request on the device).
pub const IO_ISSUE_GAP: Cycle = 200;

/// Models a storage device servicing page-in requests.
#[derive(Debug, Clone)]
pub struct IoScheduler {
    io_latency: Cycle,
    ios_issued: u64,
}

impl IoScheduler {
    /// Creates a scheduler whose device takes `io_latency` cycles per
    /// request (tens of ms in reality; scaled in simulation).
    ///
    /// # Panics
    ///
    /// Panics if `io_latency` is zero.
    pub fn new(io_latency: Cycle) -> Self {
        assert!(io_latency > 0, "IO latency must be positive");
        IoScheduler {
            io_latency,
            ios_issued: 0,
        }
    }

    /// Total IOs issued.
    pub fn ios_issued(&self) -> u64 {
        self.ios_issued
    }

    /// Completion time of `n` page-ins issued at `now`, overlapped within
    /// one handler invocation: submissions are pipelined every
    /// [`IO_ISSUE_GAP`] cycles and the device works on them concurrently.
    pub fn batched(&mut self, n: usize, now: Cycle) -> Cycle {
        if n == 0 {
            return now;
        }
        self.ios_issued += n as u64;
        now + (n as Cycle - 1) * IO_ISSUE_GAP + self.io_latency
    }

    /// Completion time of `n` page-ins under the traditional regime: each
    /// precise page fault blocks the program, so the next IO is issued
    /// only after the previous one finished and the process resumed.
    pub fn serial(&mut self, n: usize, now: Cycle) -> Cycle {
        self.ios_issued += n as u64;
        now + n as Cycle * self.io_latency
    }

    /// Saves the device's dynamic state (the issue counter; `io_latency`
    /// is configuration the embedder rebuilds).
    pub fn save_state(&self, w: &mut ise_types::persist::Writer) {
        w.u64(self.ios_issued);
    }

    /// Restores the issue counter in place.
    pub fn restore_state(
        &mut self,
        r: &mut ise_types::persist::Reader,
    ) -> Result<(), ise_types::persist::PersistError> {
        self.ios_issued = r.u64()?;
        Ok(())
    }

    /// Speedup of the batched regime over the serial one for `n` IOs.
    pub fn batching_speedup(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let serial = n as Cycle * self.io_latency;
        let batched = (n as Cycle - 1) * IO_ISSUE_GAP + self.io_latency;
        serial as f64 / batched as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_io_costs_the_same_either_way() {
        let mut s = IoScheduler::new(20_000);
        assert_eq!(s.batched(1, 0), 20_000);
        assert_eq!(s.serial(1, 0), 20_000);
    }

    #[test]
    fn batching_overlaps_io() {
        let mut s = IoScheduler::new(20_000);
        let batched = s.batched(10, 0);
        let serial = s.serial(10, 0);
        assert!(batched < serial / 4, "batched {batched} vs serial {serial}");
        assert_eq!(s.ios_issued(), 20);
    }

    #[test]
    fn speedup_grows_with_batch_size() {
        let s = IoScheduler::new(20_000);
        assert!(s.batching_speedup(2) > 1.5);
        assert!(s.batching_speedup(32) > s.batching_speedup(2));
        assert_eq!(s.batching_speedup(0), 1.0);
    }

    #[test]
    fn persist_round_trip_keeps_issue_counter() {
        use ise_types::persist::{Reader, Writer};
        let mut s = IoScheduler::new(20_000);
        s.batched(5, 0);
        s.serial(2, 0);
        let mut w = Writer::container();
        s.save_state(&mut w);
        let bytes = w.finish();
        let mut back = IoScheduler::new(20_000);
        let mut r = Reader::container(&bytes).unwrap();
        back.restore_state(&mut r).unwrap();
        assert_eq!(back.ios_issued(), s.ios_issued());
        assert_eq!(back.batched(3, 100), s.batched(3, 100));
    }

    #[test]
    fn zero_ios_complete_immediately() {
        let mut s = IoScheduler::new(100);
        assert_eq!(s.batched(0, 42), 42);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_latency_rejected() {
        let _ = IoScheduler::new(0);
    }
}
