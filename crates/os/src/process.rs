//! Process lifecycle and interrupt/exception serialization.
//!
//! Paper §5.3: interrupts and imprecise store exceptions are serialized
//! through the Interrupt Enable (IE) bit — set automatically when a
//! handler is entered and by the OS around critical sections, and
//! **hard-wired to zero in user mode**, so pending imprecise store
//! exceptions can never be masked from user code.

use ise_types::CoreId;
use std::fmt;

/// Lifecycle state of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Scheduled and executing.
    Running,
    /// Blocked in an exception handler.
    Blocked,
    /// Terminated by an irrecoverable exception.
    Killed,
}

impl fmt::Display for ProcessState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessState::Running => "running",
            ProcessState::Blocked => "blocked",
            ProcessState::Killed => "killed",
        };
        write!(f, "{s}")
    }
}

/// One simulated process, pinned to one core (the evaluation runs one
/// workload process per core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Process {
    /// Process id.
    pub pid: u32,
    /// Core the process runs on.
    pub core: CoreId,
    /// Current state.
    pub state: ProcessState,
}

impl Process {
    /// Spawns a running process.
    pub fn spawn(pid: u32, core: CoreId) -> Self {
        Process {
            pid,
            core,
            state: ProcessState::Running,
        }
    }

    /// Blocks the process for exception handling.
    ///
    /// # Panics
    ///
    /// Panics if the process is not running.
    pub fn block(&mut self) {
        assert_eq!(
            self.state,
            ProcessState::Running,
            "only running processes block"
        );
        self.state = ProcessState::Blocked;
    }

    /// Resumes a blocked process.
    ///
    /// # Panics
    ///
    /// Panics if the process is not blocked.
    pub fn resume(&mut self) {
        assert_eq!(
            self.state,
            ProcessState::Blocked,
            "only blocked processes resume"
        );
        self.state = ProcessState::Running;
    }

    /// Terminates the process (irrecoverable exception). Idempotent:
    /// returns `true` only on the transition into `Killed`, so a second
    /// kill — e.g. an early-drain continuation racing a chunk that
    /// already terminated the episode — neither panics nor double-counts
    /// in any per-process statistic keyed on the return value.
    pub fn kill(&mut self) -> bool {
        let newly = self.state != ProcessState::Killed;
        self.state = ProcessState::Killed;
        newly
    }
}

/// The per-core IE-bit state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterruptControl {
    ie_masked: bool,
    in_handler: bool,
}

impl InterruptControl {
    /// Fresh state: exceptions deliverable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an imprecise store exception (or interrupt) may be
    /// delivered now. `user_mode` reflects the privilege level: the IE
    /// bit is hard-wired to zero in user mode, so masking is ineffective
    /// there (paper §5.3).
    pub fn can_deliver(&self, user_mode: bool) -> bool {
        user_mode || !self.ie_masked
    }

    /// Hardware sets the IE bit on handler entry, serializing further
    /// exceptions.
    ///
    /// # Panics
    ///
    /// Panics on re-entry: recursive imprecise exception handling is
    /// unsupported by design (paper §5.4).
    pub fn enter_handler(&mut self) {
        assert!(
            !self.in_handler,
            "recursive imprecise exception handlers are not supported"
        );
        self.in_handler = true;
        self.ie_masked = true;
    }

    /// OS clears the IE bit when leaving the handler.
    pub fn exit_handler(&mut self) {
        self.in_handler = false;
        self.ie_masked = false;
    }

    /// OS enters a non-interruptible critical section.
    pub fn enter_critical(&mut self) {
        self.ie_masked = true;
    }

    /// OS leaves the critical section.
    pub fn exit_critical(&mut self) {
        if !self.in_handler {
            self.ie_masked = false;
        }
    }

    /// Whether a handler is currently executing.
    pub fn in_handler(&self) -> bool {
        self.in_handler
    }
}

mod persist_impls {
    use super::*;
    use ise_types::persist::{Persist, PersistError, Reader, Writer};

    impl Persist for ProcessState {
        fn save(&self, w: &mut Writer) {
            w.u8(match self {
                ProcessState::Running => 0,
                ProcessState::Blocked => 1,
                ProcessState::Killed => 2,
            });
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(match r.u8()? {
                0 => ProcessState::Running,
                1 => ProcessState::Blocked,
                2 => ProcessState::Killed,
                _ => return Err(PersistError::Corrupt("ProcessState discriminant")),
            })
        }
    }

    impl Persist for Process {
        fn save(&self, w: &mut Writer) {
            w.u32(self.pid);
            self.core.save(w);
            self.state.save(w);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            Ok(Process {
                pid: r.u32()?,
                core: Persist::restore(r)?,
                state: Persist::restore(r)?,
            })
        }
    }

    impl Persist for InterruptControl {
        fn save(&self, w: &mut Writer) {
            w.bool(self.ie_masked);
            w.bool(self.in_handler);
        }
        fn restore(r: &mut Reader) -> Result<Self, PersistError> {
            let ie_masked = r.bool()?;
            let in_handler = r.bool()?;
            if in_handler && !ie_masked {
                return Err(PersistError::Corrupt("handler entry without IE mask"));
            }
            Ok(InterruptControl {
                ie_masked,
                in_handler,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_lifecycle() {
        let mut p = Process::spawn(1, CoreId(0));
        assert_eq!(p.state, ProcessState::Running);
        p.block();
        assert_eq!(p.state, ProcessState::Blocked);
        p.resume();
        assert_eq!(p.state, ProcessState::Running);
        assert!(p.kill(), "first kill is the real transition");
        assert_eq!(p.state, ProcessState::Killed);
    }

    #[test]
    fn kill_is_idempotent() {
        let mut p = Process::spawn(1, CoreId(0));
        assert!(p.kill());
        assert!(!p.kill(), "second kill reports already-dead");
        assert_eq!(p.state, ProcessState::Killed);
        // Killing from Blocked works too (mid-handler termination).
        let mut q = Process::spawn(2, CoreId(1));
        q.block();
        assert!(q.kill());
        assert!(!q.kill());
    }

    #[test]
    #[should_panic(expected = "only running processes block")]
    fn double_block_panics() {
        let mut p = Process::spawn(1, CoreId(0));
        p.block();
        p.block();
    }

    #[test]
    fn ie_bit_serializes_handlers() {
        let mut ic = InterruptControl::new();
        assert!(ic.can_deliver(false));
        ic.enter_handler();
        assert!(
            !ic.can_deliver(false),
            "kernel exceptions masked in handler"
        );
        ic.exit_handler();
        assert!(ic.can_deliver(false));
    }

    #[test]
    fn ie_bit_ineffective_in_user_mode() {
        let mut ic = InterruptControl::new();
        ic.enter_critical();
        // Masked for the kernel, but user mode cannot mask.
        assert!(!ic.can_deliver(false));
        assert!(ic.can_deliver(true));
    }

    #[test]
    #[should_panic(expected = "recursive")]
    fn recursive_handler_rejected() {
        let mut ic = InterruptControl::new();
        ic.enter_handler();
        ic.enter_handler();
    }

    #[test]
    fn persist_round_trips_every_state() {
        use ise_types::persist::{restore_container, save_container};
        for mutate in [
            (|_: &mut Process| {}) as fn(&mut Process),
            |p| p.block(),
            |p| {
                p.kill();
            },
        ] {
            let mut p = Process::spawn(7, CoreId(3));
            mutate(&mut p);
            let bytes = save_container(&p);
            let back: Process = restore_container(&bytes).unwrap();
            assert_eq!(back, p);
        }
        let mut ic = InterruptControl::new();
        ic.enter_handler();
        let bytes = save_container(&ic);
        let back: InterruptControl = restore_container(&bytes).unwrap();
        assert_eq!(back, ic);
        assert!(back.in_handler());
        assert!(!back.can_deliver(false));
    }

    #[test]
    fn persist_rejects_inconsistent_interrupt_state() {
        use ise_types::persist::{restore_container, save_container, PersistError};
        let ic = InterruptControl::new();
        let bytes = save_container(&ic);
        // Flip `in_handler` on while leaving `ie_masked` off: a state no
        // legal transition sequence reaches. Field bytes live right after
        // the container header; re-stamp the trailing hash.
        let mut bad = bytes.clone();
        bad[8] = 0; // ie_masked = false
        bad[9] = 1; // in_handler = true
        let off = bad.len() - 8;
        let h = ise_types::persist::fnv1a(&bad[..off]);
        bad[off..].copy_from_slice(&h.to_le_bytes());
        assert!(matches!(
            restore_container::<InterruptControl>(&bad),
            Err(PersistError::Corrupt("handler entry without IE mask"))
        ));
    }

    #[test]
    fn critical_section_inside_handler_keeps_mask() {
        let mut ic = InterruptControl::new();
        ic.enter_handler();
        ic.enter_critical();
        ic.exit_critical();
        assert!(!ic.can_deliver(false), "still in handler: stays masked");
        ic.exit_handler();
        assert!(ic.can_deliver(false));
    }
}
