//! Unified telemetry: one metrics registry and one event-trace spine for
//! every stats/report surface in the reproduction.
//!
//! The paper's evaluation (§6, Tables 3/5/6, Figs. 5/6) is a counting
//! exercise over micro-events — FSB drains, exception deliveries,
//! deferred interrupts, fault activations. This crate gives those events
//! a single home:
//!
//! * [`Registry`] — typed metrics (monotonic counters, gauges,
//!   [`Summary`](ise_types::stats::Summary)-style streaming stats,
//!   latency [`Histogram`](ise_types::stats::Histogram)s), name-keyed
//!   and rendered in insertion order so snapshots are byte-deterministic
//!   and shard merges under `ise-par` reproduce the sequential bytes.
//! * [`TraceRing`] — a bounded, cycle-stamped ring of structured
//!   [`TraceEvent`]s, config-gated so disabled tracing compiles down to
//!   one predictable branch per record site.
//!
//! `SystemStats`, chaos reports, litmus summaries, and workload stats
//! all render through a [`Registry`] snapshot; the experiment binaries
//! share one emission path over the same snapshots (see
//! `ise-bench::emit_report`). DESIGN.md §11 documents the architecture,
//! the event taxonomy, and the determinism rules.

#![deny(missing_docs)]

mod registry;
mod trace;

pub use registry::{MetricValue, Registry};
pub use trace::{TraceEvent, TraceEventKind, TraceRing};

/// How a component's telemetry is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether the event trace records (the registry is always on — it
    /// *is* the stats surface).
    pub trace: bool,
    /// Ring capacity when tracing is on.
    pub trace_capacity: usize,
}

impl TelemetryConfig {
    /// The default ring capacity (`ISE_TRACE_CAP` overrides).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Tracing off.
    pub fn disabled() -> Self {
        TelemetryConfig {
            trace: false,
            trace_capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Tracing on with the given ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn traced(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        TelemetryConfig {
            trace: true,
            trace_capacity: capacity,
        }
    }

    /// Reads the process-wide pins: `ISE_TRACE` (any of the shared
    /// [`ise_types::env`] on-spellings — `1`/`on`/`true`/`yes`) enables
    /// tracing, `ISE_TRACE_CAP=<n>` sizes the ring. Unset means
    /// disabled — the zero-overhead default.
    ///
    /// # Panics
    ///
    /// Panics on malformed values. `ISE_TRACE=true` used to be silently
    /// treated as *disabled*; now every recognised spelling works and a
    /// typo aborts instead of quietly dropping the trace.
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("ISE_TRACE").ok().as_deref(),
            std::env::var("ISE_TRACE_CAP").ok().as_deref(),
        )
    }

    /// The value-level seam under [`from_env`], testable without
    /// touching the process environment.
    ///
    /// # Panics
    ///
    /// Panics (with the variable name) on a malformed flag or a
    /// non-positive capacity.
    pub fn from_env_values(trace: Option<&str>, cap: Option<&str>) -> Self {
        let trace = ise_types::env::flag_from("ISE_TRACE", trace).unwrap_or(false);
        let cap = ise_types::env::count_from("ISE_TRACE_CAP", cap)
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(Self::DEFAULT_CAPACITY);
        TelemetryConfig {
            trace,
            trace_capacity: cap,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::disabled()
    }
}

/// A component's telemetry plane: its metrics and its event trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// The metrics registry (always collecting).
    pub registry: Registry,
    /// The event trace (records only when the config enables it).
    pub trace: TraceRing,
}

impl Telemetry {
    /// Builds a plane from a configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            registry: Registry::new(),
            trace: if cfg.trace {
                TraceRing::new(cfg.trace_capacity)
            } else {
                TraceRing::disabled()
            },
        }
    }

    /// A plane with tracing off.
    pub fn disabled() -> Self {
        Telemetry::new(TelemetryConfig::disabled())
    }

    /// Records a trace event (no-op when tracing is off).
    #[inline]
    pub fn event(&mut self, cycle: u64, core: u32, kind: TraceEventKind) {
        self.trace.record(cycle, core, kind);
    }
}

impl ise_types::persist::Persist for Telemetry {
    fn save(&self, w: &mut ise_types::persist::Writer) {
        w.section(*b"TELE", |w| {
            self.registry.save(w);
            self.trace.save(w);
        });
    }
    fn restore(
        r: &mut ise_types::persist::Reader,
    ) -> Result<Self, ise_types::persist::PersistError> {
        r.section(*b"TELE", |r| {
            Ok(Telemetry {
                registry: ise_types::persist::Persist::restore(r)?,
                trace: ise_types::persist::Persist::restore(r)?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_types::ToJson;

    #[test]
    fn disabled_plane_keeps_registry_live() {
        let mut t = Telemetry::disabled();
        t.event(1, 0, TraceEventKind::InterruptDelivered);
        t.registry.incr("events");
        assert!(t.trace.is_empty());
        assert_eq!(t.registry.counter("events"), 1);
    }

    #[test]
    fn traced_plane_records() {
        let mut t = Telemetry::new(TelemetryConfig::traced(8));
        t.event(5, 1, TraceEventKind::PageWalk { page: 3 });
        assert_eq!(t.trace.len(), 1);
        assert!(t.trace.to_json().render().contains("\"page_walk\""));
    }

    #[test]
    fn config_parses_env_shapes() {
        // from_env reads the real environment; only exercise the
        // default path here (env mutation races other tests).
        let cfg = TelemetryConfig::default();
        assert!(!cfg.trace);
        assert_eq!(cfg.trace_capacity, TelemetryConfig::DEFAULT_CAPACITY);
        assert!(TelemetryConfig::traced(16).trace);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn traced_rejects_zero() {
        let _ = TelemetryConfig::traced(0);
    }

    #[test]
    fn every_on_spelling_enables_tracing() {
        // `ISE_TRACE=true` used to be silently treated as disabled.
        for v in ["1", "true", "on", "yes", "TRUE"] {
            let cfg = TelemetryConfig::from_env_values(Some(v), None);
            assert!(cfg.trace, "ISE_TRACE={v} must enable tracing");
        }
        for v in ["0", "false", "off", "no"] {
            let cfg = TelemetryConfig::from_env_values(Some(v), None);
            assert!(!cfg.trace, "ISE_TRACE={v} must disable tracing");
        }
        assert!(!TelemetryConfig::from_env_values(None, None).trace);
    }

    #[test]
    fn trace_cap_parses_and_defaults() {
        let cfg = TelemetryConfig::from_env_values(Some("1"), Some("128"));
        assert_eq!(cfg.trace_capacity, 128);
        let cfg = TelemetryConfig::from_env_values(Some("1"), None);
        assert_eq!(cfg.trace_capacity, TelemetryConfig::DEFAULT_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "ISE_TRACE: expected 0/off/false/no")]
    fn malformed_trace_flag_is_loud() {
        let _ = TelemetryConfig::from_env_values(Some("maybe"), None);
    }

    #[test]
    #[should_panic(expected = "ISE_TRACE_CAP: expected a positive integer")]
    fn malformed_trace_cap_is_loud() {
        let _ = TelemetryConfig::from_env_values(Some("1"), Some("0"));
    }
}
